//! Umbrella crate for the `sinr-connect` workspace.
//!
//! This crate re-exports the public APIs of the workspace members so that
//! examples and integration tests can use a single import root. The actual
//! functionality lives in the member crates:
//!
//! - [`geom`] — points, instances, generators, spatial index, MST
//! - [`links`] — links, trees, schedules, sparsity
//! - [`phy`] — the SINR physical model: power, affectance, feasibility
//! - [`sim`] — the slotted single-channel radio simulator
//! - [`connectivity`] — the paper's distributed algorithms
//! - [`baselines`] — centralized comparators
//!
//! See `DESIGN.md` at the repository root for the full system inventory.

pub use sinr_baselines as baselines;
pub use sinr_connectivity as connectivity;
pub use sinr_geom as geom;
pub use sinr_links as links;
pub use sinr_phy as phy;
pub use sinr_sim as sim;
