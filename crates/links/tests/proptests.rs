//! Property-based tests for links, trees, schedules and sparsity.

use proptest::prelude::*;
use sinr_geom::{gen, NodeId};
use sinr_links::{independence, sparsity, InTree, Link, LinkSet, Schedule};

/// Random valid parent array of size n (parent index < own index after
/// a random relabeling → always acyclic, rooted at the relabeled 0).
fn arb_tree(n: usize, seed: u64) -> InTree {
    use rand::seq::SliceRandom;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut label: Vec<NodeId> = (0..n).collect();
    label.shuffle(&mut rng);
    let mut parents = vec![None; n];
    for pos in 1..n {
        let parent_pos = rng.gen_range(0..pos);
        parents[label[pos]] = Some(label[parent_pos]);
    }
    InTree::from_parents(parents).expect("construction is acyclic")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Dual is an involution and preserves cardinality and degrees.
    #[test]
    fn dual_involution(n in 2usize..40, seed in 0u64..1000) {
        let tree = arb_tree(n, seed);
        let links = tree.aggregation_links();
        let dual = links.dual();
        prop_assert_eq!(dual.dual(), links.clone());
        prop_assert_eq!(dual.len(), links.len());
        for node in links.nodes() {
            prop_assert_eq!(links.degree_of(node), dual.degree_of(node));
        }
    }

    /// Trees: exactly one root, depths consistent, every subtree
    /// contains its own root, and leaf-to-root order is valid.
    #[test]
    fn tree_invariants(n in 1usize..60, seed in 0u64..1000) {
        let tree = arb_tree(n, seed);
        prop_assert_eq!(tree.len(), n);
        let mut roots = 0;
        for u in 0..n {
            match tree.parent(u) {
                None => roots += 1,
                Some(p) => prop_assert_eq!(tree.depth(u), tree.depth(p) + 1),
            }
            prop_assert!(tree.subtree(u).contains(&u));
            prop_assert!(tree.is_ancestor(tree.root(), u));
        }
        prop_assert_eq!(roots, 1);
        let order = tree.leaf_to_root_order();
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        for u in 0..n {
            if let Some(p) = tree.parent(u) {
                prop_assert!(pos[&u] < pos[&p], "child after parent in order");
            }
        }
    }

    /// LCA symmetry and hop-distance triangle equality through the LCA.
    #[test]
    fn lca_properties(n in 2usize..50, seed in 0u64..500, a in 0usize..50, b in 0usize..50) {
        let tree = arb_tree(n, seed);
        let (a, b) = (a % n, b % n);
        let l = tree.lca(a, b);
        prop_assert_eq!(l, tree.lca(b, a));
        prop_assert!(tree.is_ancestor(l, a));
        prop_assert!(tree.is_ancestor(l, b));
        prop_assert_eq!(
            tree.hop_distance(a, b),
            tree.depth(a) + tree.depth(b) - 2 * tree.depth(l)
        );
    }

    /// Schedule compaction removes exactly the empty slots and keeps
    /// relative order; reversal is an involution.
    #[test]
    fn schedule_compact_and_reverse(slots in proptest::collection::vec(0usize..30, 1..20)) {
        let mut schedule = Schedule::new();
        for (i, &s) in slots.iter().enumerate() {
            // Distinct links: i → i + 1000.
            schedule.assign(Link::new(i, i + 1000), s);
        }
        let original = schedule.clone();
        let removed = schedule.compact();
        let distinct: std::collections::BTreeSet<usize> = slots.iter().copied().collect();
        prop_assert_eq!(schedule.num_slots(), distinct.len());
        prop_assert_eq!(removed, original.num_slots() - distinct.len());
        // Relative order preserved.
        for (la, sa) in original.iter() {
            for (lb, sb) in original.iter() {
                let (ca, cb) = (schedule.slot_of(la).unwrap(), schedule.slot_of(lb).unwrap());
                if sa < sb { prop_assert!(ca < cb); }
                if sa == sb { prop_assert_eq!(ca, cb); }
            }
        }
        prop_assert_eq!(original.reversed().reversed(), original.clone());
    }

    /// Sparsity is monotone under subsets and the lower bound never
    /// exceeds the upper bound, on MST workloads.
    #[test]
    fn sparsity_bounds(n in 2usize..48, seed in 0u64..500) {
        let inst = gen::uniform_square(n, 1.5, seed).unwrap();
        let links: LinkSet = sinr_geom::mst::mst_parent_array(&inst, 0)
            .iter()
            .enumerate()
            .filter_map(|(u, p)| p.map(|v| Link::new(u, v)))
            .collect();
        let lo = sparsity::sparsity_lower_bound(&inst, &links);
        let hi = sparsity::sparsity_upper_bound(&inst, &links);
        prop_assert!(lo <= hi);
        // Halve the set: sparsity cannot grow.
        let mut half = LinkSet::new();
        for (i, l) in links.iter().enumerate() {
            if i % 2 == 0 { half.insert(l); }
        }
        prop_assert!(sparsity::sparsity_lower_bound(&inst, &half) <= lo);
    }

    /// q-independence partitions are correct for any q, and coarser q
    /// never needs fewer classes.
    #[test]
    fn independence_partition(n in 2usize..30, seed in 0u64..300) {
        let inst = gen::uniform_square(n, 2.5, seed).unwrap();
        let links: LinkSet = sinr_geom::mst::mst_parent_array(&inst, 0)
            .iter()
            .enumerate()
            .filter_map(|(u, p)| p.map(|v| Link::new(u, v)))
            .collect();
        let small_q = independence::partition_q_independent(&inst, &links, 0.5);
        let big_q = independence::partition_q_independent(&inst, &links, 2.0);
        prop_assert!(small_q.len() <= big_q.len());
        for class in &big_q {
            let v = class.links();
            for i in 0..v.len() {
                for j in (i + 1)..v.len() {
                    prop_assert!(independence::are_q_independent(&inst, v[i], v[j], 2.0));
                }
            }
        }
        let total: usize = big_q.iter().map(LinkSet::len).sum();
        prop_assert_eq!(total, links.len());
    }
}
