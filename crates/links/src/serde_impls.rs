//! Serde support for the link/tree/schedule types (feature `serde`).
//!
//! Explicit impls rather than derives (the offline serde shim has no
//! proc macro); representations match what the commented-out
//! `#[serde(try_from = ..., into = ...)]` derives would produce, and
//! deserialization re-runs the validating constructors.

use serde::{Deserialize, Error, Serialize, Value};

use crate::degree::DegreeStats;
use crate::{InTree, Link, LinkSet, Schedule};
use sinr_geom::NodeId;

impl Serialize for Link {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("sender".to_string(), self.sender.to_value()),
            ("receiver".to_string(), self.receiver.to_value()),
        ])
    }
}

impl Deserialize for Link {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(fields) => {
                let field = |name: &str| {
                    fields
                        .iter()
                        .find(|(k, _)| k == name)
                        .map(|(_, v)| v)
                        .ok_or_else(|| Error::custom(format!("Link: missing field `{name}`")))
                };
                Link::try_new(
                    usize::from_value(field("sender")?)?,
                    usize::from_value(field("receiver")?)?,
                )
                .map_err(Error::custom)
            }
            other => Err(Error::custom(format!("Link: expected map, got {other:?}"))),
        }
    }
}

impl Serialize for LinkSet {
    fn to_value(&self) -> Value {
        Vec::<Link>::from(self.clone()).to_value()
    }
}

impl Deserialize for LinkSet {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let links = Vec::<Link>::from_value(value)?;
        LinkSet::try_from(links).map_err(Error::custom)
    }
}

impl Serialize for InTree {
    fn to_value(&self) -> Value {
        Vec::<Option<NodeId>>::from(self.clone()).to_value()
    }
}

impl Deserialize for InTree {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let parents = Vec::<Option<NodeId>>::from_value(value)?;
        InTree::try_from(parents).map_err(Error::custom)
    }
}

impl Serialize for Schedule {
    fn to_value(&self) -> Value {
        self.iter().collect::<Vec<(Link, usize)>>().to_value()
    }
}

impl Deserialize for Schedule {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let pairs = Vec::<(Link, usize)>::from_value(value)?;
        Schedule::from_pairs(pairs).map_err(Error::custom)
    }
}

impl Serialize for DegreeStats {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("nodes".to_string(), self.nodes.to_value()),
            ("max".to_string(), self.max.to_value()),
            ("mean".to_string(), self.mean.to_value()),
            ("histogram".to_string(), self.histogram.to_value()),
        ])
    }
}

impl Deserialize for DegreeStats {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(fields) => {
                let field = |name: &str| {
                    fields
                        .iter()
                        .find(|(k, _)| k == name)
                        .map(|(_, v)| v)
                        .ok_or_else(|| {
                            Error::custom(format!("DegreeStats: missing field `{name}`"))
                        })
                };
                Ok(DegreeStats {
                    nodes: usize::from_value(field("nodes")?)?,
                    max: usize::from_value(field("max")?)?,
                    mean: f64::from_value(field("mean")?)?,
                    histogram: Vec::<usize>::from_value(field("histogram")?)?,
                })
            }
            other => Err(Error::custom(format!(
                "DegreeStats: expected map, got {other:?}"
            ))),
        }
    }
}
