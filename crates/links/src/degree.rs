//! Degree statistics of link sets (Theorem 7 tooling).
//!
//! Theorem 7 of the paper bounds the degree distribution of the `Init`
//! tree: `P(deg ≥ d) ≤ e^{−p²d/8}`, hence maximum degree `O(log n)`
//! w.h.p. Experiment E2 measures the empirical histogram and tail with
//! the helpers here.

use crate::LinkSet;

/// Summary statistics of the node degrees of a link set.
#[derive(Clone, Debug, PartialEq)]
// Serde support lives in `crate::serde_impls` (feature `serde`).
pub struct DegreeStats {
    /// Number of nodes incident to at least one link.
    pub nodes: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree over incident nodes.
    pub mean: f64,
    /// Histogram: `histogram[d]` = number of nodes with degree exactly
    /// `d` (index 0 unused for incident nodes, kept for alignment).
    pub histogram: Vec<usize>,
}

impl DegreeStats {
    /// Computes degree statistics for `links`.
    ///
    /// Returns an all-zero summary for an empty set.
    pub fn of(links: &LinkSet) -> DegreeStats {
        let degrees = links.degrees();
        if degrees.is_empty() {
            return DegreeStats {
                nodes: 0,
                max: 0,
                mean: 0.0,
                histogram: vec![0],
            };
        }
        let max = degrees.values().copied().max().unwrap_or(0);
        let sum: usize = degrees.values().sum();
        let mut histogram = vec![0usize; max + 1];
        for &d in degrees.values() {
            histogram[d] += 1;
        }
        DegreeStats {
            nodes: degrees.len(),
            max,
            mean: sum as f64 / degrees.len() as f64,
            histogram,
        }
    }

    /// Empirical tail `P(deg ≥ d)`: the fraction of incident nodes with
    /// degree at least `d`. Returns 0 if there are no incident nodes.
    pub fn tail(&self, d: usize) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        let at_least: usize = self
            .histogram
            .iter()
            .enumerate()
            .filter(|&(deg, _)| deg >= d)
            .map(|(_, &count)| count)
            .sum();
        at_least as f64 / self.nodes as f64
    }

    /// The theoretical tail bound of Theorem 7, `e^{−p²d/8}`, for
    /// comparison against [`DegreeStats::tail`].
    pub fn theorem7_bound(p: f64, d: usize) -> f64 {
        (-p * p * d as f64 / 8.0).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Link;

    #[test]
    fn empty_set_stats() {
        let s = DegreeStats::of(&LinkSet::new());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.tail(1), 0.0);
    }

    #[test]
    fn star_statistics() {
        // Node 0 has degree 4, leaves have degree 1.
        let links = LinkSet::from_links((1..=4).map(|v| Link::new(v, 0))).unwrap();
        let s = DegreeStats::of(&links);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.max, 4);
        assert_eq!(s.histogram[1], 4);
        assert_eq!(s.histogram[4], 1);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn tail_is_monotone_decreasing() {
        let links =
            LinkSet::from_links(vec![Link::new(1, 0), Link::new(2, 0), Link::new(3, 2)]).unwrap();
        let s = DegreeStats::of(&links);
        assert_eq!(s.tail(0), 1.0);
        for d in 0..5 {
            assert!(s.tail(d) >= s.tail(d + 1));
        }
        assert_eq!(s.tail(100), 0.0);
    }

    #[test]
    fn theorem7_bound_decays() {
        let b1 = DegreeStats::theorem7_bound(0.1, 10);
        let b2 = DegreeStats::theorem7_bound(0.1, 1000);
        assert!(b1 > b2);
        assert!(b2 > 0.0);
        assert!(DegreeStats::theorem7_bound(0.5, 0) == 1.0);
    }
}
