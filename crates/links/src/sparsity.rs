//! ψ-sparsity of link sets (Definition 8 of the paper).
//!
//! A set `L` of links is *ψ-sparse* if for every closed ball `B` in the
//! plane, the number of links of length at least `8·rad(B)` with at
//! least one endpoint in `B` is at most `ψ`.
//!
//! The supremum ranges over uncountably many balls, so we expose two
//! computable quantities:
//!
//! - [`sparsity_lower_bound`] evaluates balls centered at link endpoints
//!   with the critical radii `length/8`; every evaluated ball is a real
//!   ball, so the result is an *achieved* lower bound on ψ.
//! - [`sparsity_upper_bound`] uses the standard doubling argument: any
//!   ball of radius ρ containing `k` qualifying endpoints is covered by
//!   an endpoint-centered ball of radius `2ρ`, so the maximum count over
//!   endpoint-centered balls of doubled radius bounds ψ from above.
//!
//! Theorem 11 of the paper states the `Init` tree is `O(log n)`-sparse
//! and Theorem 13 that the degree-capped subtree is `O(1)`-sparse;
//! experiment E3 measures both via these functions.

use sinr_geom::Instance;

use crate::LinkSet;

/// How far a sparsity ball's radius may reach relative to the link
/// lengths it counts (the constant 8 of Definition 8).
pub const SPARSITY_LENGTH_FACTOR: f64 = 8.0;

#[derive(Clone, Copy)]
struct Endpoint {
    x: f64,
    y: f64,
}

/// Counts links of `L` with length ≥ `min_len` having an endpoint within
/// distance `radius` of `center`.
fn count_qualifying(
    lengths: &[f64],
    endpoints: &[(Endpoint, Endpoint)],
    center: Endpoint,
    radius: f64,
    min_len: f64,
) -> usize {
    let r2 = radius * radius;
    let mut count = 0;
    for (i, &(a, b)) in endpoints.iter().enumerate() {
        if lengths[i] >= min_len {
            let da = (a.x - center.x).powi(2) + (a.y - center.y).powi(2);
            let db = (b.x - center.x).powi(2) + (b.y - center.y).powi(2);
            if da <= r2 || db <= r2 {
                count += 1;
            }
        }
    }
    count
}

fn precompute(instance: &Instance, links: &LinkSet) -> (Vec<f64>, Vec<(Endpoint, Endpoint)>) {
    let mut lengths = Vec::with_capacity(links.len());
    let mut endpoints = Vec::with_capacity(links.len());
    for l in links.iter() {
        lengths.push(l.length(instance));
        let pa = instance.position(l.sender);
        let pb = instance.position(l.receiver);
        endpoints.push((Endpoint { x: pa.x, y: pa.y }, Endpoint { x: pb.x, y: pb.y }));
    }
    (lengths, endpoints)
}

/// Distinct critical radii: `length / 8` for each distinct link length.
///
/// As the ball radius ρ grows within an interval where no link length
/// crosses the `8ρ` threshold, the set of qualifying links only loses
/// members while the ball gains area; the per-scale maximum over
/// endpoint-centered balls is therefore attained at radii of this form.
fn critical_radii(lengths: &[f64]) -> Vec<f64> {
    let mut radii: Vec<f64> = lengths
        .iter()
        .map(|&d| d / SPARSITY_LENGTH_FACTOR)
        .collect();
    radii.sort_by(|a, b| a.partial_cmp(b).expect("finite lengths"));
    radii.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    radii
}

/// Achieved lower bound on the sparsity ψ of `links` (Definition 8):
/// the maximum, over balls centered at link endpoints with radii
/// `length/8` for each link length, of the count of qualifying links.
///
/// Returns 0 for an empty set.
///
/// # Example
///
/// ```
/// use sinr_geom::{Instance, Point};
/// use sinr_links::{sparsity, Link, LinkSet};
///
/// let inst = Instance::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(100.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(1.0, 100.0),
/// ])?;
/// // Two long links sharing a tight neighborhood: ψ ≥ 2.
/// let links = LinkSet::from_links(vec![Link::new(0, 1), Link::new(2, 3)])?;
/// assert!(sparsity::sparsity_lower_bound(&inst, &links) >= 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn sparsity_lower_bound(instance: &Instance, links: &LinkSet) -> usize {
    sparsity_scan(instance, links, 1.0)
}

/// Upper bound on the sparsity ψ of `links` via the doubling argument:
/// endpoint-centered balls of radius `2·(length/8)` counted against the
/// same `length` threshold dominate every ball of radius `length/8`.
pub fn sparsity_upper_bound(instance: &Instance, links: &LinkSet) -> usize {
    sparsity_scan(instance, links, 2.0)
}

fn sparsity_scan(instance: &Instance, links: &LinkSet, radius_factor: f64) -> usize {
    if links.is_empty() {
        return 0;
    }
    let (lengths, endpoints) = precompute(instance, links);
    let radii = critical_radii(&lengths);
    let mut best = 0;
    for &rho in &radii {
        let min_len = SPARSITY_LENGTH_FACTOR * rho;
        for &(a, b) in &endpoints {
            for center in [a, b] {
                let c = count_qualifying(
                    &lengths,
                    &endpoints,
                    center,
                    rho * radius_factor,
                    // Slack keeps `length/8`-radius balls counting the
                    // link that defined them despite f64 rounding.
                    min_len * (1.0 - 1e-12),
                );
                best = best.max(c);
            }
        }
    }
    best
}

/// Checks that `links` is `psi`-sparse as far as the achieved lower
/// bound can tell (i.e. the lower bound does not exceed `psi`).
pub fn is_sparse_at_most(instance: &Instance, links: &LinkSet, psi: usize) -> bool {
    sparsity_lower_bound(instance, links) <= psi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Link;
    use sinr_geom::Point;

    fn star_instance(k: usize, arm: f64) -> (Instance, LinkSet) {
        // k long links all leaving a tight hub of radius 1.
        let mut pts = Vec::new();
        for i in 0..k {
            let theta = std::f64::consts::TAU * i as f64 / k as f64;
            // Hub endpoints on a unit circle, far endpoints on radius `arm`.
            pts.push(Point::new(theta.cos(), theta.sin()));
            pts.push(Point::new(arm * theta.cos(), arm * theta.sin()));
        }
        let inst = Instance::new(pts).unwrap();
        let links = LinkSet::from_links((0..k).map(|i| Link::new(2 * i, 2 * i + 1))).unwrap();
        (inst, links)
    }

    #[test]
    fn empty_set_is_zero_sparse() {
        let inst = Instance::new(vec![Point::ORIGIN]).unwrap();
        assert_eq!(sparsity_lower_bound(&inst, &LinkSet::new()), 0);
        assert_eq!(sparsity_upper_bound(&inst, &LinkSet::new()), 0);
    }

    #[test]
    fn single_link_has_sparsity_one() {
        let inst = Instance::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]).unwrap();
        let links = LinkSet::from_links(vec![Link::new(0, 1)]).unwrap();
        assert_eq!(sparsity_lower_bound(&inst, &links), 1);
        assert_eq!(sparsity_upper_bound(&inst, &links), 1);
    }

    #[test]
    fn hub_of_long_links_is_dense() {
        let (inst, links) = star_instance(6, 100.0);
        // All 6 links have an endpoint within the unit hub and length ≈ 99,
        // far exceeding 8 · (hub radius): ψ must see all of them.
        let lo = sparsity_lower_bound(&inst, &links);
        assert!(lo >= 6, "expected ≥ 6, got {lo}");
    }

    #[test]
    fn spread_short_links_are_sparse() {
        // Unit-length links spaced 100 apart: every ball that may count a
        // link (radius ≤ 1/8) reaches only that link's own endpoints.
        let mut pts = Vec::new();
        for i in 0..8 {
            pts.push(Point::new(100.0 * i as f64, 0.0));
            pts.push(Point::new(100.0 * i as f64 + 1.0, 0.0));
        }
        let inst = Instance::new(pts).unwrap();
        let links = LinkSet::from_links((0..8).map(|i| Link::new(2 * i, 2 * i + 1))).unwrap();
        assert_eq!(sparsity_lower_bound(&inst, &links), 1);
        assert_eq!(sparsity_upper_bound(&inst, &links), 1);
    }

    #[test]
    fn lower_is_at_most_upper() {
        for seed in 0..5u64 {
            let inst = sinr_geom::gen::uniform_square(60, 1.5, seed).unwrap();
            // Random link set: each node to (i+7) mod n.
            let n = inst.len();
            let links = LinkSet::from_links(
                (0..n)
                    .filter(|&i| i != (i + 7) % n)
                    .map(|i| Link::new(i, (i + 7) % n)),
            )
            .unwrap();
            let lo = sparsity_lower_bound(&inst, &links);
            let hi = sparsity_upper_bound(&inst, &links);
            assert!(lo <= hi, "lo {lo} > hi {hi} (seed {seed})");
            assert!(lo >= 1);
        }
    }

    #[test]
    fn sparsity_is_monotone_under_subset() {
        let (inst, links) = star_instance(5, 50.0);
        let mut subset = LinkSet::new();
        for (i, l) in links.iter().enumerate() {
            if i % 2 == 0 {
                subset.insert(l);
            }
        }
        assert!(sparsity_lower_bound(&inst, &subset) <= sparsity_lower_bound(&inst, &links));
    }

    #[test]
    fn is_sparse_at_most_works() {
        let (inst, links) = star_instance(4, 60.0);
        assert!(is_sparse_at_most(&inst, &links, 4));
        assert!(!is_sparse_at_most(&inst, &links, 3));
    }
}
