//! Link-set and tree combinatorics for SINR wireless networks.
//!
//! This crate provides the combinatorial vocabulary of the PODC 2012
//! connectivity paper, independent of the physical (SINR) layer:
//!
//! - [`Link`] — a directed sender→receiver edge; [`LinkSet`] — a set of
//!   links with duals, length classes and degree queries (§3 of the paper);
//! - [`InTree`] — a rooted spanning in-tree (converge-cast tree) given by
//!   a parent array, with ordering and reachability validation;
//! - [`BiTree`] — an aggregation tree plus its complementary dissemination
//!   tree sharing one schedule (Definition 1);
//! - [`Schedule`] — a partition of links into time slots;
//! - [`sparsity`] — the ψ-sparsity measure of Definition 8;
//! - [`independence`] — the q-independence relation of Appendix A;
//! - [`degree`] — degree statistics (Theorem 7 tooling).
//!
//! # Example
//!
//! ```
//! use sinr_links::{Link, LinkSet};
//!
//! let set = LinkSet::from_links(vec![Link::new(0, 1), Link::new(2, 1)]).unwrap();
//! assert_eq!(set.degree_of(1), 2);
//! let dual = set.dual();
//! assert_eq!(dual.links()[0], Link::new(1, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitree;
pub mod degree;
mod error;
pub mod independence;
mod link;
mod linkset;
mod schedule;
#[cfg(feature = "serde")]
mod serde_impls;
pub mod sparsity;
pub mod svg;
mod tree;

pub use bitree::BiTree;
pub use error::LinkError;
pub use link::Link;
pub use linkset::LinkSet;
pub use schedule::{Schedule, ScheduleDelta};
pub use tree::InTree;

/// Convenience result alias for fallible link/tree operations.
pub type Result<T> = std::result::Result<T, LinkError>;
