//! SVG rendering of instances, link sets and schedules.
//!
//! Produces self-contained SVG documents for inspecting deployments and
//! the structures the algorithms build: nodes as dots, links as arrows,
//! slots as colors. Pure string generation — no I/O, no dependencies —
//! so it is usable from tests, examples and the `connect` CLI alike.

use std::fmt::Write as _;

use sinr_geom::Instance;

use crate::{LinkSet, Schedule};

/// Rendering options.
#[derive(Clone, Debug, PartialEq)]
pub struct SvgOptions {
    /// Canvas width in pixels (height follows the aspect ratio).
    pub width: f64,
    /// Margin around the drawing, in pixels.
    pub margin: f64,
    /// Node dot radius in pixels.
    pub node_radius: f64,
    /// Whether to label nodes with their ids.
    pub node_labels: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 800.0,
            margin: 24.0,
            node_radius: 3.5,
            node_labels: false,
        }
    }
}

/// A qualitative palette for slot coloring (12 distinguishable hues).
const PALETTE: [&str; 12] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
    "#bcbd22", "#17becf", "#aec7e8", "#ffbb78",
];

/// The color assigned to a slot index.
pub fn slot_color(slot: usize) -> &'static str {
    PALETTE[slot % PALETTE.len()]
}

struct Mapper {
    scale: f64,
    ox: f64,
    oy: f64,
    height: f64,
    margin: f64,
}

impl Mapper {
    fn new(instance: &Instance, opts: &SvgOptions) -> Mapper {
        let bb = instance.bounding_box();
        let w = bb.width().max(1e-9);
        let h = bb.height().max(1e-9);
        let scale = (opts.width - 2.0 * opts.margin) / w;
        Mapper {
            scale,
            ox: bb.min().x,
            oy: bb.min().y,
            height: h * scale + 2.0 * opts.margin,
            margin: opts.margin,
        }
    }

    fn x(&self, x: f64) -> f64 {
        (x - self.ox) * self.scale + self.margin
    }

    /// SVG y grows downward; flip so the plane reads conventionally.
    fn y(&self, y: f64) -> f64 {
        self.height - ((y - self.oy) * self.scale + self.margin)
    }
}

/// Renders the instance's nodes, optionally with a link set drawn as
/// arrows colored by schedule slot (uncolored gray when `schedule` is
/// `None` or a link is unscheduled).
///
/// # Example
///
/// ```
/// use sinr_geom::gen;
/// use sinr_links::{svg, Link, LinkSet};
///
/// let inst = gen::uniform_square(16, 1.5, 3)?;
/// let links = LinkSet::from_links(vec![Link::new(0, 1)])?;
/// let doc = svg::render(&inst, Some(&links), None, &svg::SvgOptions::default());
/// assert!(doc.starts_with("<svg"));
/// assert!(doc.contains("</svg>"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render(
    instance: &Instance,
    links: Option<&LinkSet>,
    schedule: Option<&Schedule>,
    opts: &SvgOptions,
) -> String {
    let m = Mapper::new(instance, opts);
    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"#,
        opts.width, m.height, opts.width, m.height
    );
    let _ = write!(
        out,
        r#"<defs><marker id="arrow" viewBox="0 0 10 10" refX="9" refY="5" markerWidth="5" markerHeight="5" orient="auto-start-reverse"><path d="M 0 0 L 10 5 L 0 10 z" fill="context-stroke"/></marker></defs>"#
    );
    let _ = write!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);

    if let Some(links) = links {
        for l in links.iter() {
            let a = instance.position(l.sender);
            let b = instance.position(l.receiver);
            let color = schedule
                .and_then(|s| s.slot_of(l))
                .map(slot_color)
                .unwrap_or("#999999");
            let _ = write!(
                out,
                r#"<line x1="{:.2}" y1="{:.2}" x2="{:.2}" y2="{:.2}" stroke="{}" stroke-width="1.4" marker-end="url(#arrow)"/>"#,
                m.x(a.x),
                m.y(a.y),
                m.x(b.x),
                m.y(b.y),
                color
            );
        }
    }

    for (id, p) in instance.iter() {
        let _ = write!(
            out,
            r##"<circle cx="{:.2}" cy="{:.2}" r="{}" fill="#222222"/>"##,
            m.x(p.x),
            m.y(p.y),
            opts.node_radius
        );
        if opts.node_labels {
            let _ = write!(
                out,
                r##"<text x="{:.2}" y="{:.2}" font-size="9" fill="#444444">{}</text>"##,
                m.x(p.x) + opts.node_radius + 1.0,
                m.y(p.y) - 2.0,
                id
            );
        }
    }
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Link;
    use sinr_geom::gen;

    #[test]
    fn render_nodes_only() {
        let inst = gen::uniform_square(10, 1.5, 1).unwrap();
        let doc = render(&inst, None, None, &SvgOptions::default());
        assert!(doc.starts_with("<svg"));
        assert!(doc.ends_with("</svg>"));
        assert_eq!(doc.matches("<circle").count(), 10);
        assert_eq!(doc.matches("<line").count(), 0);
    }

    #[test]
    fn render_links_colored_by_slot() {
        let inst = gen::line(4).unwrap();
        let links = LinkSet::from_links(vec![Link::new(0, 1), Link::new(2, 3)]).unwrap();
        let schedule =
            Schedule::from_pairs(vec![(Link::new(0, 1), 0), (Link::new(2, 3), 1)]).unwrap();
        let doc = render(&inst, Some(&links), Some(&schedule), &SvgOptions::default());
        assert_eq!(doc.matches("<line").count(), 2);
        assert!(doc.contains(slot_color(0)));
        assert!(doc.contains(slot_color(1)));
    }

    #[test]
    fn unscheduled_links_are_gray() {
        let inst = gen::line(3).unwrap();
        let links = LinkSet::from_links(vec![Link::new(0, 1)]).unwrap();
        let doc = render(&inst, Some(&links), None, &SvgOptions::default());
        assert!(doc.contains("#999999"));
    }

    #[test]
    fn labels_toggle() {
        let inst = gen::line(3).unwrap();
        let with = render(
            &inst,
            None,
            None,
            &SvgOptions {
                node_labels: true,
                ..Default::default()
            },
        );
        let without = render(&inst, None, None, &SvgOptions::default());
        assert!(with.contains("<text"));
        assert!(!without.contains("<text"));
    }

    #[test]
    fn single_point_instance_renders() {
        let inst = sinr_geom::Instance::new(vec![sinr_geom::Point::new(2.0, 5.0)]).unwrap();
        let doc = render(&inst, None, None, &SvgOptions::default());
        assert_eq!(doc.matches("<circle").count(), 1);
    }

    #[test]
    fn palette_cycles() {
        assert_eq!(slot_color(0), slot_color(12));
        assert_ne!(slot_color(0), slot_color(1));
    }
}
