//! Schedules: partitions of a link set into time slots.

use std::collections::BTreeMap;

use crate::{Link, LinkError, LinkSet, Result};

/// A schedule assigns every link of a set to a time slot; the links of
/// one slot are intended to transmit simultaneously.
///
/// The *length* of the schedule (its number of slots) is the paper's
/// measure of efficiency: Theorem 4 produces bi-trees schedulable in
/// `O(log n)` slots. Whether each slot is actually SINR-feasible is
/// checked by `sinr-phy` (`validate_schedule`), keeping this type purely
/// combinatorial.
///
/// # Example
///
/// ```
/// use sinr_links::{Link, Schedule};
///
/// let mut s = Schedule::new();
/// s.assign(Link::new(0, 1), 0);
/// s.assign(Link::new(2, 3), 0);
/// s.assign(Link::new(1, 4), 1);
/// assert_eq!(s.num_slots(), 2);
/// assert_eq!(s.slot_of(Link::new(1, 4)), Some(1));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
// Serde support lives in `crate::serde_impls` (feature `serde`), as a
// `(link, slot)` pair list through `from_pairs`.
pub struct Schedule {
    /// Slot index per link; slots may be sparse until normalized.
    assignment: BTreeMap<Link, usize>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Builds a schedule from explicit `(link, slot)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::ScheduleMismatch`] if a link appears twice.
    pub fn from_pairs<I: IntoIterator<Item = (Link, usize)>>(pairs: I) -> Result<Self> {
        let mut s = Schedule::new();
        for (l, slot) in pairs {
            if s.assignment.insert(l, slot).is_some() {
                return Err(LinkError::ScheduleMismatch {
                    detail: format!("link {l:?} assigned twice"),
                });
            }
        }
        Ok(s)
    }

    /// Assigns (or reassigns) `link` to `slot`.
    pub fn assign(&mut self, link: Link, slot: usize) {
        self.assignment.insert(link, slot);
    }

    /// The slot of `link`, if scheduled.
    pub fn slot_of(&self, link: Link) -> Option<usize> {
        self.assignment.get(&link).copied()
    }

    /// Number of scheduled links.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether no links are scheduled.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Number of slots: one past the maximum slot index (0 if empty).
    ///
    /// Note that intermediate slots may be empty; use
    /// [`Schedule::compact`] to renumber.
    pub fn num_slots(&self) -> usize {
        self.assignment.values().map(|&s| s + 1).max().unwrap_or(0)
    }

    /// The links assigned to `slot`.
    pub fn links_in_slot(&self, slot: usize) -> LinkSet {
        self.assignment
            .iter()
            .filter(|&(_, &s)| s == slot)
            .map(|(&l, _)| l)
            .collect()
    }

    /// All scheduled links as a set.
    pub fn links(&self) -> LinkSet {
        self.assignment.keys().copied().collect()
    }

    /// Slot contents in slot order, one `LinkSet` per slot (empty slots
    /// included so indices line up with slot numbers).
    pub fn slots(&self) -> Vec<LinkSet> {
        let n = self.num_slots();
        let mut out = vec![LinkSet::new(); n];
        for (&l, &s) in &self.assignment {
            out[s].insert(l);
        }
        out
    }

    /// Renumbers slots to remove empty ones, preserving relative order.
    /// Returns the number of slots removed.
    pub fn compact(&mut self) -> usize {
        let n = self.num_slots();
        let mut used = vec![false; n];
        for &s in self.assignment.values() {
            used[s] = true;
        }
        let mut remap = vec![0usize; n];
        let mut next = 0;
        for (i, &u) in used.iter().enumerate() {
            remap[i] = next;
            if u {
                next += 1;
            }
        }
        for slot in self.assignment.values_mut() {
            *slot = remap[*slot];
        }
        n - next
    }

    /// Reverses the slot order within the occupied range: slot `k`
    /// becomes `min + max − k`, where `min`/`max` are the smallest and
    /// largest occupied slots. Used to turn an aggregation schedule
    /// into the complementary dissemination schedule of a bi-tree
    /// (Definition 1). An involution for every schedule; for compacted
    /// schedules this is the familiar `S − 1 − k`.
    pub fn reversed(&self) -> Schedule {
        let min = self.assignment.values().copied().min().unwrap_or(0);
        let max = self.assignment.values().copied().max().unwrap_or(0);
        let assignment = self
            .assignment
            .iter()
            .map(|(&l, &s)| (l, min + max - s))
            .collect();
        Schedule { assignment }
    }

    /// Maps every link through `f` (e.g. [`Link::dual`]), keeping slots.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::ScheduleMismatch`] if `f` maps two links to
    /// the same link.
    pub fn map_links<F: FnMut(Link) -> Link>(&self, mut f: F) -> Result<Schedule> {
        Schedule::from_pairs(self.assignment.iter().map(|(&l, &s)| (f(l), s)))
    }

    /// Checks the schedule covers exactly `links`.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::ScheduleMismatch`] naming a missing or extra
    /// link.
    pub fn validate_covers(&self, links: &LinkSet) -> Result<()> {
        for l in links.iter() {
            if !self.assignment.contains_key(&l) {
                return Err(LinkError::ScheduleMismatch {
                    detail: format!("link {l:?} is not scheduled"),
                });
            }
        }
        if self.assignment.len() != links.len() {
            let extra = self
                .assignment
                .keys()
                .find(|l| !links.contains(**l))
                .expect("length mismatch implies an extra link");
            return Err(LinkError::ScheduleMismatch {
                detail: format!("scheduled link {extra:?} is not in the link set"),
            });
        }
        Ok(())
    }

    /// Iterates over `(link, slot)` pairs in link order.
    pub fn iter(&self) -> impl Iterator<Item = (Link, usize)> + '_ {
        self.assignment.iter().map(|(&l, &s)| (l, s))
    }

    /// The delta view of this schedule under a partial link remap: every
    /// link is passed through `f`, keeping its slot; links mapped to
    /// `None` are recorded as removed together with the slot they
    /// vacated. This is how the dynamic pipelines (`repair`, `join`)
    /// express "which slot groupings survived a churn batch" to the
    /// incremental re-packer — id-compaction and failed-link removal in
    /// one pass.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::ScheduleMismatch`] if `f` maps two surviving
    /// links to the same link.
    pub fn delta_map<F: FnMut(Link) -> Option<Link>>(&self, mut f: F) -> Result<ScheduleDelta> {
        let mut kept = Schedule::new();
        let mut removed = Vec::new();
        for (&l, &s) in &self.assignment {
            match f(l) {
                Some(mapped) => {
                    if kept.assignment.insert(mapped, s).is_some() {
                        return Err(LinkError::ScheduleMismatch {
                            detail: format!("two surviving links map to {mapped:?}"),
                        });
                    }
                }
                None => removed.push((l, s)),
            }
        }
        Ok(ScheduleDelta { kept, removed })
    }
}

/// How a schedule changed under a churn delta: the surviving links with
/// their (remapped) identities and original slots, plus the links that
/// vanished and the slots they vacated. Produced by
/// [`Schedule::delta_map`]; consumed by the incremental re-packer in
/// `sinr-connectivity` (slots in `kept` are **not** renumbered, so they
/// line up with `removed` and with the pre-churn schedule).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScheduleDelta {
    /// Surviving links at their original slots (remapped ids).
    pub kept: Schedule,
    /// Removed links (original ids) and the slots they vacated.
    pub removed: Vec<(Link, usize)>,
}

impl ScheduleDelta {
    /// A delta in which nothing changed (the `join` seed: every existing
    /// link keeps its slot, newcomers are simply absent).
    pub fn unchanged(schedule: &Schedule) -> Self {
        ScheduleDelta {
            kept: schedule.clone(),
            removed: Vec::new(),
        }
    }

    /// Number of slots the pre-churn schedule occupied: one past the
    /// largest slot seen across kept and removed links.
    pub fn previous_slots(&self) -> usize {
        let kept = self.kept.num_slots();
        let removed = self.removed.iter().map(|&(_, s)| s + 1).max().unwrap_or(0);
        kept.max(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule::from_pairs(vec![
            (Link::new(0, 1), 0),
            (Link::new(2, 3), 0),
            (Link::new(1, 4), 2),
        ])
        .unwrap()
    }

    #[test]
    fn from_pairs_rejects_duplicate_links() {
        let r = Schedule::from_pairs(vec![(Link::new(0, 1), 0), (Link::new(0, 1), 1)]);
        assert!(matches!(r, Err(LinkError::ScheduleMismatch { .. })));
    }

    #[test]
    fn slots_and_lengths() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.num_slots(), 3); // slot 1 empty
        assert_eq!(s.links_in_slot(0).len(), 2);
        assert_eq!(s.links_in_slot(1).len(), 0);
        assert_eq!(s.slots().len(), 3);
    }

    #[test]
    fn compact_removes_empty_slots() {
        let mut s = sample();
        let removed = s.compact();
        assert_eq!(removed, 1);
        assert_eq!(s.num_slots(), 2);
        assert_eq!(s.slot_of(Link::new(1, 4)), Some(1));
        // Order preserved.
        assert_eq!(s.slot_of(Link::new(0, 1)), Some(0));
    }

    #[test]
    fn reversed_flips_order() {
        let s = sample();
        let r = s.reversed();
        assert_eq!(r.slot_of(Link::new(0, 1)), Some(2));
        assert_eq!(r.slot_of(Link::new(1, 4)), Some(0));
        assert_eq!(r.reversed(), s);
    }

    #[test]
    fn map_links_to_duals() {
        let s = sample();
        let d = s.map_links(Link::dual).unwrap();
        assert_eq!(d.slot_of(Link::new(1, 0)), Some(0));
        assert_eq!(d.len(), s.len());
    }

    #[test]
    fn validate_covers_detects_mismatch() {
        let s = sample();
        let exact: LinkSet = s.links();
        assert!(s.validate_covers(&exact).is_ok());

        let mut missing = exact.clone();
        missing.insert(Link::new(7, 8));
        assert!(s.validate_covers(&missing).is_err());

        let partial: LinkSet = vec![Link::new(0, 1)].into_iter().collect();
        assert!(s.validate_covers(&partial).is_err());
    }

    #[test]
    fn empty_schedule() {
        let s = Schedule::new();
        assert_eq!(s.num_slots(), 0);
        assert!(s.is_empty());
        assert!(s.validate_covers(&LinkSet::new()).is_ok());
    }

    #[test]
    fn delta_map_splits_kept_and_removed() {
        let s = sample();
        // Drop node 2 (kills link 2→3), compact ids above it by one.
        let remap = |u: usize| -> Option<usize> {
            match u.cmp(&2) {
                std::cmp::Ordering::Less => Some(u),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater => Some(u - 1),
            }
        };
        let delta = s
            .delta_map(|l| Some(Link::new(remap(l.sender)?, remap(l.receiver)?)))
            .unwrap();
        assert_eq!(delta.kept.len(), 2);
        assert_eq!(delta.kept.slot_of(Link::new(0, 1)), Some(0));
        assert_eq!(delta.kept.slot_of(Link::new(1, 3)), Some(2)); // 1→4 renamed
        assert_eq!(delta.removed, vec![(Link::new(2, 3), 0)]);
        assert_eq!(delta.previous_slots(), 3);
    }

    #[test]
    fn delta_map_rejects_colliding_remaps() {
        let s = sample();
        assert!(matches!(
            s.delta_map(|_| Some(Link::new(0, 1))),
            Err(LinkError::ScheduleMismatch { .. })
        ));
    }

    #[test]
    fn unchanged_delta_keeps_everything() {
        let s = sample();
        let delta = ScheduleDelta::unchanged(&s);
        assert_eq!(delta.kept, s);
        assert!(delta.removed.is_empty());
        assert_eq!(delta.previous_slots(), s.num_slots());
        assert_eq!(ScheduleDelta::default().previous_slots(), 0);
    }
}
