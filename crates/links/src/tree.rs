//! Rooted spanning in-trees (converge-cast trees).

use sinr_geom::NodeId;

use crate::{Link, LinkError, LinkSet, Result};

/// A rooted spanning in-tree over nodes `0..n`: every node except the
/// root has exactly one outgoing link toward its parent.
///
/// This is the paper's *converge-cast tree* (§3): "a directed rooted
/// spanning tree where all links are oriented towards the root". The
/// same structure, traversed in the opposite direction, is the
/// *dissemination tree* (broadcast arborescence).
///
/// # Example
///
/// ```
/// use sinr_links::InTree;
///
/// // 0 ← 1 ← 2 and 0 ← 3
/// let tree = InTree::from_parents(vec![None, Some(0), Some(1), Some(0)])?;
/// assert_eq!(tree.root(), 0);
/// assert_eq!(tree.depth(2), 2);
/// assert_eq!(tree.children(0), &[1, 3]);
/// # Ok::<(), sinr_links::LinkError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
// Serde support lives in `crate::serde_impls` (feature `serde`), via
// the parent-array conversions below: deserialization re-validates
// rootedness and acyclicity.
pub struct InTree {
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<usize>,
    root: NodeId,
}

impl From<InTree> for Vec<Option<NodeId>> {
    /// Extracts the parent array (the tree's canonical representation).
    fn from(tree: InTree) -> Self {
        tree.parent
    }
}

impl TryFrom<Vec<Option<NodeId>>> for InTree {
    type Error = LinkError;

    /// Validating conversion (single root, acyclic), used by
    /// deserialization so tree invariants survive round trips.
    fn try_from(parents: Vec<Option<NodeId>>) -> Result<Self> {
        InTree::from_parents(parents)
    }
}

impl InTree {
    /// Builds and validates a tree from a parent array.
    ///
    /// `parent[u] = Some(v)` means `u`'s aggregation link is `u → v`;
    /// exactly one entry must be `None` (the root), and every node must
    /// reach the root.
    ///
    /// # Errors
    ///
    /// - [`LinkError::NoRoot`] / [`LinkError::MultipleRoots`] if the array
    ///   does not have exactly one `None`;
    /// - [`LinkError::NodeOutOfRange`] if a parent id is out of range;
    /// - [`LinkError::SelfLoop`] if a node is its own parent;
    /// - [`LinkError::CycleDetected`] if some node cannot reach the root.
    pub fn from_parents(parent: Vec<Option<NodeId>>) -> Result<Self> {
        let n = parent.len();
        let mut root = None;
        for (u, p) in parent.iter().enumerate() {
            match p {
                None => match root {
                    None => root = Some(u),
                    Some(first) => return Err(LinkError::MultipleRoots { first, second: u }),
                },
                Some(v) => {
                    if *v >= n {
                        return Err(LinkError::NodeOutOfRange { node: *v, len: n });
                    }
                    if *v == u {
                        return Err(LinkError::SelfLoop { node: u });
                    }
                }
            }
        }
        let root = root.ok_or(LinkError::NoRoot)?;

        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (u, p) in parent.iter().enumerate() {
            if let Some(v) = p {
                children[*v].push(u);
            }
        }

        // BFS from the root computes depths and proves reachability.
        let mut depth = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::from([root]);
        depth[root] = 0;
        while let Some(u) = queue.pop_front() {
            for &c in &children[u] {
                if depth[c] == usize::MAX {
                    depth[c] = depth[u] + 1;
                    queue.push_back(c);
                }
            }
        }
        if let Some(u) = depth.iter().position(|&d| d == usize::MAX) {
            return Err(LinkError::CycleDetected { node: u });
        }

        Ok(InTree {
            parent,
            children,
            depth,
            root,
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the tree is empty (never true for a constructed tree).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `u`, or `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn parent(&self, u: NodeId) -> Option<NodeId> {
        self.parent[u]
    }

    /// Children of `u` in ascending id order.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn children(&self, u: NodeId) -> &[NodeId] {
        &self.children[u]
    }

    /// Depth of `u` (root has depth 0).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn depth(&self, u: NodeId) -> usize {
        self.depth[u]
    }

    /// Height of the tree: maximum depth.
    pub fn height(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// The aggregation links `u → parent(u)`, for all non-root `u`,
    /// in ascending node order.
    pub fn aggregation_links(&self) -> LinkSet {
        let mut set = LinkSet::new();
        for (u, p) in self.parent.iter().enumerate() {
            if let Some(v) = p {
                set.insert(Link::new(u, *v));
            }
        }
        set
    }

    /// The dissemination links `parent(u) → u` (duals of the aggregation
    /// links).
    pub fn dissemination_links(&self) -> LinkSet {
        self.aggregation_links().dual()
    }

    /// Nodes of the subtree rooted at `u` (including `u`), preorder.
    pub fn subtree(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![u];
        while let Some(v) = stack.pop() {
            out.push(v);
            stack.extend(self.children[v].iter().copied());
        }
        out
    }

    /// Whether `ancestor` lies on the path from `u` to the root
    /// (inclusive of `u` itself).
    pub fn is_ancestor(&self, ancestor: NodeId, u: NodeId) -> bool {
        let mut cur = u;
        loop {
            if cur == ancestor {
                return true;
            }
            match self.parent[cur] {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// The path from `u` up to the root, starting at `u`.
    pub fn path_to_root(&self, u: NodeId) -> Vec<NodeId> {
        let mut path = vec![u];
        let mut cur = u;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Lowest common ancestor of `u` and `v`.
    pub fn lca(&self, u: NodeId, v: NodeId) -> NodeId {
        let (mut a, mut b) = (u, v);
        while self.depth[a] > self.depth[b] {
            a = self.parent[a].expect("deeper node has a parent");
        }
        while self.depth[b] > self.depth[a] {
            b = self.parent[b].expect("deeper node has a parent");
        }
        while a != b {
            a = self.parent[a].expect("non-root nodes have parents");
            b = self.parent[b].expect("non-root nodes have parents");
        }
        a
    }

    /// Number of tree hops between `u` and `v` (through their LCA).
    pub fn hop_distance(&self, u: NodeId, v: NodeId) -> usize {
        let l = self.lca(u, v);
        (self.depth[u] - self.depth[l]) + (self.depth[v] - self.depth[l])
    }

    /// Nodes in leaf-to-root (reverse BFS) order; every node appears
    /// after all of its children.
    pub fn leaf_to_root_order(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.len()).collect();
        order.sort_by(|&a, &b| self.depth[b].cmp(&self.depth[a]).then(a.cmp(&b)));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> InTree {
        // n-1 ← ... ← 1 ← 0 reversed: parent[i] = i-1, root = 0.
        let parents = (0..n)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        InTree::from_parents(parents).unwrap()
    }

    #[test]
    fn rejects_no_root() {
        // Two nodes pointing at each other have no None entry at all.
        let r = InTree::from_parents(vec![Some(1), Some(0)]);
        assert_eq!(r, Err(LinkError::NoRoot));
    }

    #[test]
    fn rejects_multiple_roots() {
        let r = InTree::from_parents(vec![None, None]);
        assert_eq!(
            r,
            Err(LinkError::MultipleRoots {
                first: 0,
                second: 1
            })
        );
    }

    #[test]
    fn rejects_cycles() {
        // Root exists but 1 → 2 → 1 is a cycle off to the side.
        let r = InTree::from_parents(vec![None, Some(2), Some(1)]);
        assert!(matches!(r, Err(LinkError::CycleDetected { .. })));
    }

    #[test]
    fn rejects_out_of_range_and_self_loop() {
        assert_eq!(
            InTree::from_parents(vec![None, Some(5)]),
            Err(LinkError::NodeOutOfRange { node: 5, len: 2 })
        );
        assert_eq!(
            InTree::from_parents(vec![None, Some(1)]),
            Err(LinkError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn single_node_tree() {
        let t = InTree::from_parents(vec![None]).unwrap();
        assert_eq!(t.root(), 0);
        assert_eq!(t.height(), 0);
        assert!(t.aggregation_links().is_empty());
    }

    #[test]
    fn chain_depths_and_paths() {
        let t = chain(5);
        assert_eq!(t.root(), 0);
        assert_eq!(t.depth(4), 4);
        assert_eq!(t.height(), 4);
        assert_eq!(t.path_to_root(4), vec![4, 3, 2, 1, 0]);
        assert_eq!(t.hop_distance(4, 0), 4);
    }

    #[test]
    fn star_children_sorted() {
        let t = InTree::from_parents(vec![None, Some(0), Some(0), Some(0)]).unwrap();
        assert_eq!(t.children(0), &[1, 2, 3]);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn aggregation_and_dissemination_are_duals() {
        let t = InTree::from_parents(vec![None, Some(0), Some(1), Some(0)]).unwrap();
        let agg = t.aggregation_links();
        let dis = t.dissemination_links();
        assert_eq!(agg.len(), 3);
        assert_eq!(agg.dual(), dis);
        assert!(agg.contains(Link::new(2, 1)));
        assert!(dis.contains(Link::new(1, 2)));
    }

    #[test]
    fn subtree_and_ancestry() {
        // 0 ← 1 ← {2, 3}; 0 ← 4
        let t = InTree::from_parents(vec![None, Some(0), Some(1), Some(1), Some(0)]).unwrap();
        let mut sub = t.subtree(1);
        sub.sort_unstable();
        assert_eq!(sub, vec![1, 2, 3]);
        assert!(t.is_ancestor(0, 3));
        assert!(t.is_ancestor(1, 2));
        assert!(!t.is_ancestor(4, 2));
        assert!(t.is_ancestor(2, 2));
    }

    #[test]
    fn lca_and_hops() {
        // 0 ← 1 ← 2, 0 ← 3 ← 4
        let t = InTree::from_parents(vec![None, Some(0), Some(1), Some(0), Some(3)]).unwrap();
        assert_eq!(t.lca(2, 4), 0);
        assert_eq!(t.lca(2, 1), 1);
        assert_eq!(t.hop_distance(2, 4), 4);
        assert_eq!(t.hop_distance(2, 2), 0);
    }

    #[test]
    fn leaf_to_root_order_respects_children() {
        let t = InTree::from_parents(vec![None, Some(0), Some(1), Some(1)]).unwrap();
        let order = t.leaf_to_root_order();
        let pos = |u: NodeId| order.iter().position(|&x| x == u).unwrap();
        assert!(pos(2) < pos(1));
        assert!(pos(3) < pos(1));
        assert!(pos(1) < pos(0));
    }
}
