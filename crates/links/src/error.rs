//! Error types for link and tree construction.

use std::error::Error;
use std::fmt;

use sinr_geom::NodeId;

/// Errors produced when constructing links, trees or schedules.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinkError {
    /// A link's sender equals its receiver.
    SelfLoop {
        /// The offending node.
        node: NodeId,
    },
    /// A parent array had no root (no `None` entry).
    NoRoot,
    /// A parent array had more than one root.
    MultipleRoots {
        /// The first two root candidates found.
        first: NodeId,
        /// Second root candidate.
        second: NodeId,
    },
    /// A parent array contained a cycle, so some node never reaches the root.
    CycleDetected {
        /// A node on the unreachable/cyclic part.
        node: NodeId,
    },
    /// A node id referenced a node outside the structure's range.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the structure.
        len: usize,
    },
    /// A schedule did not cover exactly the link set it was declared for.
    ScheduleMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// The schedule violates the aggregation (leaf-to-root) ordering.
    OrderingViolation {
        /// The child whose link is scheduled too early.
        child: NodeId,
        /// The descendant whose link is scheduled at or after the child's.
        descendant: NodeId,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::SelfLoop { node } => write!(f, "link from node {node} to itself"),
            LinkError::NoRoot => write!(f, "parent array has no root"),
            LinkError::MultipleRoots { first, second } => {
                write!(f, "parent array has multiple roots ({first} and {second})")
            }
            LinkError::CycleDetected { node } => {
                write!(f, "parent array contains a cycle through node {node}")
            }
            LinkError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range for structure of {len} nodes")
            }
            LinkError::ScheduleMismatch { detail } => {
                write!(f, "schedule does not match link set: {detail}")
            }
            LinkError::OrderingViolation { child, descendant } => {
                write!(
                    f,
                    "aggregation ordering violated: link of {child} scheduled no later than \
                     its descendant {descendant}"
                )
            }
        }
    }
}

impl Error for LinkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs: Vec<LinkError> = vec![
            LinkError::SelfLoop { node: 1 },
            LinkError::NoRoot,
            LinkError::MultipleRoots {
                first: 0,
                second: 2,
            },
            LinkError::CycleDetected { node: 4 },
            LinkError::NodeOutOfRange { node: 9, len: 3 },
            LinkError::ScheduleMismatch {
                detail: "missing link".into(),
            },
            LinkError::OrderingViolation {
                child: 1,
                descendant: 2,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
