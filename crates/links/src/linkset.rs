//! Sets of links with the paper's derived structure.

use std::collections::{BTreeMap, BTreeSet};

use sinr_geom::{Instance, NodeId};

use crate::{Link, LinkError, Result};

/// An ordered set of distinct links.
///
/// `LinkSet` is the common currency between the algorithm crates: the
/// tree produced by `Init`, the feasible subsets chosen by the capacity
/// selectors and the per-slot sets of a schedule are all `LinkSet`s.
/// It maintains insertion order (deterministic iteration) while rejecting
/// duplicates.
///
/// # Example
///
/// ```
/// use sinr_links::{Link, LinkSet};
///
/// let mut set = LinkSet::new();
/// assert!(set.insert(Link::new(0, 1)));
/// assert!(!set.insert(Link::new(0, 1))); // duplicate
/// assert_eq!(set.len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
// Serde support lives in `crate::serde_impls` (feature `serde`), via
// the `Vec<Link>` conversions below.
pub struct LinkSet {
    links: Vec<Link>,
    seen: BTreeSet<Link>,
}

impl From<LinkSet> for Vec<Link> {
    /// Extracts the links in insertion order.
    fn from(set: LinkSet) -> Self {
        set.links
    }
}

impl TryFrom<Vec<Link>> for LinkSet {
    type Error = LinkError;

    /// Validating conversion (rejects duplicates and self-loops), used
    /// by deserialization so the duplicate-free invariant survives
    /// round trips.
    fn try_from(links: Vec<Link>) -> Result<Self> {
        LinkSet::from_links(links)
    }
}

impl LinkSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        LinkSet::default()
    }

    /// Builds a set from links, rejecting duplicates and self-loops.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::SelfLoop`] for a self-loop and
    /// [`LinkError::ScheduleMismatch`] describing any duplicate.
    pub fn from_links<I: IntoIterator<Item = Link>>(links: I) -> Result<Self> {
        let mut set = LinkSet::new();
        for l in links {
            if l.sender == l.receiver {
                return Err(LinkError::SelfLoop { node: l.sender });
            }
            if !set.insert(l) {
                return Err(LinkError::ScheduleMismatch {
                    detail: format!("duplicate link {l:?}"),
                });
            }
        }
        Ok(set)
    }

    /// Inserts a link; returns `false` if it was already present.
    pub fn insert(&mut self, link: Link) -> bool {
        if self.seen.insert(link) {
            self.links.push(link);
            true
        } else {
            false
        }
    }

    /// Whether the set contains `link`.
    #[inline]
    pub fn contains(&self, link: Link) -> bool {
        self.seen.contains(&link)
    }

    /// Number of links.
    #[inline]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The links in insertion order.
    #[inline]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Iterator over the links.
    pub fn iter(&self) -> impl Iterator<Item = Link> + '_ {
        self.links.iter().copied()
    }

    /// The dual set: every link reversed, same order (§3).
    pub fn dual(&self) -> LinkSet {
        let mut out = LinkSet::new();
        for l in &self.links {
            out.insert(l.dual());
        }
        out
    }

    /// Distinct sender nodes.
    pub fn senders(&self) -> BTreeSet<NodeId> {
        self.links.iter().map(|l| l.sender).collect()
    }

    /// Distinct receiver nodes.
    pub fn receivers(&self) -> BTreeSet<NodeId> {
        self.links.iter().map(|l| l.receiver).collect()
    }

    /// All nodes incident to at least one link.
    pub fn nodes(&self) -> BTreeSet<NodeId> {
        self.links.iter().flat_map(|l| l.endpoints()).collect()
    }

    /// The degree of `node`: its number of incident links (§3).
    pub fn degree_of(&self, node: NodeId) -> usize {
        self.links.iter().filter(|l| l.is_incident(node)).count()
    }

    /// Degrees of all incident nodes (absent nodes have degree 0).
    pub fn degrees(&self) -> BTreeMap<NodeId, usize> {
        let mut map = BTreeMap::new();
        for l in &self.links {
            *map.entry(l.sender).or_insert(0) += 1;
            *map.entry(l.receiver).or_insert(0) += 1;
        }
        map
    }

    /// Maximum node degree (0 for an empty set).
    pub fn max_degree(&self) -> usize {
        self.degrees().values().copied().max().unwrap_or(0)
    }

    /// Partitions the set into length classes keyed by the `Init` round
    /// `r` (lengths in `[2^{r-1}, 2^r)`); see §3 "length class".
    pub fn length_classes(&self, instance: &Instance) -> BTreeMap<u32, LinkSet> {
        let mut map: BTreeMap<u32, LinkSet> = BTreeMap::new();
        for &l in &self.links {
            map.entry(l.length_class(instance)).or_default().insert(l);
        }
        map
    }

    /// Links with length at least `min_len` (the set `L(d)` of Def. 8).
    pub fn links_at_least(&self, instance: &Instance, min_len: f64) -> LinkSet {
        let mut out = LinkSet::new();
        for &l in &self.links {
            if l.length(instance) >= min_len {
                out.insert(l);
            }
        }
        out
    }

    /// Links sorted by ascending length (ties broken by endpoint ids),
    /// the processing order of Kesselheim's capacity algorithm (Eqn 3).
    pub fn sorted_by_length(&self, instance: &Instance) -> Vec<Link> {
        let mut v = self.links.clone();
        v.sort_by(|a, b| {
            a.length(instance)
                .partial_cmp(&b.length(instance))
                .expect("link lengths are finite")
                .then_with(|| a.cmp(b))
        });
        v
    }

    /// Longest link length, or 0 for an empty set.
    pub fn max_length(&self, instance: &Instance) -> f64 {
        self.links
            .iter()
            .map(|l| l.length(instance))
            .fold(0.0, f64::max)
    }

    /// Shortest link length, or +∞ for an empty set.
    pub fn min_length(&self, instance: &Instance) -> f64 {
        self.links
            .iter()
            .map(|l| l.length(instance))
            .fold(f64::INFINITY, f64::min)
    }

    /// Validates that every endpoint is a node of `instance`.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::NodeOutOfRange`] for the first bad endpoint.
    pub fn validate_against(&self, instance: &Instance) -> Result<()> {
        for l in &self.links {
            for node in l.endpoints() {
                if node >= instance.len() {
                    return Err(LinkError::NodeOutOfRange {
                        node,
                        len: instance.len(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Retains only the links satisfying the predicate.
    pub fn retain<F: FnMut(Link) -> bool>(&mut self, mut pred: F) {
        self.links.retain(|&l| {
            let keep = pred(l);
            if !keep {
                self.seen.remove(&l);
            }
            keep
        });
    }
}

impl FromIterator<Link> for LinkSet {
    /// Collects links, silently dropping duplicates.
    fn from_iter<I: IntoIterator<Item = Link>>(iter: I) -> Self {
        let mut set = LinkSet::new();
        for l in iter {
            set.insert(l);
        }
        set
    }
}

impl Extend<Link> for LinkSet {
    fn extend<I: IntoIterator<Item = Link>>(&mut self, iter: I) {
        for l in iter {
            self.insert(l);
        }
    }
}

impl<'a> IntoIterator for &'a LinkSet {
    type Item = Link;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Link>>;
    fn into_iter(self) -> Self::IntoIter {
        self.links.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geom::Point;

    fn inst() -> Instance {
        Instance::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(10.0, 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn insert_and_contains() {
        let mut s = LinkSet::new();
        assert!(s.insert(Link::new(0, 1)));
        assert!(s.contains(Link::new(0, 1)));
        assert!(!s.contains(Link::new(1, 0)));
        assert!(!s.insert(Link::new(0, 1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn from_links_rejects_duplicates() {
        let r = LinkSet::from_links(vec![Link::new(0, 1), Link::new(0, 1)]);
        assert!(matches!(r, Err(LinkError::ScheduleMismatch { .. })));
    }

    #[test]
    fn dual_set_preserves_order_and_size() {
        let s = LinkSet::from_links(vec![Link::new(0, 1), Link::new(2, 3)]).unwrap();
        let d = s.dual();
        assert_eq!(d.links(), &[Link::new(1, 0), Link::new(3, 2)]);
        assert_eq!(d.dual(), s);
    }

    #[test]
    fn degrees_count_both_roles() {
        let s =
            LinkSet::from_links(vec![Link::new(0, 1), Link::new(1, 2), Link::new(3, 1)]).unwrap();
        assert_eq!(s.degree_of(1), 3);
        assert_eq!(s.degree_of(0), 1);
        assert_eq!(s.degree_of(9), 0);
        assert_eq!(s.max_degree(), 3);
    }

    #[test]
    fn length_classes_partition() {
        let i = inst();
        let s = LinkSet::from_links(vec![
            Link::new(0, 1), // length 1 → class 1
            Link::new(1, 2), // length 2 → class 2
            Link::new(0, 2), // length 3 → class 2
            Link::new(0, 3), // length 10 → class 4
        ])
        .unwrap();
        let classes = s.length_classes(&i);
        assert_eq!(classes[&1].len(), 1);
        assert_eq!(classes[&2].len(), 2);
        assert_eq!(classes[&4].len(), 1);
        let total: usize = classes.values().map(LinkSet::len).sum();
        assert_eq!(total, s.len());
    }

    #[test]
    fn sorted_by_length_ascending() {
        let i = inst();
        let s =
            LinkSet::from_links(vec![Link::new(0, 3), Link::new(0, 1), Link::new(1, 2)]).unwrap();
        let sorted = s.sorted_by_length(&i);
        let lens: Vec<f64> = sorted.iter().map(|l| l.length(&i)).collect();
        assert!(lens.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(sorted[0], Link::new(0, 1));
    }

    #[test]
    fn links_at_least_filters() {
        let i = inst();
        let s = LinkSet::from_links(vec![Link::new(0, 1), Link::new(0, 3)]).unwrap();
        let long = s.links_at_least(&i, 5.0);
        assert_eq!(long.links(), &[Link::new(0, 3)]);
    }

    #[test]
    fn validate_against_range() {
        let i = inst();
        let ok = LinkSet::from_links(vec![Link::new(0, 3)]).unwrap();
        assert!(ok.validate_against(&i).is_ok());
        let bad = LinkSet::from_links(vec![Link::new(0, 7)]).unwrap();
        assert_eq!(
            bad.validate_against(&i),
            Err(LinkError::NodeOutOfRange { node: 7, len: 4 })
        );
    }

    #[test]
    fn retain_keeps_seen_consistent() {
        let mut s = LinkSet::from_links(vec![Link::new(0, 1), Link::new(1, 2)]).unwrap();
        s.retain(|l| l.sender == 0);
        assert_eq!(s.len(), 1);
        assert!(!s.contains(Link::new(1, 2)));
        // Re-inserting a removed link must succeed.
        assert!(s.insert(Link::new(1, 2)));
    }

    #[test]
    fn extremes_on_empty() {
        let s = LinkSet::new();
        let i = inst();
        assert_eq!(s.max_length(&i), 0.0);
        assert_eq!(s.min_length(&i), f64::INFINITY);
        assert_eq!(s.max_degree(), 0);
    }

    #[test]
    fn from_iterator_dedups() {
        let s: LinkSet = vec![Link::new(0, 1), Link::new(0, 1), Link::new(1, 2)]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
    }
}
