//! Bi-trees: aggregation trees with complementary dissemination trees.

use sinr_geom::NodeId;

use crate::{InTree, Link, LinkError, Result, Schedule};

/// An *aggregation tree* with a complementary *dissemination tree*
/// (Definition 1 of the paper): the same links used in both directions,
/// the aggregation schedule satisfying leaf-to-root ordering and the
/// dissemination direction using the same schedule in opposite order.
///
/// With a bi-tree, converge-cast (aggregation), broadcast and any
/// node-to-node communication complete within (twice) the schedule
/// length — the property Theorem 4 exploits to get `O(log n)` latency.
///
/// # Example
///
/// ```
/// use sinr_links::{BiTree, InTree, Link, Schedule};
///
/// let tree = InTree::from_parents(vec![None, Some(0), Some(1)])?;
/// // Chain 2 → 1 → 0: deepest link first.
/// let schedule = Schedule::from_pairs(vec![
///     (Link::new(2, 1), 0),
///     (Link::new(1, 0), 1),
/// ])?;
/// let bitree = BiTree::new(tree, schedule)?;
/// assert_eq!(bitree.num_slots(), 2);
/// # Ok::<(), sinr_links::LinkError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct BiTree {
    tree: InTree,
    aggregation: Schedule,
}

impl BiTree {
    /// Creates a bi-tree from a converge-cast tree and an aggregation
    /// schedule, validating coverage and the ordering property: each
    /// link `(x, y)` is scheduled strictly after every link involving
    /// descendants of `x`.
    ///
    /// # Errors
    ///
    /// - [`LinkError::ScheduleMismatch`] if the schedule does not cover
    ///   exactly the tree's aggregation links;
    /// - [`LinkError::OrderingViolation`] if a link is scheduled no later
    ///   than a link in its sender's subtree.
    pub fn new(tree: InTree, aggregation: Schedule) -> Result<Self> {
        aggregation.validate_covers(&tree.aggregation_links())?;
        // Ordering: slot(u → parent(u)) > slot(c → u) for every child c.
        // Checking the immediate-child relation suffices by transitivity.
        for u in 0..tree.len() {
            if let Some(p) = tree.parent(u) {
                let su = aggregation
                    .slot_of(Link::new(u, p))
                    .expect("coverage validated above");
                for &c in tree.children(u) {
                    let sc = aggregation
                        .slot_of(Link::new(c, u))
                        .expect("coverage validated above");
                    if sc >= su {
                        return Err(LinkError::OrderingViolation {
                            child: u,
                            descendant: c,
                        });
                    }
                }
            }
        }
        Ok(BiTree { tree, aggregation })
    }

    /// The underlying converge-cast tree.
    #[inline]
    pub fn tree(&self) -> &InTree {
        &self.tree
    }

    /// The aggregation schedule (leaf-to-root ordered).
    #[inline]
    pub fn aggregation_schedule(&self) -> &Schedule {
        &self.aggregation
    }

    /// The dissemination schedule: dual links, slots reversed, so links
    /// nearer the root fire earlier (Definition 1).
    pub fn dissemination_schedule(&self) -> Schedule {
        self.aggregation
            .reversed()
            .map_links(Link::dual)
            .expect("dualizing a valid schedule cannot collide")
    }

    /// Schedule length in slots.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.aggregation.num_slots()
    }

    /// Number of nodes spanned.
    #[inline]
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the bi-tree is empty (never for a constructed one).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Slots needed for a converge-cast from all nodes to the root when
    /// the schedule is repeated once: exactly the schedule length.
    ///
    /// The ordering property guarantees one pass suffices: by the time a
    /// link fires, its sender has heard from its whole subtree.
    pub fn convergecast_latency(&self) -> usize {
        self.num_slots()
    }

    /// Slots needed for a broadcast from the root to all nodes using the
    /// dissemination schedule once.
    pub fn broadcast_latency(&self) -> usize {
        self.num_slots()
    }

    /// Slots for a `u → v` message routed up to the LCA during an
    /// aggregation pass and down during the following dissemination pass.
    ///
    /// Returns the number of slots from the start of the aggregation
    /// pass to delivery: `num_slots() + slot of the last downward link
    /// + 1`, or less when `v` is an ancestor of `u` (no downward phase).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn pairwise_latency(&self, u: NodeId, v: NodeId) -> usize {
        if u == v {
            return 0;
        }
        let lca = self.tree.lca(u, v);
        // Upward: message from u reaches lca during the aggregation pass
        // (by ordering, no later than the last up-link on the path).
        let up_done = if u == lca {
            0
        } else {
            let mut last = 0;
            let mut cur = u;
            while cur != lca {
                let p = self.tree.parent(cur).expect("lca is an ancestor");
                let s = self
                    .aggregation
                    .slot_of(Link::new(cur, p))
                    .expect("tree links are scheduled");
                last = last.max(s + 1);
                cur = p;
            }
            last
        };
        if v == lca {
            return up_done;
        }
        // Downward: dissemination pass starts after the full aggregation
        // pass; the message reaches v at its last down-link slot.
        let dis = self.dissemination_schedule();
        let mut last_down = 0;
        let mut cur = v;
        while cur != lca {
            let p = self.tree.parent(cur).expect("lca is an ancestor");
            let s = dis
                .slot_of(Link::new(p, cur))
                .expect("dual links are scheduled");
            last_down = last_down.max(s + 1);
            cur = p;
        }
        self.num_slots() + last_down
    }

    /// Upper bound on any pairwise latency: two full passes.
    pub fn pairwise_latency_bound(&self) -> usize {
        2 * self.num_slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 ← 1 ← {2, 3}; 0 ← 4; slots: leaves first.
    fn sample() -> BiTree {
        let tree = InTree::from_parents(vec![None, Some(0), Some(1), Some(1), Some(0)]).unwrap();
        let schedule = Schedule::from_pairs(vec![
            (Link::new(2, 1), 0),
            (Link::new(3, 1), 1),
            (Link::new(4, 0), 0),
            (Link::new(1, 0), 2),
        ])
        .unwrap();
        BiTree::new(tree, schedule).unwrap()
    }

    #[test]
    fn valid_bitree_constructs() {
        let bt = sample();
        assert_eq!(bt.num_slots(), 3);
        assert_eq!(bt.convergecast_latency(), 3);
        assert_eq!(bt.broadcast_latency(), 3);
    }

    #[test]
    fn rejects_incomplete_schedule() {
        let tree = InTree::from_parents(vec![None, Some(0)]).unwrap();
        let empty = Schedule::new();
        assert!(matches!(
            BiTree::new(tree, empty),
            Err(LinkError::ScheduleMismatch { .. })
        ));
    }

    #[test]
    fn rejects_ordering_violation() {
        let tree = InTree::from_parents(vec![None, Some(0), Some(1)]).unwrap();
        // Parent link fires before child link: invalid aggregation order.
        let schedule =
            Schedule::from_pairs(vec![(Link::new(2, 1), 1), (Link::new(1, 0), 0)]).unwrap();
        assert_eq!(
            BiTree::new(tree, schedule),
            Err(LinkError::OrderingViolation {
                child: 1,
                descendant: 2
            })
        );
    }

    #[test]
    fn rejects_equal_slot_parent_child() {
        let tree = InTree::from_parents(vec![None, Some(0), Some(1)]).unwrap();
        let schedule =
            Schedule::from_pairs(vec![(Link::new(2, 1), 0), (Link::new(1, 0), 0)]).unwrap();
        assert!(BiTree::new(tree, schedule).is_err());
    }

    #[test]
    fn dissemination_is_reversed_dual() {
        let bt = sample();
        let dis = bt.dissemination_schedule();
        // Aggregation slot 2 for (1→0) ⇒ dissemination slot 0 for (0→1).
        assert_eq!(dis.slot_of(Link::new(0, 1)), Some(0));
        assert_eq!(dis.slot_of(Link::new(1, 2)), Some(2));
        // Root-adjacent link fires first in dissemination.
        let first_slot = dis.links_in_slot(0);
        assert!(first_slot.iter().all(|l| l.sender == 0));
    }

    #[test]
    fn pairwise_latency_cases() {
        let bt = sample();
        // Same node: free.
        assert_eq!(bt.pairwise_latency(2, 2), 0);
        // To an ancestor: only the up phase. 2 → 1 fires at slot 0.
        assert_eq!(bt.pairwise_latency(2, 1), 1);
        assert_eq!(bt.pairwise_latency(2, 0), 3);
        // Root to a leaf: only the down phase, after a full up pass.
        let down = bt.pairwise_latency(0, 2);
        assert!(down > bt.num_slots());
        // Cross-subtree: both phases; bounded by two passes.
        let cross = bt.pairwise_latency(2, 4);
        assert!(cross <= bt.pairwise_latency_bound());
        assert!(cross > bt.num_slots());
    }

    #[test]
    fn single_node_bitree() {
        let tree = InTree::from_parents(vec![None]).unwrap();
        let bt = BiTree::new(tree, Schedule::new()).unwrap();
        assert_eq!(bt.num_slots(), 0);
        assert_eq!(bt.pairwise_latency(0, 0), 0);
    }
}
