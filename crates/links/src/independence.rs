//! q-independence of links (Appendix A of the paper).
//!
//! Two links `ℓ = (x, y)` and `ℓ' = (x', y')` are *q-independent* if
//!
//! ```text
//! d(x, y′) · d(y, x′) ≥ q² · d(x, y) · d(x′, y′)
//! ```
//!
//! i.e. the cross distances dominate the product of the lengths. The
//! paper's Lemma 23 shows a sparse set can be partitioned into a
//! constant number of `C`-independent sets; this module provides the
//! pairwise predicate and the greedy ascending-length partition used in
//! that proof.

use sinr_geom::Instance;

use crate::{Link, LinkSet};

/// Whether `a` and `b` are q-independent in `instance`.
///
/// The relation is symmetric in its two links. A link is q-independent
/// of itself exactly when `q ≤ 1` (its cross-distance product equals
/// its length product); the partition below only ever compares distinct
/// links, so this boundary case never matters there.
///
/// # Example
///
/// ```
/// use sinr_geom::{Instance, Point};
/// use sinr_links::{independence, Link};
///
/// let inst = Instance::new(vec![
///     Point::new(0.0, 0.0), Point::new(1.0, 0.0),    // short link
///     Point::new(100.0, 0.0), Point::new(101.0, 0.0), // far short link
/// ])?;
/// let a = Link::new(0, 1);
/// let b = Link::new(2, 3);
/// assert!(independence::are_q_independent(&inst, a, b, 2.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn are_q_independent(instance: &Instance, a: Link, b: Link, q: f64) -> bool {
    let cross = instance.distance(a.sender, b.receiver) * instance.distance(a.receiver, b.sender);
    let lengths = a.length(instance) * b.length(instance);
    cross >= q * q * lengths
}

/// Partitions `links` into classes such that within each class every
/// pair is q-independent, using greedy first-fit in ascending length
/// order (the coloring argument of Lemma 23).
///
/// Returns the classes in creation order; their union is exactly
/// `links`. For sparse sets and constant `q` the number of classes is
/// `O(1)` (Lemma 23), which experiment E9 verifies empirically.
pub fn partition_q_independent(instance: &Instance, links: &LinkSet, q: f64) -> Vec<LinkSet> {
    let mut classes: Vec<LinkSet> = Vec::new();
    for l in links.sorted_by_length(instance) {
        let slot = classes
            .iter()
            .position(|class| class.iter().all(|m| are_q_independent(instance, l, m, q)));
        match slot {
            Some(i) => {
                classes[i].insert(l);
            }
            None => {
                let mut fresh = LinkSet::new();
                fresh.insert(l);
                classes.push(fresh);
            }
        }
    }
    classes
}

/// The minimum pairwise independence level of a set: the largest `q`
/// such that every pair is q-independent (∞ for fewer than two links).
pub fn independence_level(instance: &Instance, links: &LinkSet) -> f64 {
    let v = links.links();
    let mut best = f64::INFINITY;
    for i in 0..v.len() {
        for j in (i + 1)..v.len() {
            let (a, b) = (v[i], v[j]);
            let cross =
                instance.distance(a.sender, b.receiver) * instance.distance(a.receiver, b.sender);
            let lengths = a.length(instance) * b.length(instance);
            if lengths > 0.0 {
                best = best.min((cross / lengths).sqrt());
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geom::Point;

    fn two_parallel(offset: f64) -> (Instance, Link, Link) {
        let inst = Instance::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, offset),
            Point::new(1.0, offset),
        ])
        .unwrap();
        (inst, Link::new(0, 1), Link::new(2, 3))
    }

    #[test]
    fn far_links_are_independent() {
        let (inst, a, b) = two_parallel(100.0);
        assert!(are_q_independent(&inst, a, b, 50.0));
    }

    #[test]
    fn close_links_are_not_independent() {
        let (inst, a, b) = two_parallel(0.5);
        assert!(!are_q_independent(&inst, a, b, 10.0));
    }

    #[test]
    fn relation_is_symmetric() {
        let (inst, a, b) = two_parallel(3.0);
        for q in [0.5, 1.0, 2.0, 4.0] {
            assert_eq!(
                are_q_independent(&inst, a, b, q),
                are_q_independent(&inst, b, a, q)
            );
        }
    }

    #[test]
    fn self_independence_boundary() {
        // Cross product == length product for a link against itself, so
        // the predicate holds exactly up to q = 1.
        let (inst, a, _) = two_parallel(5.0);
        assert!(are_q_independent(&inst, a, a, 1.0));
        assert!(are_q_independent(&inst, a, a, 0.5));
        assert!(!are_q_independent(&inst, a, a, 1.001));
    }

    #[test]
    fn partition_covers_input() {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(Point::new(3.0 * i as f64, 0.0));
            pts.push(Point::new(3.0 * i as f64 + 1.0, 0.0));
        }
        let inst = Instance::new(pts).unwrap();
        let links = LinkSet::from_links((0..10).map(|i| Link::new(2 * i, 2 * i + 1))).unwrap();
        let classes = partition_q_independent(&inst, &links, 1.5);
        let total: usize = classes.iter().map(LinkSet::len).sum();
        assert_eq!(total, links.len());
        // Every class internally q-independent.
        for class in &classes {
            let v = class.links();
            for i in 0..v.len() {
                for j in (i + 1)..v.len() {
                    assert!(are_q_independent(&inst, v[i], v[j], 1.5));
                }
            }
        }
    }

    #[test]
    fn widely_spaced_links_form_one_class() {
        let mut pts = Vec::new();
        for i in 0..6 {
            pts.push(Point::new(1000.0 * i as f64, 0.0));
            pts.push(Point::new(1000.0 * i as f64 + 1.0, 0.0));
        }
        let inst = Instance::new(pts).unwrap();
        let links = LinkSet::from_links((0..6).map(|i| Link::new(2 * i, 2 * i + 1))).unwrap();
        let classes = partition_q_independent(&inst, &links, 2.0);
        assert_eq!(classes.len(), 1);
    }

    #[test]
    fn independence_level_matches_predicate() {
        let (inst, a, b) = two_parallel(10.0);
        let set = LinkSet::from_links(vec![a, b]).unwrap();
        let q = independence_level(&inst, &set);
        assert!(q.is_finite());
        assert!(are_q_independent(&inst, a, b, q * 0.999));
        assert!(!are_q_independent(&inst, a, b, q * 1.001));
    }

    #[test]
    fn independence_level_single_link_is_infinite() {
        let (inst, a, _) = two_parallel(2.0);
        let set = LinkSet::from_links(vec![a]).unwrap();
        assert_eq!(independence_level(&inst, &set), f64::INFINITY);
    }
}
