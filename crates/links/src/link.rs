//! Directed links between wireless nodes.

use std::fmt;

use sinr_geom::{Instance, NodeId};

use crate::{LinkError, Result};

/// A directed communication link from a sender node to a receiver node.
///
/// Following §3 of the paper, a link `(u, v)` denotes a transmission from
/// `u` to `v`; the link `(v, u)` is its *dual*. Links are small `Copy`
/// values identified by their endpoints; lengths are derived from an
/// [`Instance`].
///
/// # Example
///
/// ```
/// use sinr_links::Link;
///
/// let l = Link::new(3, 7);
/// assert_eq!(l.dual(), Link::new(7, 3));
/// assert!(l.shares_node(Link::new(7, 9)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
// Serde support lives in `crate::serde_impls` (feature `serde`).
pub struct Link {
    /// The transmitting node.
    pub sender: NodeId,
    /// The intended receiving node.
    pub receiver: NodeId,
}

impl Link {
    /// Creates a link from `sender` to `receiver`.
    ///
    /// # Panics
    ///
    /// Panics if `sender == receiver`; use [`Link::try_new`] for a
    /// fallible constructor.
    #[inline]
    pub fn new(sender: NodeId, receiver: NodeId) -> Self {
        assert_ne!(sender, receiver, "self-loop link at node {sender}");
        Link { sender, receiver }
    }

    /// Fallible constructor rejecting self-loops.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::SelfLoop`] if `sender == receiver`.
    #[inline]
    pub fn try_new(sender: NodeId, receiver: NodeId) -> Result<Self> {
        if sender == receiver {
            Err(LinkError::SelfLoop { node: sender })
        } else {
            Ok(Link { sender, receiver })
        }
    }

    /// The dual link `(v, u)` of `(u, v)` (the acknowledgment direction).
    #[inline]
    pub fn dual(self) -> Link {
        Link {
            sender: self.receiver,
            receiver: self.sender,
        }
    }

    /// Euclidean length of the link in `instance`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range for the instance.
    #[inline]
    pub fn length(self, instance: &Instance) -> f64 {
        instance.distance(self.sender, self.receiver)
    }

    /// The length class (`Init` round) this link belongs to:
    /// `r` with `length ∈ [2^{r-1}, 2^r)`.
    #[inline]
    pub fn length_class(self, instance: &Instance) -> u32 {
        Instance::length_class_of(self.length(instance))
    }

    /// Whether the two links share an endpoint (in either role).
    #[inline]
    pub fn shares_node(self, other: Link) -> bool {
        self.sender == other.sender
            || self.sender == other.receiver
            || self.receiver == other.sender
            || self.receiver == other.receiver
    }

    /// Whether `node` is the sender or receiver of this link.
    #[inline]
    pub fn is_incident(self, node: NodeId) -> bool {
        self.sender == node || self.receiver == node
    }

    /// Both endpoints, sender first.
    #[inline]
    pub fn endpoints(self) -> [NodeId; 2] {
        [self.sender, self.receiver]
    }
}

impl fmt::Debug for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.sender, self.receiver)
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} → {})", self.sender, self.receiver)
    }
}

impl From<(NodeId, NodeId)> for Link {
    fn from((s, r): (NodeId, NodeId)) -> Self {
        Link::new(s, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geom::Point;

    #[test]
    fn dual_is_involution() {
        let l = Link::new(2, 5);
        assert_eq!(l.dual().dual(), l);
        assert_ne!(l.dual(), l);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = Link::new(3, 3);
    }

    #[test]
    fn try_new_rejects_self_loop() {
        assert_eq!(Link::try_new(1, 1), Err(LinkError::SelfLoop { node: 1 }));
        assert!(Link::try_new(1, 2).is_ok());
    }

    #[test]
    fn length_and_class() {
        let inst = Instance::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 0.0),
        ])
        .unwrap();
        let short = Link::new(0, 1);
        let long = Link::new(0, 2);
        assert_eq!(short.length(&inst), 1.0);
        assert_eq!(long.length(&inst), 5.0);
        assert_eq!(short.length_class(&inst), 1);
        assert_eq!(long.length_class(&inst), 3); // 5 ∈ [4, 8)
                                                 // Dual has the same length.
        assert_eq!(long.dual().length(&inst), 5.0);
    }

    #[test]
    fn incidence() {
        let l = Link::new(4, 9);
        assert!(l.is_incident(4));
        assert!(l.is_incident(9));
        assert!(!l.is_incident(5));
        assert!(l.shares_node(Link::new(9, 1)));
        assert!(!l.shares_node(Link::new(2, 3)));
        assert_eq!(l.endpoints(), [4, 9]);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Link::new(1, 2)), "1→2");
        assert_eq!(format!("{}", Link::new(1, 2)), "(1 → 2)");
    }
}
