//! One module per experiment; each returns printable [`Table`]s.
//!
//! See the crate docs for the experiment ↔ theorem map and
//! `EXPERIMENTS.md` for recorded results.

pub mod e10_ablations;
pub mod e11_scaling;
pub mod e12_connect_scaling;
pub mod e13_churn;
pub mod e14_kernel_profile;
pub mod e15_serve;
pub mod e16_families;
pub mod e1_init;
pub mod e2_degree;
pub mod e3_sparsity;
pub mod e4_reschedule;
pub mod e5_tvc_mean;
pub mod e6_tvc_arbitrary;
pub mod e7_comparison;
pub mod e8_latency;
pub mod e9_sparse_capacity;

use crate::table::Table;
use crate::ExpOptions;

/// An experiment: a name and a runner producing tables.
pub struct Experiment {
    /// Identifier (`e1` … `e9`).
    pub id: &'static str,
    /// One-line description.
    pub what: &'static str,
    /// Runner.
    pub run: fn(&ExpOptions) -> Vec<Table>,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("id", &self.id)
            .field("what", &self.what)
            .finish()
    }
}

/// The registry of all experiments, in order.
pub const ALL: [Experiment; 16] = [
    Experiment {
        id: "e1",
        what: "Thm 2: Init slot complexity",
        run: e1_init::run,
    },
    Experiment {
        id: "e2",
        what: "Thm 7: degree distribution",
        run: e2_degree::run,
    },
    Experiment {
        id: "e3",
        what: "Thm 11/13: sparsity",
        run: e3_sparsity::run,
    },
    Experiment {
        id: "e4",
        what: "Thm 3: mean-power rescheduling",
        run: e4_reschedule::run,
    },
    Experiment {
        id: "e5",
        what: "Thm 16: TVC with mean power",
        run: e5_tvc_mean::run,
    },
    Experiment {
        id: "e6",
        what: "Thm 21: TVC with arbitrary power",
        run: e6_tvc_arbitrary::run,
    },
    Experiment {
        id: "e7",
        what: "§4: distributed vs centralized",
        run: e7_comparison::run,
    },
    Experiment {
        id: "e8",
        what: "Def 1: bi-tree latency",
        run: e8_latency::run,
    },
    Experiment {
        id: "e9",
        what: "Thm 9/Eqn 5: sparse capacity machinery",
        run: e9_sparse_capacity::run,
    },
    Experiment {
        id: "e10",
        what: "ablations of DESIGN.md §5 knobs",
        run: e10_ablations::run,
    },
    Experiment {
        id: "e11",
        what: "engine scaling: naive vs grid vs parallel interference",
        run: e11_scaling::run,
    },
    Experiment {
        id: "e12",
        what: "end-to-end connect scaling, per-phase timings",
        run: e12_connect_scaling::run,
    },
    Experiment {
        id: "e13",
        what: "dynamic churn: incremental vs full re-packing",
        run: e13_churn::run,
    },
    Experiment {
        id: "e14",
        what: "kernel phase profile: SoA field build + certified decode",
        run: e14_kernel_profile::run,
    },
    Experiment {
        id: "e15",
        what: "self-healing service loop: sustained churn through detect→repair",
        run: e15_serve::run,
    },
    Experiment {
        id: "e16",
        what: "instance families: heterogeneous, percolation and shadowed deployments",
        run: e16_families::run,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_ordered() {
        let ids: Vec<_> = ALL.iter().map(|e| e.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ALL.len());
        assert_eq!(ids[0], "e1");
        assert_eq!(ids[12], "e13");
        assert_eq!(ids[14], "e15");
        assert_eq!(ids[15], "e16");
    }
}
