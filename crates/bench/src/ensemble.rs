//! The multi-seed ensemble experiment driver.
//!
//! PRs 2–3 made a *single* instance fast; this module parallelizes the
//! embarrassingly parallel axis the ROADMAP called out: independent
//! `(family, n, seed)` trials of one experiment. It fans jobs out over
//! the persistent scoped worker pool extracted from the simulation
//! engine ([`sinr_sim::pool::with_pool`]) with dynamic self-scheduling
//! — each worker pulls the next job the moment it finishes one, so a
//! slow trial (a large `n`, an unlucky seed) does not serialize the
//! ladder — and merges results back **in job order**, so aggregate
//! output is byte-identical regardless of thread count or scheduling.
//!
//! Two ingredients make that determinism hold end to end (DESIGN.md §9):
//!
//! 1. **Pure seed splitting.** Per-trial RNG streams are derived from
//!    the experiment seed by [`stream_seed`] — a closed-form SplitMix64
//!    mix of `(seed, stream index)`, never a draw from a shared
//!    generator — so a trial's randomness depends only on *which* trial
//!    it is, not on when or where it ran.
//! 2. **Order-canonical aggregation.** The statistics layer
//!    ([`crate::stats::Stats`]) sorts each sample before summing, so
//!    even the non-commutativity of float addition cannot leak
//!    scheduling into reported bits.

use sinr_sim::pool::with_pool;

use crate::ExpOptions;

/// The `i`-th output of a SplitMix64 sequence seeded with `seed` — the
/// workspace's deterministic seed-splitting primitive. A pure function
/// of `(seed, stream)`: no shared state, no draw order, hence no way
/// for thread scheduling to perturb which randomness a trial sees.
///
/// This is the same generator `StdRng::seed_from_u64` uses for seed
/// expansion, reused here for stream derivation (DESIGN.md §9).
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The two RNG streams of one ensemble trial: `(instance_seed,
/// algorithm_seed)` for trial `k` of row `row` under `experiment_seed`.
///
/// The split is hierarchical — experiment seed → row stream → trial
/// streams — so adding rows (or seeds) to an experiment never shifts
/// the randomness of existing ones.
pub fn trial_streams(experiment_seed: u64, row: u64, k: u64) -> (u64, u64) {
    let row_seed = stream_seed(experiment_seed, row);
    (
        stream_seed(row_seed, 2 * k),
        stream_seed(row_seed, 2 * k + 1),
    )
}

/// The ensemble driver: a worker-thread count plus the fan-out/merge
/// loop. Build one per experiment run (from
/// [`ExpOptions`] via [`Ensemble::from_opts`]) and push every trial of
/// every table row through [`Ensemble::map`].
#[derive(Clone, Copy, Debug)]
pub struct Ensemble {
    threads: usize,
}

impl Ensemble {
    /// A driver with an explicit worker count (`0` = one per available
    /// core).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        Ensemble { threads }
    }

    /// The driver configured by `--threads` (via [`ExpOptions`]).
    pub fn from_opts(opts: &ExpOptions) -> Self {
        Ensemble::new(opts.threads)
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job through the persistent worker pool and returns
    /// the results **in input order** — the ordered merge that makes
    /// downstream output independent of scheduling. Jobs are
    /// self-scheduled: each worker receives its next job as soon as it
    /// reports a result, so heterogeneous job costs balance across the
    /// pool. A panicking job propagates out with its original payload
    /// after the pool unwinds.
    pub fn map<J, R, F>(&self, jobs: Vec<J>, f: F) -> Vec<R>
    where
        J: Send,
        R: Send,
        F: Fn(J) -> R + Sync,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = self.threads.min(n);
        if threads <= 1 {
            // One worker degenerates to a plain in-order loop; skip the
            // pool so `--threads 1` has zero dispatch overhead.
            return jobs.into_iter().map(f).collect();
        }
        with_pool(
            threads,
            |_| (),
            |_, (), (i, job): (usize, J)| (i, f(job)),
            |pool| {
                let mut results: Vec<Option<R>> = Vec::with_capacity(n);
                results.resize_with(n, || None);
                let mut queue = jobs.into_iter().enumerate();
                let mut in_flight = 0usize;
                for w in 0..threads {
                    // Initial fill: one job per worker (threads ≤ n).
                    let job = queue.next().expect("threads clamped to job count");
                    pool.send(w, job);
                    in_flight += 1;
                }
                while in_flight > 0 {
                    let (w, (i, r)) = pool.recv();
                    results[i] = Some(r);
                    in_flight -= 1;
                    if let Some(job) = queue.next() {
                        pool.send(w, job);
                        in_flight += 1;
                    }
                }
                results
                    .into_iter()
                    .map(|r| r.expect("every job completed"))
                    .collect()
            },
        )
    }

    /// The per-row ensemble scaffolding every ladder experiment shares:
    /// enumerate the `(row, trial)` jobs of `rows` consecutive table
    /// rows, derive each trial's `(instance_seed, algorithm_seed)`
    /// hierarchically via [`trial_streams`], fan everything out in
    /// **one** [`map`](Self::map) dispatch (so the pool persists across
    /// the whole ladder and rows are not barriers), and hand back one
    /// `Vec` of trial results per row, in row and trial order.
    ///
    /// Experiments with a non-standard split keep using [`map`]
    /// directly: E7's *paired* ensemble draws every row's streams from
    /// row 0, and E10 doubles the ensemble of one row block.
    pub fn map_rows<R, F>(
        &self,
        experiment_seed: u64,
        rows: usize,
        seeds: u64,
        trial: F,
    ) -> Vec<Vec<R>>
    where
        R: Send,
        F: Fn(usize, u64, u64) -> R + Sync,
    {
        let jobs: Vec<(u64, u64)> = (0..rows as u64)
            .flat_map(|row| (0..seeds).map(move |k| (row, k)))
            .collect();
        let flat = self.map(jobs, |(row, k)| {
            let (inst_seed, algo_seed) = trial_streams(experiment_seed, row, k);
            trial(row as usize, inst_seed, algo_seed)
        });
        let mut flat = flat.into_iter();
        (0..rows)
            .map(|_| {
                (0..seeds)
                    .map(|_| flat.next().expect("one result per enumerated job"))
                    .collect()
            })
            .collect()
    }

    /// Ensemble sweep of one table row: runs `trial(instance_seed,
    /// algorithm_seed)` for `k = 0..seeds` with the streams of
    /// [`trial_streams`], in parallel, results in trial order.
    ///
    /// Convenience for single-row consumers (the `connect --seeds`
    /// CLI). The experiments instead enumerate `(row, k)` jobs for
    /// *all* their rows and make **one** [`map`](Self::map) call, so
    /// the whole ladder shares the pool — a slow trial in one row
    /// never idles workers at a row boundary.
    pub fn run_trials<R, F>(&self, experiment_seed: u64, row: u64, seeds: u64, trial: F) -> Vec<R>
    where
        R: Send,
        F: Fn(u64, u64) -> R + Sync,
    {
        let jobs: Vec<(u64, u64)> = (0..seeds)
            .map(|k| trial_streams(experiment_seed, row, k))
            .collect();
        self.map(jobs, |(inst_seed, algo_seed)| trial(inst_seed, algo_seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seed_is_pure_and_spreads() {
        // Pure: same inputs, same output.
        assert_eq!(stream_seed(42, 7), stream_seed(42, 7));
        // Golden pin: the split scheme is part of the determinism
        // contract — changing it re-rolls every committed ensemble
        // number, so it must be loud and deliberate (DESIGN.md §9).
        assert_eq!(stream_seed(0, 0), 0xe220_a839_7b1d_cdaf);
        // Distinct streams and seeds decorrelate.
        let mut outs: Vec<u64> = (0..64).map(|s| stream_seed(0xC0FFEE, s)).collect();
        outs.extend((0..64).map(|s| stream_seed(0xC0FFEF, s)));
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 128, "stream collision");
    }

    #[test]
    fn trial_streams_are_stable_under_growth() {
        // Adding seeds or rows never changes existing streams.
        let a = trial_streams(1, 3, 0);
        assert_eq!(a, trial_streams(1, 3, 0));
        assert_ne!(a, trial_streams(1, 3, 1));
        assert_ne!(a, trial_streams(1, 4, 0));
        assert_ne!(a.0, a.1, "instance and algorithm streams must differ");
    }

    #[test]
    fn map_preserves_input_order_at_every_thread_count() {
        let expect: Vec<u64> = (0..97).map(|x| x * 3 + 1).collect();
        for threads in [1usize, 2, 3, 8] {
            let jobs: Vec<u64> = (0..97).collect();
            let got = Ensemble::new(threads).map(jobs, |x| x * 3 + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_fewer_jobs_than_threads() {
        let e = Ensemble::new(8);
        assert_eq!(e.map(Vec::<u64>::new(), |x| x), Vec::<u64>::new());
        assert_eq!(e.map(vec![5u64, 6], |x| x + 1), vec![6, 7]);
    }

    #[test]
    fn auto_threads_resolves_to_at_least_one() {
        assert!(Ensemble::new(0).threads() >= 1);
        assert_eq!(Ensemble::new(3).threads(), 3);
    }

    #[test]
    #[should_panic(expected = "trial 2 failed")]
    fn job_panic_propagates() {
        Ensemble::new(2).map((0..8u64).collect(), |x| {
            if x == 2 {
                panic!("trial 2 failed");
            }
            x
        });
    }

    #[test]
    fn run_trials_matches_manual_streams() {
        let e = Ensemble::new(2);
        let got = e.run_trials(99, 5, 4, |a, b| (a, b));
        let expect: Vec<(u64, u64)> = (0..4).map(|k| trial_streams(99, 5, k)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn map_rows_chunks_in_row_and_trial_order() {
        let e = Ensemble::new(3);
        let got = e.map_rows(7, 3, 2, |row, a, b| (row, a, b));
        assert_eq!(got.len(), 3);
        for (row, trials) in got.iter().enumerate() {
            assert_eq!(trials.len(), 2);
            for (k, &(r, a, b)) in trials.iter().enumerate() {
                assert_eq!(r, row);
                assert_eq!((a, b), trial_streams(7, row as u64, k as u64));
            }
        }
        // Degenerate shapes stay well-formed.
        assert_eq!(e.map_rows(7, 0, 4, |_, _, _| ()).len(), 0);
        assert_eq!(e.map_rows(7, 2, 0, |_, _, _| ()), vec![vec![], vec![]]);
    }
}
