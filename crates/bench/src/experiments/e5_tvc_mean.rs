//! E5 — Theorem 16: `TreeViaCapacity` with the mean-power sampling
//! selector schedules a bi-tree in `O(Υ·log n)` slots, converging in
//! `O(Υ·log Δ·log² n)` distributed time.

use sinr_connectivity::selector::MeanSamplingSelector;
use sinr_connectivity::tvc::{tree_via_capacity, TvcConfig};
use sinr_phy::{upsilon, SinrParams};

use crate::table::{f2, Table};
use crate::workloads::Family;
use crate::{mean, parallel_map, ExpOptions};

/// Runs E5.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();

    let mut t = Table::new(
        "E5: TreeViaCapacity with mean power (Thm 16)",
        "schedule = O(Υ·log n) slots: normalized column ~flat; runtime = O(Υ·logΔ·log² n)",
        &[
            "family",
            "n",
            "Υ",
            "schedule slots",
            "slots/(Υ·log n)",
            "iterations",
            "runtime slots",
        ],
    );

    for family in [Family::UniformSquare, Family::Clustered] {
        for &n in opts.sizes() {
            let jobs: Vec<u64> = (0..opts.trials()).collect();
            let rows = parallel_map(jobs, |t_off| {
                let inst = family.instance(n, opts.seed.wrapping_add(t_off));
                let mut sel = MeanSamplingSelector::default();
                let out = tree_via_capacity(
                    &params,
                    &inst,
                    &TvcConfig {
                        init: opts.init_config(),
                        ..Default::default()
                    },
                    &mut sel,
                    opts.seed.wrapping_add(500 + t_off),
                )
                .expect("tvc converges");
                let ups = upsilon(inst.len(), inst.delta());
                let log_n = (inst.len() as f64).log2();
                (
                    ups,
                    out.schedule_len() as f64,
                    out.schedule_len() as f64 / (ups * log_n),
                    out.iterations as f64,
                    out.runtime_slots as f64,
                )
            });
            t.push_row(vec![
                family.label().into(),
                n.to_string(),
                f2(mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>())),
                f2(mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>())),
                f2(mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>())),
                f2(mean(&rows.iter().map(|r| r.3).collect::<Vec<_>>())),
                f2(mean(&rows.iter().map(|r| r.4).collect::<Vec<_>>())),
            ]);
        }
    }

    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let opts = ExpOptions {
            quick: true,
            seed: 5,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 2 * opts.sizes().len());
    }
}
