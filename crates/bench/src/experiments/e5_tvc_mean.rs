//! E5 — Theorem 16: `TreeViaCapacity` with the mean-power sampling
//! selector schedules a bi-tree in `O(Υ·log n)` slots, converging in
//! `O(Υ·log Δ·log² n)` distributed time.
//!
//! Rows aggregate a `--seeds K` ensemble through the
//! [`crate::ensemble`] driver (one dispatch for the whole ladder) and
//! report `mean ±95% CI`.

use sinr_connectivity::selector::MeanSamplingSelector;
use sinr_connectivity::tvc::{tree_via_capacity, TvcConfig};
use sinr_phy::{upsilon, SinrParams};

use crate::ensemble::Ensemble;
use crate::stats::Stats;
use crate::table::Table;
use crate::workloads::Family;
use crate::ExpOptions;

/// Runs E5.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let seeds = opts.ensemble_seeds();
    let driver = Ensemble::from_opts(opts);

    let mut t = Table::new(
        "E5: TreeViaCapacity with mean power (Thm 16)",
        "schedule = O(Υ·log n) slots: normalized column ~flat; runtime = \
         O(Υ·logΔ·log² n) (mean ±95% CI)",
        &[
            "family",
            "n",
            "seeds",
            "Υ",
            "schedule slots",
            "slots/(Υ·log n)",
            "iterations",
            "runtime slots",
        ],
    );

    let specs: Vec<(Family, usize)> = [Family::UniformSquare, Family::Clustered]
        .into_iter()
        .flat_map(|family| opts.sizes().iter().map(move |&n| (family, n)))
        .collect();
    let results = driver.map_rows(
        opts.seed,
        specs.len(),
        seeds,
        |row, inst_seed, algo_seed| {
            let (family, n) = specs[row];
            let inst = family.instance(n, inst_seed);
            let mut sel = MeanSamplingSelector::default();
            let out = tree_via_capacity(
                &params,
                &inst,
                &TvcConfig {
                    init: opts.init_config(),
                    ..Default::default()
                },
                &mut sel,
                algo_seed,
            )
            .expect("tvc converges");
            let ups = upsilon(inst.len(), inst.delta());
            let log_n = (inst.len() as f64).log2();
            (
                ups,
                out.schedule_len() as f64,
                out.schedule_len() as f64 / (ups * log_n),
                out.iterations as f64,
                out.runtime_slots as f64,
            )
        },
    );

    for ((family, n), trials) in specs.iter().zip(&results) {
        let col = |f: fn(&(f64, f64, f64, f64, f64)) -> f64| {
            Stats::of(&trials.iter().map(f).collect::<Vec<_>>()).cell()
        };
        t.push_row(vec![
            family.label().into(),
            n.to_string(),
            seeds.to_string(),
            col(|r| r.0),
            col(|r| r.1),
            col(|r| r.2),
            col(|r| r.3),
            col(|r| r.4),
        ]);
    }

    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let opts = ExpOptions {
            quick: true,
            seed: 5,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 2 * opts.sizes().len());
        for row in &tables[0].rows {
            assert_eq!(row[2], "2");
        }
    }
}
