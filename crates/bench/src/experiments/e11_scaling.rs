//! E11 — engine scaling sweep: naive vs grid-indexed vs parallel
//! interference resolution.
//!
//! Measures wall-clock per simulated slot for the [`Engine`] backends
//! on a fixed contention workload ("slot soup": every node transmits
//! with probability 0.1 at a power sized to the instance's
//! nearest-neighbor spacing, otherwise listens), at n up to 16384 on
//! the uniform and clustered families plus single-slot *capability*
//! rungs at n = 65536 and 131072. The naive path is `O(listeners
//! × transmitters²)` per slot and is only timed up to n = 2048 — the
//! projected cost beyond that is minutes per slot; larger sizes
//! compare the grid engine against the pooled parallel engine
//! (`Parallel(4)`, whose wall-clock gain requires the host to actually
//! have cores — the `cores` column records what this machine offered).
//! Under the `profile` feature the capability rungs additionally emit
//! an E11c table: the grid run's per-phase breakdown (build / grid /
//! resolve / merge wall laps plus the field's near-field,
//! far-field-cert and fallback decode phases and query counters).
//!
//! Every timed row also replays the run on each backend with the same
//! seed and compares the slot reports — the table's `parity` column is
//! a live bit-identical check, not an assumption.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::Rng;

use sinr_geom::{GridIndex, Instance, NodeId};
use sinr_phy::SinrParams;
use sinr_sim::{Action, Engine, EngineBackend, Protocol, SlotOutcome, SlotReport};

use crate::table::{f2, Table};
use crate::workloads::Family;
use crate::ExpOptions;

/// Thread count of the parallel rows: the acceptance configuration of
/// the scale-out experiments (E11/E12).
pub const PARALLEL_THREADS: usize = 4;

/// The benchmark protocol: a memoryless contention soup.
#[derive(Debug)]
struct Soup {
    power: f64,
    decodes: u64,
}

impl Protocol for Soup {
    type Msg = ();
    // The soup only counts decodes — it never reads the measured SINR
    // or affectance, so the engine skips both O(transmitters)
    // per-reception instruments (the dominant cost of a dense slot at
    // capability n; decode winners are certificate-decided either way).
    const MEASURES_AFFECTANCE: bool = false;
    const MEASURES_SINR: bool = false;
    fn begin_slot(&mut self, _: NodeId, _: u64, rng: &mut StdRng) -> Action<()> {
        if rng.gen_bool(0.1) {
            Action::Transmit {
                power: self.power,
                msg: (),
            }
        } else {
            Action::Listen
        }
    }
    fn end_slot(&mut self, _: NodeId, _: u64, o: SlotOutcome<()>, _: &mut StdRng) {
        if matches!(o, SlotOutcome::Received(_)) {
            self.decodes += 1;
        }
    }
}

/// Mean nearest-neighbor distance, for sizing the soup power the way
/// the real protocols size their round powers.
pub(crate) fn mean_nn_distance(inst: &Instance) -> f64 {
    let cell = (inst.delta() / (inst.len() as f64).sqrt()).max(1.0);
    let grid = GridIndex::build(inst, cell);
    let mut total = 0.0;
    let mut count = 0usize;
    for u in 0..inst.len() {
        if let Some((_, d)) = grid.nearest_neighbor(u) {
            total += d;
            count += 1;
        }
    }
    if count == 0 {
        1.0
    } else {
        total / count as f64
    }
}

struct RunStats {
    micros_per_slot: f64,
    reports: Vec<SlotReport>,
    decodes: u64,
}

fn run_engine(
    params: &SinrParams,
    inst: &Instance,
    power: f64,
    slots: u64,
    seed: u64,
    backend: EngineBackend,
) -> RunStats {
    let mut engine =
        Engine::with_backend(params, inst, |_| Soup { power, decodes: 0 }, seed, backend);
    let start = Instant::now();
    // The batch loop is what the parallel backend pools its workers
    // under, so every backend is timed through it.
    let reports = engine.run_reports(slots);
    let elapsed = start.elapsed().as_secs_f64();
    RunStats {
        micros_per_slot: elapsed * 1e6 / slots as f64,
        reports,
        decodes: engine.nodes().iter().map(|n| n.decodes).sum(),
    }
}

/// Smallest n treated as a *capability* rung: a single-slot proof that
/// the engine completes at that scale. Capability rows additionally get
/// a per-phase breakdown when the `profile` feature is enabled.
pub const CAPABILITY_MIN_N: usize = 65536;

/// Sizes, per-size slot budgets, and whether the naive engine is timed
/// at that size (its per-slot cost grows super-quadratically; beyond
/// 2048 it would take minutes per slot).
///
/// Full runs always end on the capability rungs (n = 65536 and 131072,
/// one slot each, naive omitted); `capability` appends the 65536 rung
/// to the quick ladder — the CI smoke configuration.
fn ladder(quick: bool, capability: bool) -> Vec<(usize, u64, bool)> {
    if quick {
        let mut rungs = vec![(128, 24, true), (256, 12, true), (512, 6, true)];
        if capability {
            rungs.push((CAPABILITY_MIN_N, 1, false));
        }
        rungs
    } else {
        vec![
            (128, 48, true),
            (256, 24, true),
            (512, 12, true),
            (1024, 6, true),
            (2048, 3, true),
            (4096, 3, false),
            (8192, 2, false),
            (16384, 2, false),
            (65536, 1, false),
            (131072, 1, false),
        ]
    }
}

/// Phases the engine records in wall-clock seconds; everything else in
/// a [`ProfileReport`](sinr_sim::profile::ProfileReport) is a raw
/// per-slot counter (queries, certificates, fallbacks, rings).
#[cfg(feature = "profile")]
const TIME_PHASES: &[&str] = &[
    "build",
    "grid",
    "resolve",
    "merge",
    "near-field",
    "far-field-cert",
    "fallback",
];

/// The shared shape of the phase-profile tables: E11c, E12b and the
/// `connect --profile` CLI all emit the same columns so the breakdowns
/// diff against each other.
#[cfg(feature = "profile")]
pub fn profile_table(title: &str) -> Table {
    Table::new(
        title,
        "per-phase breakdown of the profiled grid run at the capability sizes \
         (time phases in ms; counter phases are raw per-slot samples)",
        &[
            "scope", "n", "phase", "unit", "samples", "min", "mean", "max", "total",
        ],
    )
}

/// Appends one row per recorded phase of `report` to a
/// [`profile_table`], converting time phases to milliseconds.
#[cfg(feature = "profile")]
pub fn push_profile_rows(
    t: &mut Table,
    scope: &str,
    n: usize,
    report: &sinr_sim::profile::ProfileReport,
) {
    for (name, stats) in &report.phases {
        let time = TIME_PHASES.contains(name);
        let scale = if time { 1e3 } else { 1.0 };
        t.push_row(vec![
            scope.to_string(),
            n.to_string(),
            (*name).to_string(),
            if time { "ms" } else { "count" }.to_string(),
            stats.count.to_string(),
            f2(stats.min * scale),
            f2(stats.mean() * scale),
            f2(stats.max * scale),
            f2(stats.total * scale),
        ]);
    }
}

/// Runs E11, reporting per-slot cost, speedups, crossover and parity.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut t = Table::new(
        "E11: per-slot engine cost, naive vs grid vs parallel interference",
        "indexed decode certifies from the near field (≥5x at n=1024); the pooled \
         parallel engine needs actual cores to win wall-clock, parity holds regardless",
        &[
            "family",
            "n",
            "tx/slot",
            "naive µs/slot",
            "grid µs/slot",
            "par µs/slot",
            "naive/grid",
            "grid/par",
            "cores",
            "parity",
        ],
    );
    let mut crossover = Table::new(
        "E11b: crossover",
        "smallest swept n where the indexed engine wins outright",
        &["family", "crossover n", "speedup@max naive n"],
    );

    #[cfg(feature = "profile")]
    let mut phases = profile_table("E11c: capability-row phase profile (grid engine)");

    for family in [Family::UniformSquare, Family::Clustered] {
        let mut cross: Option<usize> = None;
        let mut last_naive_speedup = 0.0;
        for &(n, slots, with_naive) in &ladder(opts.quick, opts.capability) {
            let inst = family.instance(n, opts.seed.wrapping_add(n as u64));
            let power = params.min_power_for_length(1.5 * mean_nn_distance(&inst)) * 4.0;
            let seed = opts.seed.wrapping_add(1100 + n as u64);

            // Capability rungs run the grid engine under the profiler
            // (a handful of Instant reads per slot — noise next to a
            // multi-ms slot, and bit-parity is untouched either way).
            #[cfg(feature = "profile")]
            if n >= CAPABILITY_MIN_N {
                sinr_sim::profile::start();
            }
            let grid = run_engine(&params, &inst, power, slots, seed, EngineBackend::Grid);
            #[cfg(feature = "profile")]
            if n >= CAPABILITY_MIN_N {
                push_profile_rows(&mut phases, family.label(), n, &sinr_sim::profile::stop());
            }
            let par = run_engine(
                &params,
                &inst,
                power,
                slots,
                seed,
                EngineBackend::Parallel(PARALLEL_THREADS),
            );
            let naive = with_naive
                .then(|| run_engine(&params, &inst, power, slots, seed, EngineBackend::Naive));

            let parity = grid.reports == par.reports
                && grid.decodes == par.decodes
                && naive.as_ref().map_or(true, |nv| {
                    nv.reports == grid.reports && nv.decodes == grid.decodes
                });
            // The parity column is a *gate*, not an observation: the CI
            // smoke step relies on this run failing loudly, so a
            // mismatch must not end as green text in a log table.
            assert!(
                parity,
                "E11 parity MISMATCH: engine backends diverged on {} n={n} \
                 (grid decodes {}, par decodes {}, naive decodes {:?})",
                family.label(),
                grid.decodes,
                par.decodes,
                naive.as_ref().map(|nv| nv.decodes),
            );
            let naive_speedup = naive
                .as_ref()
                .map(|nv| nv.micros_per_slot / grid.micros_per_slot.max(1e-9));
            if let Some(speedup) = naive_speedup {
                // Crossover = smallest n after which the indexed engine
                // wins at every larger swept size (revoked on regression).
                if speedup > 1.0 {
                    cross.get_or_insert(n);
                } else {
                    cross = None;
                }
                last_naive_speedup = speedup;
            }
            let tx_mean = grid.reports.iter().map(|r| r.transmissions).sum::<usize>() as f64
                / slots.max(1) as f64;
            t.push_row(vec![
                family.label().to_string(),
                n.to_string(),
                f2(tx_mean),
                naive
                    .as_ref()
                    .map_or_else(|| "-".into(), |nv| f2(nv.micros_per_slot)),
                f2(grid.micros_per_slot),
                f2(par.micros_per_slot),
                naive_speedup.map_or_else(|| "-".into(), f2),
                f2(grid.micros_per_slot / par.micros_per_slot.max(1e-9)),
                cores.to_string(),
                if parity {
                    "ok".into()
                } else {
                    "MISMATCH".into()
                },
            ]);
        }
        crossover.push_row(vec![
            family.label().to_string(),
            cross.map_or_else(|| "-".into(), |n| n.to_string()),
            f2(last_naive_speedup),
        ]);
    }

    // Only a populated breakdown is emitted: the snapshot schema gate
    // (tests/golden_json.rs) rejects empty tables, and a profile-built
    // quick run without `--capability` never reaches a profiled rung.
    #[cfg(feature = "profile")]
    {
        let mut out = vec![t, crossover];
        if !phases.rows.is_empty() {
            out.push(phases);
        }
        out
    }
    #[cfg(not(feature = "profile"))]
    vec![t, crossover]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables_with_parity() {
        let opts = ExpOptions {
            quick: true,
            seed: 11,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 2 * ladder(true, false).len());
        for row in &tables[0].rows {
            assert_eq!(row[9], "ok", "backends diverged: {row:?}");
        }
    }
}
