//! E8 — Definition 1 / §4: a bi-tree completes a converge-cast and a
//! broadcast in one schedule pass each, and any pairwise message within
//! two passes — all `O(log n)` slots for the Theorem-21 trees. The
//! passes are *replayed against the SINR channel* with the actual
//! powers, not just read off the data structure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sinr_connectivity::latency::audit_bitree;
use sinr_connectivity::selector::DistrCapSelector;
use sinr_connectivity::tvc::{tree_via_capacity, TvcConfig};
use sinr_phy::SinrParams;

use crate::table::{f2, Table};
use crate::workloads::Family;
use crate::{mean, parallel_map, ExpOptions};

/// Runs E8.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();

    let mut t = Table::new(
        "E8: bi-tree latency (replayed against the SINR channel)",
        "convergecast = broadcast = schedule length; pairwise ≤ 2× schedule; all O(log n)",
        &[
            "n",
            "log n",
            "schedule slots",
            "convergecast ok",
            "broadcast ok",
            "max pairwise (sampled)",
            "2×schedule bound",
        ],
    );

    for &n in opts.sizes() {
        let jobs: Vec<u64> = (0..opts.trials()).collect();
        let rows = parallel_map(jobs, |t_off| {
            let inst = Family::UniformSquare.instance(n, opts.seed.wrapping_add(t_off));
            let mut sel = DistrCapSelector::default();
            let out = tree_via_capacity(
                &params,
                &inst,
                &TvcConfig {
                    init: opts.init_config(),
                    ..Default::default()
                },
                &mut sel,
                opts.seed.wrapping_add(800 + t_off),
            )
            .expect("tvc converges");
            let (up, down) =
                audit_bitree(&params, &inst, &out.bitree, &out.power).expect("audit passes");

            // Sample random pairs for the pairwise bound.
            let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(900 + t_off));
            let mut worst = 0usize;
            for _ in 0..32 {
                let u = rng.gen_range(0..inst.len());
                let v = rng.gen_range(0..inst.len());
                worst = worst.max(out.bitree.pairwise_latency(u, v));
            }
            (
                out.schedule_len() as f64,
                (up.all_delivered && up.root_aggregate == inst.len() - 1) as u8 as f64,
                down.all_reached as u8 as f64,
                worst as f64,
                out.bitree.pairwise_latency_bound() as f64,
            )
        });
        t.push_row(vec![
            n.to_string(),
            f2((n as f64).log2()),
            f2(mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.3).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.4).collect::<Vec<_>>())),
        ]);
    }

    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table_with_perfect_delivery() {
        let opts = ExpOptions {
            quick: true,
            seed: 8,
            ..Default::default()
        };
        let tables = run(&opts);
        for row in &tables[0].rows {
            assert_eq!(row[3], "1.00", "convergecast must always deliver");
            assert_eq!(row[4], "1.00", "broadcast must always deliver");
            let pairwise: f64 = row[5].parse().unwrap();
            let bound: f64 = row[6].parse().unwrap();
            assert!(pairwise <= bound);
        }
    }
}
