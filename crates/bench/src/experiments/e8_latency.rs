//! E8 — Definition 1 / §4: a bi-tree completes a converge-cast and a
//! broadcast in one schedule pass each, and any pairwise message within
//! two passes — all `O(log n)` slots for the Theorem-21 trees. The
//! passes are *replayed against the SINR channel* with the actual
//! powers, not just read off the data structure.
//!
//! Each `n` row aggregates `--seeds K` independent trees; all
//! `(row, k)` trials fan out through one [`crate::ensemble`] dispatch.
//! Delivery flags are reported as the ensemble fraction (must be 1.00
//! — every tree delivers), latencies as `mean ±95% CI`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sinr_connectivity::latency::audit_bitree;
use sinr_connectivity::selector::DistrCapSelector;
use sinr_connectivity::tvc::{tree_via_capacity, TvcConfig};
use sinr_phy::SinrParams;

use crate::ensemble::{stream_seed, trial_streams, Ensemble};
use crate::stats::Stats;
use crate::table::{f2, Table};
use crate::workloads::Family;
use crate::ExpOptions;

/// Runs E8.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let seeds = opts.ensemble_seeds();
    let driver = Ensemble::from_opts(opts);

    let mut t = Table::new(
        "E8: bi-tree latency (replayed against the SINR channel)",
        "convergecast = broadcast = schedule length; pairwise ≤ 2× schedule; all O(log n) \
         (delivery columns are ensemble fractions; latencies mean ±95% CI)",
        &[
            "n",
            "log n",
            "seeds",
            "schedule slots",
            "convergecast ok",
            "broadcast ok",
            "max pairwise (sampled)",
            "2×schedule bound",
        ],
    );

    let sizes = opts.sizes();
    let jobs: Vec<(u64, u64)> = (0..sizes.len() as u64)
        .flat_map(|row| (0..seeds).map(move |k| (row, k)))
        .collect();
    let results = driver.map(jobs, |(row, k)| {
        let (inst_seed, algo_seed) = trial_streams(opts.seed, row, k);
        let n = sizes[row as usize];
        let inst = Family::UniformSquare.instance(n, inst_seed);
        let mut sel = DistrCapSelector::default();
        let out = tree_via_capacity(
            &params,
            &inst,
            &TvcConfig {
                init: opts.init_config(),
                ..Default::default()
            },
            &mut sel,
            algo_seed,
        )
        .expect("tvc converges");
        let (up, down) =
            audit_bitree(&params, &inst, &out.bitree, &out.power).expect("audit passes");

        // Sample random pairs for the pairwise bound, on a stream
        // split from the trial's algorithm stream.
        let mut rng = StdRng::seed_from_u64(stream_seed(algo_seed, 1));
        let mut worst = 0usize;
        for _ in 0..32 {
            let u = rng.gen_range(0..inst.len());
            let v = rng.gen_range(0..inst.len());
            worst = worst.max(out.bitree.pairwise_latency(u, v));
        }
        (
            out.schedule_len() as f64,
            (up.all_delivered && up.root_aggregate == inst.len() - 1) as u8 as f64,
            down.all_reached as u8 as f64,
            worst as f64,
            out.bitree.pairwise_latency_bound() as f64,
        )
    });

    for (&n, trials) in sizes.iter().zip(results.chunks(seeds as usize)) {
        let sched = Stats::of(&trials.iter().map(|r| r.0).collect::<Vec<_>>());
        let up_ok = Stats::of(&trials.iter().map(|r| r.1).collect::<Vec<_>>());
        let down_ok = Stats::of(&trials.iter().map(|r| r.2).collect::<Vec<_>>());
        let pairwise = Stats::of(&trials.iter().map(|r| r.3).collect::<Vec<_>>());
        let bound = Stats::of(&trials.iter().map(|r| r.4).collect::<Vec<_>>());
        t.push_row(vec![
            n.to_string(),
            f2((n as f64).log2()),
            seeds.to_string(),
            sched.cell(),
            f2(up_ok.mean),
            f2(down_ok.mean),
            pairwise.cell(),
            bound.cell(),
        ]);
    }

    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parses the mean out of a fixed-width `mean ±ci` ensemble cell.
    fn cell_mean(cell: &str) -> f64 {
        cell.split(" ±").next().unwrap().trim().parse().unwrap()
    }

    #[test]
    fn quick_run_produces_table_with_perfect_delivery() {
        let opts = ExpOptions {
            quick: true,
            seed: 8,
            ..Default::default()
        };
        let tables = run(&opts);
        for row in &tables[0].rows {
            assert_eq!(row[4], "1.00", "convergecast must always deliver");
            assert_eq!(row[5], "1.00", "broadcast must always deliver");
            let pairwise = cell_mean(&row[6]);
            let bound = cell_mean(&row[7]);
            assert!(pairwise <= bound);
        }
    }
}
