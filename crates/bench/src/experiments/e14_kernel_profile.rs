//! E14 — kernel phase profile: where a grid-engine slot's time goes.
//!
//! E11 reports *that* the indexed engine wins; E14 reports *why*, by
//! timing the two kernels every slot is made of — the SoA
//! [`InterferenceField`] build and the certified best-SINR decode —
//! directly against one representative slot-soup transmitter set per
//! size, and splitting the decode into its phases:
//!
//! - **build** — CSR grid construction over the slot's senders;
//! - **near-field** — candidate scan + exact near-sum accumulation;
//! - **far-cert** — Chebyshev-ring far-field certification;
//! - **fallback** — exact re-decodes where the certificate stayed
//!   undecided.
//!
//! Phase wall-clock comes from [`FieldScratch`]'s opt-in timers and
//! the decode-outcome counters from its always-on [`QueryStats`] — no
//! cargo feature required, so this experiment (and the committed
//! `BENCH_PROFILE.json` it regenerates) runs on a default build. The
//! counter columns (senders, certified/fallback shares, rings per
//! query) are deterministic per seed; only the millisecond columns are
//! measured. The same kernels are micro-benchmarked in
//! `benches/kernels.rs`; the engine-level view of the same phases is
//! the E11c/E12b capability breakdown under the `profile` feature.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sinr_geom::NodeId;
use sinr_phy::field::{FieldScratch, InterferenceField};
use sinr_phy::SinrParams;

use super::e11_scaling::mean_nn_distance;
use crate::table::{f2, Table};
use crate::workloads::Family;
use crate::ExpOptions;

/// Sizes profiled. The full ladder ends at the 65536 capability size;
/// the 131072 engine-level breakdown lives in E11c/E12b, where the
/// engine actually runs it.
fn ladder(quick: bool) -> &'static [usize] {
    if quick {
        &[512, 1024]
    } else {
        &[1024, 4096, 16384, 65536]
    }
}

/// One slot-soup transmitter set: every node transmits with
/// probability 0.1 at the E11 soup power, the rest listen.
fn soup_senders(
    params: &SinrParams,
    inst: &sinr_geom::Instance,
    seed: u64,
) -> (Vec<(NodeId, f64)>, Vec<NodeId>) {
    let power = params.min_power_for_length(1.5 * mean_nn_distance(inst)) * 4.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut senders = Vec::new();
    let mut listeners = Vec::new();
    for v in 0..inst.len() {
        if rng.gen_bool(0.1) {
            senders.push((v, power));
        } else {
            listeners.push(v);
        }
    }
    (senders, listeners)
}

/// Runs E14: per-kernel, per-phase cost of one representative slot.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();

    let mut t = Table::new(
        "E14: kernel phase profile (SoA field build + certified decode, one soup slot)",
        "with the canonical winner-SINR recompute on (this kernel view keeps the \
         instrument), its exact sums (fallback ms) dominate while certification \
         keeps true fallbacks rare — the engine-level E11c rows show the \
         instrument-off shape (counter columns are per-seed deterministic, ms \
         columns measured)",
        &[
            "family",
            "n",
            "senders",
            "build ms",
            "near-field ms",
            "far-cert ms",
            "fallback ms",
            "queries",
            "certified",
            "fallbacks",
            "rings/query",
            "µs/query",
        ],
    );

    for family in [Family::UniformSquare, Family::Clustered] {
        for &n in ladder(opts.quick) {
            let inst = family.instance(n, opts.seed.wrapping_add(n as u64));
            let (senders, listeners) =
                soup_senders(&params, &inst, opts.seed.wrapping_add(1400 + n as u64));

            let t0 = Instant::now();
            let field = InterferenceField::build(&params, &inst, &senders);
            let build_s = t0.elapsed().as_secs_f64();

            let mut scratch = FieldScratch::default();
            scratch.enable_timing(true);
            let t1 = Instant::now();
            for &v in &listeners {
                field.decode_best_with(v, &mut scratch);
            }
            let decode_s = t1.elapsed().as_secs_f64();

            let stats = scratch.stats;
            assert_eq!(
                stats.queries,
                stats.small_exact + stats.certified + stats.fallbacks,
                "E14: decode-outcome counters must partition the queries"
            );
            t.push_row(vec![
                family.label().to_string(),
                n.to_string(),
                senders.len().to_string(),
                f2(build_s * 1e3),
                f2(scratch.times.near_field.as_secs_f64() * 1e3),
                f2(scratch.times.far_field_cert.as_secs_f64() * 1e3),
                f2(scratch.times.fallback.as_secs_f64() * 1e3),
                stats.queries.to_string(),
                stats.certified.to_string(),
                stats.fallbacks.to_string(),
                f2(stats.rings as f64 / stats.queries.max(1) as f64),
                f2(decode_s * 1e6 / stats.queries.max(1) as f64),
            ]);
        }
    }

    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_profiles_both_families() {
        let opts = ExpOptions {
            quick: true,
            seed: 14,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 2 * ladder(true).len());
        for row in &tables[0].rows {
            let queries: u64 = row[7].parse().unwrap();
            let certified: u64 = row[8].parse().unwrap();
            let fallbacks: u64 = row[9].parse().unwrap();
            assert!(queries > 0, "a soup slot always has listeners: {row:?}");
            assert!(
                certified + fallbacks <= queries,
                "outcome counters exceed queries: {row:?}"
            );
        }
    }

    /// The counter columns are a pure function of the seed — rerunning
    /// must reproduce them byte-for-byte (the ms columns may differ).
    #[test]
    fn counter_columns_are_deterministic() {
        let opts = ExpOptions {
            quick: true,
            seed: 77,
            ..Default::default()
        };
        let a = run(&opts);
        let b = run(&opts);
        for (ra, rb) in a[0].rows.iter().zip(b[0].rows.iter()) {
            for col in [0usize, 1, 2, 7, 8, 9, 10] {
                assert_eq!(ra[col], rb[col], "counter column {col} drifted");
            }
        }
    }
}
