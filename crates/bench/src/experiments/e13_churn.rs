//! E13 — dynamic workload: full vs incremental vs distributed
//! re-packing under churn (DESIGN.md §10, §14).
//!
//! The paper's §9 open problem asks for repair cost that scales with
//! the damage, not with `n`. This experiment drives the real dynamic
//! pipelines — `repair_after_failures` and `join_nodes` — over kill and
//! join batches of `k` nodes on uniform instances up to n = 8192, in
//! all three re-packer modes: the centralized full re-pack
//! ([`RepackMode::Full`], the old boundary), the incremental re-packer
//! ([`RepackMode::Incremental`], pessimistic ancestor closure), and the
//! message-passing distributed re-packer ([`RepackMode::Distributed`],
//! lazy cascade). It reports
//!
//! - the fraction of tree links the reported mode re-placed
//!   ([`ExpOptions::repack`] picks incremental or distributed;
//!   `--repack` on the runner),
//! - the fraction of previous slot groupings that changed,
//! - the packing-phase wall-clock of the reported and the full mode,
//! - the distributed mode's re-placed fraction (`dist frac`) and its
//!   protocol cost in probe/ack slots (`dist rounds`) — the
//!   rounds-vs-slots trade-off of the lazy cascade;
//!
//! the **parity** column is asserted per trial: all modes reattach the
//! identical tree (same seed ⇒ same distributed reattachment), every
//! schedule validates slot-by-slot in both directions, every bi-tree
//! passes the end-to-end convergecast/broadcast delivery audit
//! (Definition 1 replay), and the distributed closure is a subset of
//! the incremental mode's pessimistic one — strictly smaller on the
//! sparse-churn (`k = 1`) rows. For single-node churn the reported
//! local path must re-pack a strictly sublinear fraction — asserted at
//! ≤ 25%, measured around 0–2%.
//!
//! The base structure is the centralized MST bi-tree (explicit mean
//! powers) rather than a simulated pipeline, so the experiment's
//! wall-clock measures *re-packing*, not tree construction; the
//! reattachment itself still runs the paper's distributed selection
//! loop. Timing columns are per-trial wall-clock — run `--threads 1`
//! for contention-free numbers (the committed snapshot is).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sinr_baselines::mst::centroid_root;
use sinr_connectivity::join::join_nodes;
use sinr_connectivity::latency::audit_bitree;
use sinr_connectivity::repair::{repair_after_failures, PriorStructure};
use sinr_connectivity::selector::MeanSamplingSelector;
use sinr_connectivity::tvc::TvcConfig;
use sinr_connectivity::{RepackMode, RepackStats};
use sinr_geom::{Instance, NodeId, Point};
use sinr_links::{InTree, Link, Schedule};
use sinr_phy::{feasibility, packing, PowerAssignment, SinrParams};

use crate::ensemble::Ensemble;
use crate::stats::Stats;
use crate::table::{f2, Table};
use crate::workloads::Family;
use crate::ExpOptions;

/// Sizes swept (uniform family).
fn ladder(quick: bool) -> &'static [usize] {
    if quick {
        &[256, 512]
    } else {
        &[1024, 2048, 4096, 8192]
    }
}

/// Churn batch sizes: single-node (the acceptance case) and a batch.
fn batches(quick: bool) -> &'static [usize] {
    if quick {
        &[1, 8]
    } else {
        &[1, 32]
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Op {
    Kill,
    Join,
}

impl Op {
    fn label(self) -> &'static str {
        match self {
            Op::Kill => "kill",
            Op::Join => "join",
        }
    }
}

/// The centralized base structure churn acts on: MST tree, explicit
/// mean powers for both directions, bidirectionally packed schedule.
/// Shared with the E15 service loop ([`crate::serve`]), which churns
/// the same base under sustained Poisson faults.
pub fn base_structure(
    params: &SinrParams,
    inst: &Instance,
) -> (Vec<Option<NodeId>>, HashMap<Link, f64>, Schedule) {
    let parents = sinr_geom::mst::mst_parent_array(inst, centroid_root(inst));
    let tree = InTree::from_parents(parents.clone()).expect("MST orientation is a valid in-tree");
    let formula = PowerAssignment::mean_with_margin(params, inst.delta());
    let mut map: HashMap<Link, f64> = HashMap::new();
    for l in tree.aggregation_links().iter() {
        for dir in [l, l.dual()] {
            map.insert(dir, formula.power_of(dir, inst, params).expect("oblivious"));
        }
    }
    let power = PowerAssignment::explicit(map.clone()).expect("positive powers");
    let (schedule, bad) = packing::pack_tree_ordered(params, inst, &tree, &power);
    assert!(bad.is_empty(), "mean-margin powers pack cleanly");
    (parents, map, schedule)
}

/// `k` join points inside the deployment area, rejection-sampled to
/// respect the unit minimum-distance normalization (against existing
/// nodes and each other). Shared with the E15 service loop.
pub fn sample_join_points(inst: &Instance, k: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9d0e_57ab);
    let bb = inst.bounding_box();
    let (lo, hi) = (bb.min(), bb.max());
    let mut accepted: Vec<Point> = Vec::with_capacity(k);
    let far_enough = |p: Point, accepted: &[Point], inst: &Instance| {
        accepted.iter().all(|q| p.distance(*q) >= 1.1)
            && (0..inst.len()).all(|u| p.distance(inst.position(u)) >= 1.1)
    };
    let mut attempts = 0usize;
    while accepted.len() < k {
        attempts += 1;
        assert!(attempts < 100_000, "join-point sampling starved");
        let p = Point::new(
            lo.x + rng.gen::<f64>() * (hi.x - lo.x).max(1.0),
            lo.y + rng.gen::<f64>() * (hi.y - lo.y).max(1.0),
        );
        if far_enough(p, &accepted, inst) {
            accepted.push(p);
        }
    }
    accepted
}

/// One trial's measurements: the two local modes' stats + full pack
/// seconds.
struct Trial {
    incremental: RepackStats,
    distributed: RepackStats,
    full_pack_seconds: f64,
    links: usize,
}

/// Runs one churn trial in both modes, asserts all parity conditions,
/// and returns the measurements.
fn run_trial(
    params: &SinrParams,
    n: usize,
    op: Op,
    k: usize,
    inst_seed: u64,
    algo_seed: u64,
) -> Trial {
    let inst = Family::UniformSquare.instance(n, inst_seed);
    let (parents, powers, schedule) = base_structure(params, &inst);
    let prior = PriorStructure {
        parents: &parents,
        powers: &powers,
        schedule: &schedule,
    };

    let cfg_of = |mode: RepackMode| TvcConfig {
        repack: mode,
        ..Default::default()
    };
    let audit = |inst: &Instance,
                 schedule: &Schedule,
                 bitree: &sinr_links::BiTree,
                 power: &PowerAssignment,
                 mode: RepackMode| {
        feasibility::validate_schedule(params, inst, schedule, power).unwrap_or_else(|e| {
            panic!(
                "E13 {mode} n={n} {}: aggregation infeasible: {e}",
                op.label()
            )
        });
        let dual = schedule
            .map_links(Link::dual)
            .expect("tree links have distinct duals");
        feasibility::validate_schedule(params, inst, &dual, power).unwrap_or_else(|e| {
            panic!(
                "E13 {mode} n={n} {}: dissemination infeasible: {e}",
                op.label()
            )
        });
        let (up, down) = audit_bitree(params, inst, bitree, power)
            .unwrap_or_else(|e| panic!("E13 {mode} n={n} {}: audit error: {e}", op.label()));
        assert!(
            up.all_delivered && down.all_reached,
            "E13 parity MISMATCH: {mode} delivery audit failed at n={n} op={} k={k}",
            op.label()
        );
    };

    // Common projection of `RepairOutcome` / `JoinOutcome`: the churned
    // structure plus the re-packer's accounting.
    struct ModeOutcome {
        instance: Instance,
        tree: InTree,
        bitree: sinr_links::BiTree,
        schedule: Schedule,
        power: PowerAssignment,
        repack: RepackStats,
    }
    let run = |mode: RepackMode| {
        let mut sel = MeanSamplingSelector::default();
        match op {
            Op::Kill => {
                let mut ids: Vec<NodeId> = (0..inst.len()).collect();
                ids.shuffle(&mut StdRng::seed_from_u64(algo_seed ^ 0x4b11));
                let failed: Vec<NodeId> = ids.into_iter().take(k).collect();
                let r = repair_after_failures(
                    params,
                    &inst,
                    &prior,
                    &failed,
                    &cfg_of(mode),
                    &mut sel,
                    algo_seed,
                )
                .unwrap_or_else(|e| panic!("E13 repair {mode} n={n}: {e}"));
                ModeOutcome {
                    instance: r.instance,
                    tree: r.tree,
                    bitree: r.bitree,
                    schedule: r.schedule,
                    power: r.power,
                    repack: r.repack,
                }
            }
            Op::Join => {
                let points = sample_join_points(&inst, k, algo_seed);
                let j = join_nodes(
                    params,
                    &inst,
                    &prior,
                    &points,
                    &cfg_of(mode),
                    &mut sel,
                    algo_seed,
                )
                .unwrap_or_else(|e| panic!("E13 join {mode} n={n}: {e}"));
                ModeOutcome {
                    instance: j.instance,
                    tree: j.tree,
                    bitree: j.bitree,
                    schedule: j.schedule,
                    power: j.power,
                    repack: j.repack,
                }
            }
        }
    };
    let full = run(RepackMode::Full);
    let incr = run(RepackMode::Incremental);
    let dist = run(RepackMode::Distributed);
    for out in [&incr, &dist] {
        assert_eq!(
            full.tree, out.tree,
            "E13 parity MISMATCH: {} reattachment diverged from full at n={n}",
            out.repack.mode
        );
    }
    for out in [&full, &incr, &dist] {
        audit(
            &out.instance,
            &out.schedule,
            &out.bitree,
            &out.power,
            out.repack.mode,
        );
    }
    // The lazy cascade's contract (DESIGN.md §14): its closure is a
    // subset of the incremental mode's pessimistic ancestor closure.
    assert!(
        dist.repack.repacked_links <= incr.repack.repacked_links,
        "E13 parity MISMATCH: distributed closure {} exceeds the pessimistic {} \
         at n={n} op={} k={k}",
        dist.repack.repacked_links,
        incr.repack.repacked_links,
        op.label()
    );
    Trial {
        incremental: incr.repack,
        distributed: dist.repack,
        full_pack_seconds: full.repack.pack_seconds,
        links: incr.tree.len().saturating_sub(1),
    }
}

/// Runs E13.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let seeds = opts.ensemble_seeds();
    let driver = Ensemble::from_opts(opts);

    let specs: Vec<(usize, Op, usize)> = ladder(opts.quick)
        .iter()
        .flat_map(|&n| {
            [Op::Kill, Op::Join]
                .into_iter()
                .flat_map(move |op| batches(opts.quick).iter().map(move |&k| (n, op, k)))
        })
        .collect();
    let results = driver.map_rows(
        opts.seed,
        specs.len(),
        seeds,
        |row, inst_seed, algo_seed| {
            let (n, op, k) = specs[row];
            run_trial(&params, n, op, k, inst_seed, algo_seed)
        },
    );

    // The locality columns report the mode the runner asked for
    // (`--repack`); the distributed columns always report the lazy
    // cascade so the committed snapshot records both local modes.
    fn pick(t: &Trial, mode: RepackMode) -> &RepackStats {
        match mode {
            RepackMode::Distributed => &t.distributed,
            _ => &t.incremental,
        }
    }

    let mut table = Table::new(
        "E13: dynamic churn, full vs incremental vs distributed re-packing \
         (uniform, MST base)",
        "repair cost scales with the damage: single-node churn re-packs ~0–2% of \
         links (vs 100% full) and leaves almost every slot grouping untouched; \
         the distributed re-packer's lazy cascade re-places a subset of the \
         pessimistic closure (`dist frac`) at `dist rounds` probe/ack protocol \
         slots per trial; parity asserts identical reattachment + bidirectional \
         feasibility + delivery audits in every mode (mean ±95% CI; ms columns \
         are per-trial wall-clock — snapshot taken at --threads 1)",
        &[
            "n",
            "op",
            "k",
            "seeds",
            "links",
            "repacked frac",
            "dirty-slot frac",
            "untouched slots",
            "pack ms",
            "full pack ms",
            "speedup",
            "dist frac",
            "dist rounds",
            "parity",
        ],
    );
    for ((n, op, k), trials) in specs.iter().zip(&results) {
        let frac = Stats::of(
            &trials
                .iter()
                .map(|t| pick(t, opts.repack).repacked_fraction())
                .collect::<Vec<_>>(),
        );
        let dirty = Stats::of(
            &trials
                .iter()
                .map(|t| pick(t, opts.repack).dirty_slot_fraction())
                .collect::<Vec<_>>(),
        );
        let untouched = Stats::of(
            &trials
                .iter()
                .map(|t| pick(t, opts.repack).untouched_slots as f64)
                .collect::<Vec<_>>(),
        );
        let pack_ms = Stats::of(
            &trials
                .iter()
                .map(|t| pick(t, opts.repack).pack_seconds * 1e3)
                .collect::<Vec<_>>(),
        );
        let full_ms = Stats::of(
            &trials
                .iter()
                .map(|t| t.full_pack_seconds * 1e3)
                .collect::<Vec<_>>(),
        );
        let dist_frac = Stats::of(
            &trials
                .iter()
                .map(|t| t.distributed.repacked_fraction())
                .collect::<Vec<_>>(),
        );
        let dist_rounds = Stats::of(
            &trials
                .iter()
                .map(|t| t.distributed.protocol_slots as f64)
                .collect::<Vec<_>>(),
        );
        let links = Stats::of(&trials.iter().map(|t| t.links as f64).collect::<Vec<_>>());
        // The acceptance claim: single-node churn re-packs a strictly
        // sublinear fraction. Measured ~0–2%; assert with slack so the
        // CI smoke fails loudly if locality ever regresses.
        if *k == 1 {
            assert!(
                frac.mean <= 0.25,
                "E13: single-node churn re-packed {:.1}% of links at n={n} op={}",
                100.0 * frac.mean,
                op.label()
            );
            // And the lazy cascade must actually *beat* the pessimistic
            // closure on sparse churn whenever that closure reaches past
            // the fresh links themselves.
            let incr_rep = Stats::of(
                &trials
                    .iter()
                    .map(|t| t.incremental.repacked_links as f64)
                    .collect::<Vec<_>>(),
            );
            let dist_rep = Stats::of(
                &trials
                    .iter()
                    .map(|t| t.distributed.repacked_links as f64)
                    .collect::<Vec<_>>(),
            );
            let fresh = Stats::of(
                &trials
                    .iter()
                    .map(|t| t.distributed.fresh_links as f64)
                    .collect::<Vec<_>>(),
            );
            if incr_rep.mean > fresh.mean {
                assert!(
                    dist_rep.mean < incr_rep.mean,
                    "E13: distributed closure ({:.2}) not strictly below the \
                     pessimistic one ({:.2}) at n={n} op={}",
                    dist_rep.mean,
                    incr_rep.mean,
                    op.label()
                );
            }
        }
        table.push_row(vec![
            n.to_string(),
            op.label().into(),
            k.to_string(),
            seeds.to_string(),
            f2(links.mean),
            frac.cell(),
            dirty.cell(),
            untouched.cell(),
            pack_ms.cell(),
            full_ms.cell(),
            format!("{:.1}x", full_ms.mean / pack_ms.mean.max(1e-9)),
            dist_frac.cell(),
            dist_rounds.cell(),
            "ok".into(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_parity_clean_and_sublinear() {
        let opts = ExpOptions {
            quick: true,
            seed: 13,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 1);
        // 2 sizes × 2 ops × 2 batch sizes.
        assert_eq!(tables[0].rows.len(), 8);
        for row in &tables[0].rows {
            assert_eq!(row[13], "ok", "parity cell: {row:?}");
            // Incremental always beats 100%: the repacked fraction's
            // mean is the cell's leading number.
            let frac: f64 = row[5].split_whitespace().next().unwrap().parse().unwrap();
            assert!(frac < 1.0, "no locality win in {row:?}");
            // The lazy cascade never exceeds the pessimistic closure.
            let dist: f64 = row[11].split_whitespace().next().unwrap().parse().unwrap();
            assert!(
                dist <= frac + 1e-9,
                "distributed closure exceeds in {row:?}"
            );
            // Claims are charged: fresh links exist in every trial, so
            // rounds are strictly positive.
            let rounds: f64 = row[12].split_whitespace().next().unwrap().parse().unwrap();
            assert!(rounds > 0.0, "no protocol rounds charged in {row:?}");
        }
    }

    #[test]
    fn quick_run_reports_distributed_mode_when_asked() {
        let opts = ExpOptions {
            quick: true,
            seed: 13,
            repack: RepackMode::Distributed,
            ..Default::default()
        };
        let tables = run(&opts);
        for row in &tables[0].rows {
            assert_eq!(row[13], "ok", "parity cell: {row:?}");
            // With --repack distributed the locality columns *are* the
            // distributed columns.
            let frac = row[5].split_whitespace().next().unwrap();
            let dist = row[11].split_whitespace().next().unwrap();
            assert_eq!(frac, dist, "reported mode is not distributed in {row:?}");
        }
    }

    #[test]
    fn join_points_respect_normalization() {
        let inst = Family::UniformSquare.instance(64, 5);
        let pts = sample_join_points(&inst, 6, 42);
        assert_eq!(pts.len(), 6);
        for (i, p) in pts.iter().enumerate() {
            for u in 0..inst.len() {
                assert!(p.distance(inst.position(u)) >= 1.0);
            }
            for q in pts.iter().skip(i + 1) {
                assert!(p.distance(*q) >= 1.0);
            }
        }
    }
}
