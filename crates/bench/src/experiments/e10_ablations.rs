//! E10 — ablations of the design choices documented in DESIGN.md §5:
//!
//! - `p` (broadcast probability): the protocol's contention/progress
//!   trade-off — too low wastes slots idle, too high wastes them
//!   colliding;
//! - `accept_shorter`: the widened round window that keeps practical
//!   runs connectable (the paper's strict window relies on w.h.p.
//!   invariants that fail at practical constants);
//! - `class_repeats` (Distr-Cap): per-class probe repetitions that
//!   realize the paper's constant-fraction selection with practical
//!   sampling probabilities;
//! - `degree_cap` ρ: Theorem 13's trade-off between the capped
//!   subtree's sparsity and the fraction of links kept.

use sinr_connectivity::init::{run_init, InitConfig};
use sinr_connectivity::selector::{DistrCapConfig, DistrCapSelector};
use sinr_connectivity::tvc::{tree_via_capacity, TvcConfig};
use sinr_phy::SinrParams;

use crate::table::{f2, Table};
use crate::workloads::Family;
use crate::{mean, parallel_map, ExpOptions};

/// Runs E10 and returns one table per ablated knob.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let n = if opts.quick { 64 } else { 128 };

    // ---- E10a: broadcast probability p -----------------------------
    let mut t1 = Table::new(
        "E10a: Init broadcast probability p",
        "slots fall steeply from p = 0.02 and plateau by p ≈ 0.2; the validated \
         domain caps p at 0.5 (broadcaster/listener split), before collisions bite",
        &["p", "init slots", "failures"],
    );
    for p in [0.02, 0.05, 0.1, 0.2, 0.35, 0.5] {
        let jobs: Vec<u64> = (0..opts.trials()).collect();
        let rows = parallel_map(jobs, |t| {
            let inst = Family::UniformSquare.instance(n, opts.seed.wrapping_add(t));
            let cfg = InitConfig {
                p,
                ..opts.init_config()
            };
            match run_init(&params, &inst, &cfg, opts.seed.wrapping_add(1000 + t)) {
                Ok(out) => (out.run.slots_used as f64, 0.0),
                Err(_) => (f64::NAN, 1.0),
            }
        });
        let ok: Vec<f64> = rows.iter().map(|r| r.0).filter(|x| x.is_finite()).collect();
        t1.push_row(vec![
            f2(p),
            f2(mean(&ok)),
            f2(rows.iter().map(|r| r.1).sum::<f64>()),
        ]);
    }

    // ---- E10b: the widened acceptance window ------------------------
    let mut t2 = Table::new(
        "E10b: accept_shorter window (DESIGN.md substitution 2)",
        "strict paper window at practical constants risks non-convergence; widened never fails",
        &[
            "accept_shorter",
            "converged",
            "failed",
            "mean slots (converged)",
        ],
    );
    for accept in [true, false] {
        let jobs: Vec<u64> = (0..opts.trials() * 2).collect();
        let rows = parallel_map(jobs, |t| {
            let inst = Family::ExponentialChain.instance(24, opts.seed.wrapping_add(t));
            let cfg = InitConfig {
                accept_shorter: accept,
                // Keep the budget modest so failures surface rather than
                // being papered over by extra rounds.
                extra_rounds_cap: 8,
                ..opts.init_config()
            };
            match run_init(&params, &inst, &cfg, opts.seed.wrapping_add(2000 + t)) {
                Ok(out) => (1.0, out.run.slots_used as f64),
                Err(_) => (0.0, f64::NAN),
            }
        });
        let converged = rows.iter().map(|r| r.0).sum::<f64>();
        let ok: Vec<f64> = rows.iter().map(|r| r.1).filter(|x| x.is_finite()).collect();
        t2.push_row(vec![
            accept.to_string(),
            f2(converged),
            f2(rows.len() as f64 - converged),
            f2(mean(&ok)),
        ]);
    }

    // ---- E10c: Distr-Cap class_repeats ------------------------------
    let mut t3 = Table::new(
        "E10c: Distr-Cap probe repetitions per length class",
        "more repetitions → fewer TVC iterations and shorter schedules, at more protocol slots",
        &[
            "class_repeats",
            "schedule slots",
            "iterations",
            "selection slots",
        ],
    );
    for reps in [1u32, 2, 4, 10] {
        let jobs: Vec<u64> = (0..opts.trials()).collect();
        let rows = parallel_map(jobs, |t| {
            let inst = Family::UniformSquare.instance(n, opts.seed.wrapping_add(t));
            let mut sel = DistrCapSelector::new(DistrCapConfig {
                class_repeats: reps,
                ..Default::default()
            });
            let out = tree_via_capacity(
                &params,
                &inst,
                &TvcConfig::default(),
                &mut sel,
                opts.seed.wrapping_add(3000 + t),
            )
            .expect("tvc converges");
            let selection: u64 = out.trace.iter().map(|i| i.selection_slots).sum();
            (
                out.schedule_len() as f64,
                out.iterations as f64,
                selection as f64,
            )
        });
        t3.push_row(vec![
            reps.to_string(),
            f2(mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>())),
        ]);
    }

    // ---- E10d: degree cap ρ -----------------------------------------
    let mut t4 = Table::new(
        "E10d: degree cap rho (Theorem 13 trade-off)",
        "small ρ prunes more links (slower TVC) without helping the already-low sparsity",
        &["rho", "schedule slots", "iterations"],
    );
    for rho in [2usize, 4, 8, 64] {
        let jobs: Vec<u64> = (0..opts.trials()).collect();
        let rows = parallel_map(jobs, |t| {
            let inst = Family::UniformSquare.instance(n, opts.seed.wrapping_add(t));
            let mut sel = DistrCapSelector::default();
            let cfg = TvcConfig {
                degree_cap: rho,
                ..Default::default()
            };
            let out = tree_via_capacity(
                &params,
                &inst,
                &cfg,
                &mut sel,
                opts.seed.wrapping_add(4000 + t),
            )
            .expect("tvc converges");
            (out.schedule_len() as f64, out.iterations as f64)
        });
        t4.push_row(vec![
            rho.to_string(),
            f2(mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>())),
        ]);
    }

    vec![t1, t2, t3, t4]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_four_tables() {
        let opts = ExpOptions {
            quick: true,
            seed: 10,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert!(!t.rows.is_empty());
        }
    }
}
