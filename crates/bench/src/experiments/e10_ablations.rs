//! E10 — ablations of the design choices documented in DESIGN.md §5:
//!
//! - `p` (broadcast probability): the protocol's contention/progress
//!   trade-off — too low wastes slots idle, too high wastes them
//!   colliding;
//! - `accept_shorter`: the widened round window that keeps practical
//!   runs connectable (the paper's strict window relies on w.h.p.
//!   invariants that fail at practical constants);
//! - `class_repeats` (Distr-Cap): per-class probe repetitions that
//!   realize the paper's constant-fraction selection with practical
//!   sampling probabilities;
//! - `degree_cap` ρ: Theorem 13's trade-off between the capped
//!   subtree's sparsity and the fraction of links kept.
//!
//! All four ablation tables draw `--seeds K` ensembles through the
//! [`crate::ensemble`] driver — one dispatch for every `(row, trial)`
//! job of every table — and report `mean ±95% CI` (E10b reports
//! converged/failed counts over a doubled ensemble, since failures are
//! the observable there).

use sinr_connectivity::init::{run_init, InitConfig};
use sinr_connectivity::selector::{DistrCapConfig, DistrCapSelector};
use sinr_connectivity::tvc::{tree_via_capacity, TvcConfig};
use sinr_phy::SinrParams;

use crate::ensemble::{trial_streams, Ensemble};
use crate::stats::Stats;
use crate::table::{f2, Table};
use crate::workloads::Family;
use crate::ExpOptions;

const P_VALUES: [f64; 6] = [0.02, 0.05, 0.1, 0.2, 0.35, 0.5];
const ACCEPT_VALUES: [bool; 2] = [true, false];
const REPEAT_VALUES: [u32; 4] = [1, 2, 4, 10];
const RHO_VALUES: [usize; 4] = [2, 4, 8, 64];

/// Runs E10 and returns one table per ablated knob.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let n = if opts.quick { 64 } else { 128 };
    let seeds = opts.ensemble_seeds();
    let driver = Ensemble::from_opts(opts);

    // Global row layout (hierarchical seed split keys off the row
    // index): t1 p-sweep, then t2 accept-sweep (doubled ensemble), then
    // t3 repeats, then t4 rho.
    let t2_base = P_VALUES.len() as u64;
    let t3_base = t2_base + ACCEPT_VALUES.len() as u64;
    let t4_base = t3_base + REPEAT_VALUES.len() as u64;
    let trials_of = |row: u64| -> u64 {
        if (t2_base..t3_base).contains(&row) {
            2 * seeds
        } else {
            seeds
        }
    };
    let jobs: Vec<(u64, u64)> = (0..t4_base + RHO_VALUES.len() as u64)
        .flat_map(|row| (0..trials_of(row)).map(move |k| (row, k)))
        .collect();

    // Every trial reports up to three numbers; unused components 0.
    let results: Vec<[f64; 3]> = driver.map(jobs.clone(), |(row, k)| {
        let (inst_seed, algo_seed) = trial_streams(opts.seed, row, k);
        if row < t2_base {
            let p = P_VALUES[row as usize];
            let inst = Family::UniformSquare.instance(n, inst_seed);
            let cfg = InitConfig {
                p,
                ..opts.init_config()
            };
            match run_init(&params, &inst, &cfg, algo_seed) {
                Ok(out) => [out.run.slots_used as f64, 0.0, 0.0],
                Err(_) => [f64::NAN, 1.0, 0.0],
            }
        } else if row < t3_base {
            let accept = ACCEPT_VALUES[(row - t2_base) as usize];
            let inst = Family::ExponentialChain.instance(24, inst_seed);
            let cfg = InitConfig {
                accept_shorter: accept,
                // Keep the budget modest so failures surface rather than
                // being papered over by extra rounds.
                extra_rounds_cap: 8,
                ..opts.init_config()
            };
            match run_init(&params, &inst, &cfg, algo_seed) {
                Ok(out) => [1.0, out.run.slots_used as f64, 0.0],
                Err(_) => [0.0, f64::NAN, 0.0],
            }
        } else if row < t4_base {
            let reps = REPEAT_VALUES[(row - t3_base) as usize];
            let inst = Family::UniformSquare.instance(n, inst_seed);
            let mut sel = DistrCapSelector::new(DistrCapConfig {
                class_repeats: reps,
                ..Default::default()
            });
            let out = tree_via_capacity(&params, &inst, &TvcConfig::default(), &mut sel, algo_seed)
                .expect("tvc converges");
            let selection: u64 = out.trace.iter().map(|i| i.selection_slots).sum();
            [
                out.schedule_len() as f64,
                out.iterations as f64,
                selection as f64,
            ]
        } else {
            let rho = RHO_VALUES[(row - t4_base) as usize];
            let inst = Family::UniformSquare.instance(n, inst_seed);
            let mut sel = DistrCapSelector::default();
            let cfg = TvcConfig {
                degree_cap: rho,
                ..Default::default()
            };
            let out = tree_via_capacity(&params, &inst, &cfg, &mut sel, algo_seed)
                .expect("tvc converges");
            [out.schedule_len() as f64, out.iterations as f64, 0.0]
        }
    });
    // Cursor-based per-row slices (row trial counts differ).
    let mut cursor = 0usize;
    let mut chunk = |row: u64| -> &[[f64; 3]] {
        let len = trials_of(row) as usize;
        let slice = &results[cursor..cursor + len];
        cursor += len;
        slice
    };

    // ---- E10a: broadcast probability p -----------------------------
    let mut t1 = Table::new(
        "E10a: Init broadcast probability p",
        "slots fall steeply from p = 0.02 and plateau by p ≈ 0.2; the validated \
         domain caps p at 0.5 (broadcaster/listener split), before collisions bite \
         (mean ±95% CI over converged runs)",
        &["p", "seeds", "init slots", "failures"],
    );
    for (i, p) in P_VALUES.iter().enumerate() {
        let trials = chunk(i as u64);
        let ok: Vec<f64> = trials
            .iter()
            .map(|r| r[0])
            .filter(|x| x.is_finite())
            .collect();
        t1.push_row(vec![
            f2(*p),
            seeds.to_string(),
            Stats::of(&ok).cell(),
            f2(trials.iter().map(|r| r[1]).sum::<f64>()),
        ]);
    }

    // ---- E10b: the widened acceptance window ------------------------
    let mut t2 = Table::new(
        "E10b: accept_shorter window (DESIGN.md substitution 2)",
        "strict paper window at practical constants risks non-convergence; widened never fails",
        &[
            "accept_shorter",
            "converged",
            "failed",
            "mean slots (converged)",
        ],
    );
    for (i, accept) in ACCEPT_VALUES.iter().enumerate() {
        let trials = chunk(t2_base + i as u64);
        let converged = trials.iter().map(|r| r[0]).sum::<f64>();
        let ok: Vec<f64> = trials
            .iter()
            .map(|r| r[1])
            .filter(|x| x.is_finite())
            .collect();
        t2.push_row(vec![
            accept.to_string(),
            f2(converged),
            f2(trials.len() as f64 - converged),
            f2(crate::mean(&ok)),
        ]);
    }

    // ---- E10c: Distr-Cap class_repeats ------------------------------
    let mut t3 = Table::new(
        "E10c: Distr-Cap probe repetitions per length class",
        "more repetitions → fewer TVC iterations and shorter schedules, at more \
         protocol slots (mean ±95% CI)",
        &[
            "class_repeats",
            "seeds",
            "schedule slots",
            "iterations",
            "selection slots",
        ],
    );
    for (i, reps) in REPEAT_VALUES.iter().enumerate() {
        let trials = chunk(t3_base + i as u64);
        let col = |j: usize| Stats::of(&trials.iter().map(|r| r[j]).collect::<Vec<_>>()).cell();
        t3.push_row(vec![
            reps.to_string(),
            seeds.to_string(),
            col(0),
            col(1),
            col(2),
        ]);
    }

    // ---- E10d: degree cap ρ -----------------------------------------
    let mut t4 = Table::new(
        "E10d: degree cap rho (Theorem 13 trade-off)",
        "small ρ prunes more links (slower TVC) without helping the already-low \
         sparsity (mean ±95% CI)",
        &["rho", "seeds", "schedule slots", "iterations"],
    );
    for (i, rho) in RHO_VALUES.iter().enumerate() {
        let trials = chunk(t4_base + i as u64);
        let col = |j: usize| Stats::of(&trials.iter().map(|r| r[j]).collect::<Vec<_>>()).cell();
        t4.push_row(vec![rho.to_string(), seeds.to_string(), col(0), col(1)]);
    }

    vec![t1, t2, t3, t4]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_four_tables() {
        let opts = ExpOptions {
            quick: true,
            seed: 10,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert!(!t.rows.is_empty());
        }
        // E10b rows aggregate a doubled ensemble.
        let t2 = &tables[1];
        let converged: f64 = t2.rows[0][1].parse().unwrap();
        let failed: f64 = t2.rows[0][2].parse().unwrap();
        assert_eq!(converged + failed, 2.0 * opts.trials() as f64);
    }
}
