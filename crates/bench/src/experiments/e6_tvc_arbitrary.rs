//! E6 — Theorem 21: `TreeViaCapacity` with `Distr-Cap` and power
//! control schedules a bi-tree in `O(log n)` slots. Also reports the
//! measured power-control cost `η` (slots spent in Foschini–Miljanic
//! feedback rounds) and confirms the drop-fallback never fires.
//!
//! Rows aggregate a `--seeds K` ensemble through the
//! [`crate::ensemble`] driver (one dispatch for the whole ladder) and
//! report `mean ±95% CI`.

use sinr_connectivity::selector::DistrCapSelector;
use sinr_connectivity::tvc::{tree_via_capacity, TvcConfig};
use sinr_phy::SinrParams;

use crate::ensemble::Ensemble;
use crate::stats::Stats;
use crate::table::Table;
use crate::workloads::Family;
use crate::ExpOptions;

/// Runs E6.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let seeds = opts.ensemble_seeds();
    let driver = Ensemble::from_opts(opts);

    let mut t = Table::new(
        "E6: TreeViaCapacity with arbitrary power (Thm 21)",
        "schedule = O(log n) slots: normalized column ~flat; dropped links = 0 \
         (mean ±95% CI)",
        &[
            "family",
            "n",
            "seeds",
            "schedule slots",
            "slots/log n",
            "iterations",
            "selection slots (incl η)",
            "dropped",
        ],
    );

    let specs: Vec<(Family, usize)> = [Family::UniformSquare, Family::Clustered]
        .into_iter()
        .flat_map(|family| opts.sizes().iter().map(move |&n| (family, n)))
        .collect();
    let results = driver.map_rows(
        opts.seed,
        specs.len(),
        seeds,
        |row, inst_seed, algo_seed| {
            let (family, n) = specs[row];
            let inst = family.instance(n, inst_seed);
            let mut sel = DistrCapSelector::default();
            let out = tree_via_capacity(
                &params,
                &inst,
                &TvcConfig {
                    init: opts.init_config(),
                    ..Default::default()
                },
                &mut sel,
                algo_seed,
            )
            .expect("tvc converges");
            let log_n = (inst.len() as f64).log2();
            let selection: u64 = out.trace.iter().map(|it| it.selection_slots).sum();
            (
                out.schedule_len() as f64,
                out.schedule_len() as f64 / log_n,
                out.iterations as f64,
                selection as f64,
                sel.total_dropped as f64,
            )
        },
    );

    for ((family, n), trials) in specs.iter().zip(&results) {
        let col = |f: fn(&(f64, f64, f64, f64, f64)) -> f64| {
            Stats::of(&trials.iter().map(f).collect::<Vec<_>>()).cell()
        };
        t.push_row(vec![
            family.label().into(),
            n.to_string(),
            seeds.to_string(),
            col(|r| r.0),
            col(|r| r.1),
            col(|r| r.2),
            col(|r| r.3),
            col(|r| r.4),
        ]);
    }

    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let opts = ExpOptions {
            quick: true,
            seed: 6,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 1);
        for row in &tables[0].rows {
            let dropped: f64 = row[7].split_whitespace().next().unwrap().parse().unwrap();
            assert_eq!(dropped, 0.0, "power-control fallback fired");
        }
    }
}
