//! E6 — Theorem 21: `TreeViaCapacity` with `Distr-Cap` and power
//! control schedules a bi-tree in `O(log n)` slots. Also reports the
//! measured power-control cost `η` (slots spent in Foschini–Miljanic
//! feedback rounds) and confirms the drop-fallback never fires.

use sinr_connectivity::selector::DistrCapSelector;
use sinr_connectivity::tvc::{tree_via_capacity, TvcConfig};
use sinr_phy::SinrParams;

use crate::table::{f2, Table};
use crate::workloads::Family;
use crate::{mean, parallel_map, ExpOptions};

/// Runs E6.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();

    let mut t = Table::new(
        "E6: TreeViaCapacity with arbitrary power (Thm 21)",
        "schedule = O(log n) slots: normalized column ~flat; dropped links = 0",
        &[
            "family",
            "n",
            "schedule slots",
            "slots/log n",
            "iterations",
            "selection slots (incl η)",
            "dropped",
        ],
    );

    for family in [Family::UniformSquare, Family::Clustered] {
        for &n in opts.sizes() {
            let jobs: Vec<u64> = (0..opts.trials()).collect();
            let rows = parallel_map(jobs, |t_off| {
                let inst = family.instance(n, opts.seed.wrapping_add(t_off));
                let mut sel = DistrCapSelector::default();
                let out = tree_via_capacity(
                    &params,
                    &inst,
                    &TvcConfig {
                        init: opts.init_config(),
                        ..Default::default()
                    },
                    &mut sel,
                    opts.seed.wrapping_add(600 + t_off),
                )
                .expect("tvc converges");
                let log_n = (inst.len() as f64).log2();
                let selection: u64 = out.trace.iter().map(|it| it.selection_slots).sum();
                (
                    out.schedule_len() as f64,
                    out.schedule_len() as f64 / log_n,
                    out.iterations as f64,
                    selection as f64,
                    sel.total_dropped as f64,
                )
            });
            t.push_row(vec![
                family.label().into(),
                n.to_string(),
                f2(mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>())),
                f2(mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>())),
                f2(mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>())),
                f2(mean(&rows.iter().map(|r| r.3).collect::<Vec<_>>())),
                f2(mean(&rows.iter().map(|r| r.4).collect::<Vec<_>>())),
            ]);
        }
    }

    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let opts = ExpOptions {
            quick: true,
            seed: 6,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 1);
        for row in &tables[0].rows {
            let dropped: f64 = row[6].parse().unwrap();
            assert_eq!(dropped, 0.0, "power-control fallback fired");
        }
    }
}
