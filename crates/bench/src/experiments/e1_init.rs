//! E1 — Theorem 2: `Init` builds a bi-tree in `O(log Δ · log n)` slots.
//!
//! Table E1a sweeps `n` on uniform and clustered deployments; the
//! normalized column `slots / (log Δ · log n)` should stay roughly flat
//! if the bound's shape holds. Table E1b fixes `n` and sweeps `Δ`
//! through exponential chains; slots should grow linearly in `log Δ`.

use sinr_connectivity::init::run_init;
use sinr_phy::SinrParams;

use crate::table::{f2, Table};
use crate::workloads::{delta_sweep, Family};
use crate::{mean, parallel_map, ExpOptions};

/// Runs E1 and returns tables E1a and E1b.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let cfg = opts.init_config();

    // ---- E1a: slots vs n ------------------------------------------
    let mut t1 = Table::new(
        "E1a: Init slots vs n",
        "slots = O(log Δ · log n): the normalized column stays ~flat",
        &[
            "family",
            "n",
            "logΔ",
            "slots",
            "rounds",
            "slots/(logΔ·log n)",
        ],
    );
    for family in [Family::UniformSquare, Family::Clustered] {
        for &n in opts.sizes() {
            let jobs: Vec<u64> = (0..opts.trials()).collect();
            let results = parallel_map(jobs, |t| {
                let inst = family.instance(n, opts.seed.wrapping_add(t));
                let out = run_init(&params, &inst, &cfg, opts.seed.wrapping_add(100 + t))
                    .expect("init converges");
                let log_delta = inst.delta().log2().max(1.0);
                let log_n = (inst.len() as f64).log2();
                (
                    out.run.slots_used as f64,
                    out.run.rounds_used as f64,
                    out.run.slots_used as f64 / (log_delta * log_n),
                    log_delta,
                )
            });
            let slots: Vec<f64> = results.iter().map(|r| r.0).collect();
            let rounds: Vec<f64> = results.iter().map(|r| r.1).collect();
            let norm: Vec<f64> = results.iter().map(|r| r.2).collect();
            let logd: Vec<f64> = results.iter().map(|r| r.3).collect();
            t1.push_row(vec![
                family.label().into(),
                n.to_string(),
                f2(mean(&logd)),
                f2(mean(&slots)),
                f2(mean(&rounds)),
                f2(mean(&norm)),
            ]);
        }
    }

    // ---- E1b: slots vs Δ at fixed n --------------------------------
    let n = if opts.quick { 16 } else { 24 };
    let mut t2 = Table::new(
        "E1b: Init slots vs Delta (exponential chains, fixed n)",
        "slots grow ~linearly in log Δ at fixed n",
        &["growth", "logΔ", "slots", "slots/logΔ"],
    );
    for (growth, inst) in delta_sweep(n, opts.seed) {
        let jobs: Vec<u64> = (0..opts.trials()).collect();
        let results = parallel_map(jobs, |t| {
            let out =
                run_init(&params, &inst, &cfg, opts.seed.wrapping_add(t)).expect("init converges");
            out.run.slots_used as f64
        });
        let log_delta = inst.delta().log2().max(1.0);
        t2.push_row(vec![
            f2(growth),
            f2(log_delta),
            f2(mean(&results)),
            f2(mean(&results) / log_delta),
        ]);
    }

    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables() {
        let opts = ExpOptions {
            quick: true,
            seed: 1,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].rows.is_empty());
        assert!(!tables[1].rows.is_empty());
    }
}
