//! E1 — Theorem 2: `Init` builds a bi-tree in `O(log Δ · log n)` slots.
//!
//! Table E1a sweeps `n` on uniform and clustered deployments; the
//! normalized column `slots / (log Δ · log n)` should stay roughly flat
//! if the bound's shape holds. Table E1b fixes `n` and sweeps `Δ`
//! through exponential chains; slots should grow linearly in `log Δ`.
//!
//! Both tables are ensemble runs: every row aggregates `--seeds K`
//! independent trials and reports `mean ±95% CI` (Theorem 2 holds
//! w.h.p. over the random instance, so the CI — not a single draw — is
//! the reproducible object). All `(row, k)` trials of both tables fan
//! out through **one** [`crate::ensemble`] dispatch, so the whole
//! ladder shares the worker pool.

use sinr_connectivity::init::run_init;
use sinr_phy::SinrParams;

use crate::ensemble::Ensemble;
use crate::stats::Stats;
use crate::table::{f2, Table};
use crate::workloads::{delta_sweep, Family};
use crate::ExpOptions;

/// Runs E1 and returns tables E1a and E1b.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let cfg = opts.init_config();
    let seeds = opts.ensemble_seeds();
    let driver = Ensemble::from_opts(opts);

    // Row specs for both tables up front: E1a rows draw a fresh
    // instance per trial; E1b rows keep the chain geometry as the
    // row's fixture (only the protocol's coin flips vary).
    let a_specs: Vec<(Family, usize)> = [Family::UniformSquare, Family::Clustered]
        .into_iter()
        .flat_map(|family| opts.sizes().iter().map(move |&n| (family, n)))
        .collect();
    let nb = if opts.quick { 16 } else { 24 };
    let b_specs = delta_sweep(nb, opts.seed);

    let rows = a_specs.len() + b_specs.len();
    // One fan-out for the whole experiment; `(slots, rounds, norm,
    // logΔ)` per trial (E1b rows only consume the slots component).
    let results = driver.map_rows(opts.seed, rows, seeds, |row, inst_seed, algo_seed| {
        if row < a_specs.len() {
            let (family, n) = a_specs[row];
            let inst = family.instance(n, inst_seed);
            let out = run_init(&params, &inst, &cfg, algo_seed).expect("init converges");
            let log_delta = inst.delta().log2().max(1.0);
            let log_n = (inst.len() as f64).log2();
            (
                out.run.slots_used as f64,
                out.run.rounds_used as f64,
                out.run.slots_used as f64 / (log_delta * log_n),
                log_delta,
            )
        } else {
            let (_, inst) = &b_specs[row - a_specs.len()];
            let out = run_init(&params, inst, &cfg, algo_seed).expect("init converges");
            (out.run.slots_used as f64, 0.0, 0.0, 0.0)
        }
    });
    let mut per_row = results.iter();

    // ---- E1a: slots vs n ------------------------------------------
    let mut t1 = Table::new(
        "E1a: Init slots vs n",
        "slots = O(log Δ · log n): the normalized column stays ~flat \
         (mean ±95% CI over the seed ensemble)",
        &[
            "family",
            "n",
            "seeds",
            "logΔ",
            "slots",
            "rounds",
            "slots/(logΔ·log n)",
        ],
    );
    for &(family, n) in &a_specs {
        let trials = per_row.next().expect("one chunk per row");
        let slots = Stats::of(&trials.iter().map(|r| r.0).collect::<Vec<_>>());
        let rounds = Stats::of(&trials.iter().map(|r| r.1).collect::<Vec<_>>());
        let norm = Stats::of(&trials.iter().map(|r| r.2).collect::<Vec<_>>());
        let logd = Stats::of(&trials.iter().map(|r| r.3).collect::<Vec<_>>());
        t1.push_row(vec![
            family.label().into(),
            n.to_string(),
            seeds.to_string(),
            f2(logd.mean),
            slots.cell(),
            rounds.cell(),
            norm.cell(),
        ]);
    }

    // ---- E1b: slots vs Δ at fixed n --------------------------------
    let mut t2 = Table::new(
        "E1b: Init slots vs Delta (exponential chains, fixed n)",
        "slots grow ~linearly in log Δ at fixed n (mean ±95% CI)",
        &["growth", "logΔ", "seeds", "slots", "slots/logΔ"],
    );
    for (growth, inst) in &b_specs {
        let trials = per_row.next().expect("one chunk per row");
        let log_delta = inst.delta().log2().max(1.0);
        let slots = Stats::of(&trials.iter().map(|r| r.0).collect::<Vec<_>>());
        let per_logd = Stats::of(&trials.iter().map(|r| r.0 / log_delta).collect::<Vec<_>>());
        t2.push_row(vec![
            f2(*growth),
            f2(log_delta),
            seeds.to_string(),
            slots.cell(),
            per_logd.cell(),
        ]);
    }

    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables() {
        let opts = ExpOptions {
            quick: true,
            seed: 1,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].rows.is_empty());
        assert!(!tables[1].rows.is_empty());
        // Ensemble cells render as `mean ±ci`.
        for row in &tables[0].rows {
            assert_eq!(row[2], "2"); // quick default ensemble size
            assert!(row[4].contains(" ±"), "slots cell not an ensemble: {row:?}");
        }
    }

    /// The rows are byte-identical at any worker-thread count — the
    /// experiment-level version of the driver's ordered-merge contract.
    #[test]
    fn thread_count_does_not_change_row_bytes() {
        let base = ExpOptions {
            quick: true,
            seed: 3,
            seeds: 3,
            threads: 1,
            ..Default::default()
        };
        let one = run(&base);
        let four = run(&ExpOptions { threads: 4, ..base });
        assert_eq!(one, four);
    }
}
