//! E9 — the Theorem 9 / Appendix A+B machinery:
//!
//! - ψ-sparse sets contain feasible subsets of size `Ω(|L|/ψ)` and
//!   schedule in `O(ψ·log n)` slots (Theorem 9), measured via
//!   Kesselheim-greedy capacity and first-fit;
//! - feasible sets satisfy `f_ℓ(R) = O(1)` (Eqn 5 amenability);
//! - sparse sets partition into `O(1)` q-independent classes
//!   (Lemma 23).
//!
//! Rows aggregate a `--seeds K` ensemble through the
//! [`crate::ensemble`] driver (one dispatch for the whole ladder) and
//! report `mean ±95% CI`.

use sinr_baselines::capacity::greedy_capacity;
use sinr_baselines::first_fit::{first_fit_schedule, FirstFitOrder};
use sinr_connectivity::power_control::PowerControlConfig;
use sinr_links::{independence, sparsity, Link, LinkSet};
use sinr_phy::affectance::AffectanceCalc;
use sinr_phy::{PowerAssignment, SinrParams};

use crate::ensemble::Ensemble;
use crate::stats::Stats;
use crate::table::Table;
use crate::workloads::Family;
use crate::ExpOptions;

fn mst_links(inst: &sinr_geom::Instance) -> LinkSet {
    sinr_geom::mst::mst_parent_array(inst, 0)
        .iter()
        .enumerate()
        .filter_map(|(u, p)| p.map(|v| Link::new(u, v)))
        .collect()
}

/// Runs E9.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let seeds = opts.ensemble_seeds();
    let driver = Ensemble::from_opts(opts);

    let mut t = Table::new(
        "E9: sparse-set capacity machinery (Thm 9, Eqn 5, Lemma 23)",
        "feasible fraction ≳ 1/ψ; schedule/(ψ·log n) ~flat; max f_ℓ(R) = O(1); \
         O(1) q-indep classes (mean ±95% CI)",
        &[
            "n",
            "seeds",
            "ψ (lower)",
            "feasible fraction",
            "ff slots",
            "slots/(ψ·log n)",
            "max f_ℓ(selected)",
            "q-indep classes (q=1)",
        ],
    );

    let sizes = opts.sizes();
    // The pipeline here is deterministic given the instance, so the
    // trial only consumes the instance stream.
    let results = driver.map_rows(
        opts.seed,
        sizes.len(),
        seeds,
        |row, inst_seed, _algo_seed| {
            let inst = Family::UniformSquare.instance(sizes[row], inst_seed);
            let links = mst_links(&inst);
            let psi = sparsity::sparsity_lower_bound(&inst, &links).max(1);

            // Feasible-subset size via Kesselheim greedy.
            let cap = greedy_capacity(&params, &inst, &links, 0.5, &PowerControlConfig::default());
            let frac = cap.selected.len() as f64 / links.len().max(1) as f64;

            // Schedule length via mean-power first-fit.
            let power = PowerAssignment::mean_with_margin(&params, inst.delta());
            let (ff, bad) = first_fit_schedule(
                &params,
                &inst,
                &links,
                &power,
                FirstFitOrder::AscendingLength,
                |_| 0,
            );
            assert!(bad.is_empty());
            let slots = ff.num_slots() as f64;
            let log_n = (inst.len() as f64).log2();

            // Amenability: max over ℓ of f_ℓ(selected) on the feasible set.
            let calc = AffectanceCalc::new(&params, &inst);
            let max_f = cap
                .selected
                .iter()
                .map(|l| calc.amenability_f_on_set(l, &cap.selected))
                .fold(0.0f64, f64::max);

            // q-independence partition of the MST links.
            let classes = independence::partition_q_independent(&inst, &links, 1.0).len();

            (
                psi as f64,
                frac,
                slots,
                slots / (psi as f64 * log_n),
                max_f,
                classes as f64,
            )
        },
    );

    type Pick = fn(&(f64, f64, f64, f64, f64, f64)) -> f64;
    for (&n, trials) in sizes.iter().zip(&results) {
        let col = |f: Pick| Stats::of(&trials.iter().map(f).collect::<Vec<_>>()).cell();
        t.push_row(vec![
            n.to_string(),
            seeds.to_string(),
            col(|r| r.0),
            col(|r| r.1),
            col(|r| r.2),
            col(|r| r.3),
            col(|r| r.4),
            col(|r| r.5),
        ]);
    }

    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let opts = ExpOptions {
            quick: true,
            seed: 9,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 1);
        for row in &tables[0].rows {
            let frac: f64 = row[3].split_whitespace().next().unwrap().parse().unwrap();
            assert!(frac > 0.0, "greedy capacity selected nothing");
        }
    }
}
