//! E7 — §4 synthesis: the distributed pipelines match the shape of the
//! centralized state of the art. One table, head to head:
//!
//! - the four distributed strategies of the paper;
//! - the centralized MST bi-tree under uniform / mean / linear power;
//! - the length-class (uniform-power, \[21\]-style) baseline.

use sinr_baselines::length_class::length_class_schedule;
use sinr_baselines::mst::{centroid_root, mst_bitree};
use sinr_connectivity::{connect_with, Strategy};
use sinr_phy::{PowerAssignment, SinrParams};

use crate::table::{f2, Table};
use crate::workloads::Family;
use crate::{mean, parallel_map, ExpOptions};

/// Runs E7.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let n = if opts.quick { 64 } else { 192 };

    let mut t = Table::new(
        "E7: schedule length, distributed vs centralized",
        "within distributed: tvc-arbitrary < tvc-mean < reschedule < init-only; \
         centralized packings lower-bound their distributed counterparts",
        &["method", "kind", "power", "schedule slots", "runtime slots"],
    );

    // Distributed strategies.
    for strategy in Strategy::ALL {
        let jobs: Vec<u64> = (0..opts.trials()).collect();
        let rows = parallel_map(jobs, |t_off| {
            let inst = Family::UniformSquare.instance(n, opts.seed.wrapping_add(t_off));
            let r = connect_with(
                &params,
                &inst,
                strategy,
                opts.seed.wrapping_add(700 + t_off),
                opts.backend,
            )
            .expect("strategy converges");
            (r.schedule_len as f64, r.runtime_slots as f64)
        });
        let power_name = match strategy {
            Strategy::InitOnly => "uniform/round",
            Strategy::MeanReschedule | Strategy::TvcMean => "mean",
            Strategy::TvcArbitrary => "arbitrary",
        };
        t.push_row(vec![
            strategy.label().into(),
            "distributed".into(),
            power_name.into(),
            f2(mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>())),
        ]);
    }

    // Centralized MST baselines.
    type PowerCtor = fn(&SinrParams, f64) -> PowerAssignment;
    let powers: [(&str, PowerCtor); 3] = [
        ("uniform", |p, d| PowerAssignment::uniform_with_margin(p, d)),
        ("mean", |p, d| PowerAssignment::mean_with_margin(p, d)),
        ("linear", |p, _| PowerAssignment::linear_with_margin(p)),
    ];
    for (name, make_power) in powers {
        let jobs: Vec<u64> = (0..opts.trials()).collect();
        let rows = parallel_map(jobs, |t_off| {
            let inst = Family::UniformSquare.instance(n, opts.seed.wrapping_add(t_off));
            let power = make_power(&params, inst.delta());
            let base = mst_bitree(&params, &inst, centroid_root(&inst), &power);
            base.schedule.num_slots() as f64
        });
        t.push_row(vec![
            "mst-first-fit".into(),
            "centralized".into(),
            name.into(),
            f2(mean(&rows)),
            "-".into(),
        ]);
    }

    // Length-class (uniform power, serialized classes).
    let jobs: Vec<u64> = (0..opts.trials()).collect();
    let rows = parallel_map(jobs, |t_off| {
        let inst = Family::UniformSquare.instance(n, opts.seed.wrapping_add(t_off));
        let links: sinr_links::LinkSet = sinr_geom::mst::mst_parent_array(&inst, 0)
            .iter()
            .enumerate()
            .filter_map(|(u, p)| p.map(|v| sinr_links::Link::new(u, v)))
            .collect();
        let out = length_class_schedule(&params, &inst, &links);
        out.schedule.num_slots() as f64
    });
    t.push_row(vec![
        "length-class".into(),
        "centralized".into(),
        "uniform/class".into(),
        f2(mean(&rows)),
        "-".into(),
    ]);

    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_full_table() {
        let opts = ExpOptions {
            quick: true,
            seed: 7,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 1);
        // 4 distributed + 3 MST + 1 length-class rows.
        assert_eq!(tables[0].rows.len(), 8);
    }
}
