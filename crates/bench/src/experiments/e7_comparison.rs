//! E7 — §4 synthesis: the distributed pipelines match the shape of the
//! centralized state of the art. One table, head to head:
//!
//! - the four distributed strategies of the paper;
//! - the centralized MST bi-tree under uniform / mean / linear power;
//! - the length-class (uniform-power, \[21\]-style) baseline.
//!
//! The ensemble is **paired**: trial `k` of every method runs on the
//! *same* random instance (one shared instance stream, not one per
//! row), so the head-to-head ordering and the "centralized lower-
//! bounds distributed" claim are compared within instances — a
//! centralized row can never drift above a distributed one through
//! instance sampling noise alone. All `(method, k)` jobs fan out
//! through one [`crate::ensemble`] dispatch; rows report
//! `mean ±95% CI`.

use sinr_baselines::length_class::length_class_schedule;
use sinr_baselines::mst::{centroid_root, mst_bitree};
use sinr_connectivity::{connect_with, Strategy};
use sinr_phy::{PowerAssignment, SinrParams};

use crate::ensemble::{trial_streams, Ensemble};
use crate::stats::Stats;
use crate::table::Table;
use crate::workloads::Family;
use crate::ExpOptions;

type PowerCtor = fn(&SinrParams, f64) -> PowerAssignment;

/// One row of the head-to-head table.
enum Method {
    Distributed(Strategy),
    Mst(&'static str, PowerCtor),
    LengthClass,
}

/// Runs E7.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let n = if opts.quick { 64 } else { 192 };
    let seeds = opts.ensemble_seeds();
    let driver = Ensemble::from_opts(opts);

    let mut methods: Vec<Method> = Strategy::ALL.into_iter().map(Method::Distributed).collect();
    let powers: [(&str, PowerCtor); 3] = [
        ("uniform", |p, d| PowerAssignment::uniform_with_margin(p, d)),
        ("mean", |p, d| PowerAssignment::mean_with_margin(p, d)),
        ("linear", |p, _| PowerAssignment::linear_with_margin(p)),
    ];
    methods.extend(powers.map(|(name, ctor)| Method::Mst(name, ctor)));
    methods.push(Method::LengthClass);

    let jobs: Vec<(usize, u64)> = (0..methods.len())
        .flat_map(|m| (0..seeds).map(move |k| (m, k)))
        .collect();
    // Paired comparison: the trial streams come from row 0 for *every*
    // method, so trial k's instance (and algorithm stream) is shared
    // across rows — deliberately not the per-row split the other
    // ensemble experiments use.
    let results = driver.map(jobs, |(m, k)| {
        let (inst_seed, algo_seed) = trial_streams(opts.seed, 0, k);
        let inst = Family::UniformSquare.instance(n, inst_seed);
        match &methods[m] {
            Method::Distributed(strategy) => {
                let r = connect_with(&params, &inst, *strategy, algo_seed, opts.backend)
                    .expect("strategy converges");
                (r.schedule_len as f64, Some(r.runtime_slots as f64))
            }
            Method::Mst(_, make_power) => {
                let power = make_power(&params, inst.delta());
                let base = mst_bitree(&params, &inst, centroid_root(&inst), &power);
                (base.schedule.num_slots() as f64, None)
            }
            Method::LengthClass => {
                let links: sinr_links::LinkSet = sinr_geom::mst::mst_parent_array(&inst, 0)
                    .iter()
                    .enumerate()
                    .filter_map(|(u, p)| p.map(|v| sinr_links::Link::new(u, v)))
                    .collect();
                let out = length_class_schedule(&params, &inst, &links);
                (out.schedule.num_slots() as f64, None)
            }
        }
    });

    let mut t = Table::new(
        "E7: schedule length, distributed vs centralized",
        "within distributed: tvc-arbitrary < tvc-mean < reschedule < init-only; \
         centralized packings lower-bound their distributed counterparts \
         (mean ±95% CI; paired ensemble — every method sees the same instances)",
        &[
            "method",
            "kind",
            "power",
            "seeds",
            "schedule slots",
            "runtime slots",
        ],
    );
    for (method, trials) in methods.iter().zip(results.chunks(seeds as usize)) {
        let (label, kind, power_name) = match method {
            Method::Distributed(strategy) => {
                let power_name = match strategy {
                    Strategy::InitOnly => "uniform/round",
                    Strategy::MeanReschedule | Strategy::TvcMean => "mean",
                    Strategy::TvcArbitrary => "arbitrary",
                };
                (strategy.label(), "distributed", power_name)
            }
            Method::Mst(name, _) => ("mst-first-fit", "centralized", *name),
            Method::LengthClass => ("length-class", "centralized", "uniform/class"),
        };
        let sched = Stats::of(&trials.iter().map(|r| r.0).collect::<Vec<_>>());
        let runtime: Vec<f64> = trials.iter().filter_map(|r| r.1).collect();
        t.push_row(vec![
            label.into(),
            kind.into(),
            power_name.into(),
            seeds.to_string(),
            sched.cell(),
            if runtime.is_empty() {
                "-".into()
            } else {
                Stats::of(&runtime).cell()
            },
        ]);
    }

    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_full_table() {
        let opts = ExpOptions {
            quick: true,
            seed: 7,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 1);
        // 4 distributed + 3 MST + 1 length-class rows.
        assert_eq!(tables[0].rows.len(), 8);
        for row in &tables[0].rows {
            assert!(
                row[4].contains(" ±"),
                "schedule cell not an ensemble: {row:?}"
            );
        }
        // Centralized rows have no runtime column.
        assert_eq!(tables[0].rows[7][5], "-");
    }

    /// `--seeds` actually widens the ensemble (and the seeds column).
    #[test]
    fn explicit_seeds_override_default_trials() {
        let opts = ExpOptions {
            quick: true,
            seed: 7,
            seeds: 3,
            ..Default::default()
        };
        let tables = run(&opts);
        for row in &tables[0].rows {
            assert_eq!(row[3], "3");
        }
    }
}
