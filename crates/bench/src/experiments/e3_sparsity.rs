//! E3 — Theorems 11 & 13: the `Init` tree is `O(log n)`-sparse and its
//! degree-capped subtree `T(M)` is `O(1)`-sparse while keeping a
//! constant fraction of the links.
//!
//! Rows aggregate a `--seeds K` ensemble through the
//! [`crate::ensemble`] driver (one dispatch for the whole ladder) and
//! report `mean ±95% CI`.

use sinr_connectivity::init::run_init;
use sinr_links::{sparsity, LinkSet};
use sinr_phy::SinrParams;

use crate::ensemble::Ensemble;
use crate::stats::Stats;
use crate::table::Table;
use crate::workloads::Family;
use crate::ExpOptions;

/// Runs E3, reporting the degree-capped subtree at two caps (the TVC
/// default ρ = 8 and an aggressive ρ = 4 that actually prunes).
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let cfg = opts.init_config();
    let seeds = opts.ensemble_seeds();
    let driver = Ensemble::from_opts(opts);

    let mut t = Table::new(
        "E3: sparsity of the Init tree and its degree-capped subtree",
        "ψ(T) = O(log n) (Thm 11); ψ(T(M)) = O(1) and |T(M)|/|T| = Ω(1) (Thm 13) \
         (mean ±95% CI)",
        &[
            "n",
            "seeds",
            "ψ(T) lower",
            "ψ(T) upper",
            "ψ(T(M,8))",
            "|T(M,8)|/|T|",
            "ψ(T(M,4))",
            "|T(M,4)|/|T|",
        ],
    );

    let sizes = opts.sizes();
    let rows = driver.map_rows(
        opts.seed,
        sizes.len(),
        seeds,
        |row, inst_seed, algo_seed| {
            let inst = Family::UniformSquare.instance(sizes[row], inst_seed);
            let out = run_init(&params, &inst, &cfg, algo_seed).expect("init converges");
            let links = out.tree.aggregation_links();
            let lo = sparsity::sparsity_lower_bound(&inst, &links) as f64;
            let hi = sparsity::sparsity_upper_bound(&inst, &links) as f64;

            let degrees = links.degrees();
            let capped = |cap: usize| -> (f64, f64) {
                let sub: LinkSet = links
                    .iter()
                    .filter(|l| {
                        degrees.get(&l.sender).copied().unwrap_or(0) <= cap
                            && degrees.get(&l.receiver).copied().unwrap_or(0) <= cap
                    })
                    .collect();
                (
                    sparsity::sparsity_lower_bound(&inst, &sub) as f64,
                    sub.len() as f64 / links.len().max(1) as f64,
                )
            };
            let (psi8, frac8) = capped(8);
            let (psi4, frac4) = capped(4);
            (lo, hi, psi8, frac8, psi4, frac4)
        },
    );

    type Pick = fn(&(f64, f64, f64, f64, f64, f64)) -> f64;
    for (&n, trials) in sizes.iter().zip(&rows) {
        let col = |f: Pick| Stats::of(&trials.iter().map(f).collect::<Vec<_>>()).cell();
        t.push_row(vec![
            n.to_string(),
            seeds.to_string(),
            col(|r| r.0),
            col(|r| r.1),
            col(|r| r.2),
            col(|r| r.3),
            col(|r| r.4),
            col(|r| r.5),
        ]);
    }

    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let opts = ExpOptions {
            quick: true,
            seed: 3,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), opts.sizes().len());
        // The capped fraction should be substantial (> 0.3 in practice);
        // the cell's leading number is the ensemble mean.
        let frac: f64 = tables[0].rows[0][5]
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(frac > 0.3, "degree cap removed too much: {frac}");
    }
}
