//! E3 — Theorems 11 & 13: the `Init` tree is `O(log n)`-sparse and its
//! degree-capped subtree `T(M)` is `O(1)`-sparse while keeping a
//! constant fraction of the links.

use sinr_connectivity::init::run_init;
use sinr_links::{sparsity, LinkSet};
use sinr_phy::SinrParams;

use crate::table::{f2, Table};
use crate::workloads::Family;
use crate::{mean, parallel_map, ExpOptions};

/// Runs E3, reporting the degree-capped subtree at two caps (the TVC
/// default ρ = 8 and an aggressive ρ = 4 that actually prunes).
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let cfg = opts.init_config();

    let mut t = Table::new(
        "E3: sparsity of the Init tree and its degree-capped subtree",
        "ψ(T) = O(log n) (Thm 11); ψ(T(M)) = O(1) and |T(M)|/|T| = Ω(1) (Thm 13)",
        &[
            "n",
            "log n",
            "ψ(T) lower",
            "ψ(T) upper",
            "ψ(T(M,8))",
            "|T(M,8)|/|T|",
            "ψ(T(M,4))",
            "|T(M,4)|/|T|",
        ],
    );

    for &n in opts.sizes() {
        let jobs: Vec<u64> = (0..opts.trials()).collect();
        let rows = parallel_map(jobs, |seed_off| {
            let inst = Family::UniformSquare.instance(n, opts.seed.wrapping_add(seed_off));
            let out = run_init(&params, &inst, &cfg, opts.seed.wrapping_add(7 + seed_off))
                .expect("init converges");
            let links = out.tree.aggregation_links();
            let lo = sparsity::sparsity_lower_bound(&inst, &links) as f64;
            let hi = sparsity::sparsity_upper_bound(&inst, &links) as f64;

            let degrees = links.degrees();
            let capped = |cap: usize| -> (f64, f64) {
                let sub: LinkSet = links
                    .iter()
                    .filter(|l| {
                        degrees.get(&l.sender).copied().unwrap_or(0) <= cap
                            && degrees.get(&l.receiver).copied().unwrap_or(0) <= cap
                    })
                    .collect();
                (
                    sparsity::sparsity_lower_bound(&inst, &sub) as f64,
                    sub.len() as f64 / links.len().max(1) as f64,
                )
            };
            let (psi8, frac8) = capped(8);
            let (psi4, frac4) = capped(4);
            (lo, hi, psi8, frac8, psi4, frac4)
        });
        t.push_row(vec![
            n.to_string(),
            f2((n as f64).log2()),
            f2(mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.3).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.4).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.5).collect::<Vec<_>>())),
        ]);
    }

    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table() {
        let opts = ExpOptions {
            quick: true,
            seed: 3,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), opts.sizes().len());
        // The capped fraction should be substantial (> 0.5 in practice).
        let frac: f64 = tables[0].rows[0][5].parse().unwrap();
        assert!(frac > 0.3, "degree cap removed too much: {frac}");
    }
}
