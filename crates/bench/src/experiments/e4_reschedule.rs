//! E4 — Theorem 3: the `Init` tree can be rescheduled with mean power
//! far more compactly than its timestamp schedule, and the distributed
//! contention-resolution schedule stays within a logarithmic factor of
//! the centralized first-fit packing.
//!
//! Both tables run `--seeds K` ensembles through the
//! [`crate::ensemble`] driver — E4a draws a fresh instance per trial,
//! E4b keeps each chain fixture and varies only the protocol coins
//! (like E1b) — and report `mean ±95% CI`. All `(row, k)` jobs of both
//! tables fan out in one dispatch.

use sinr_baselines::first_fit::{first_fit_schedule, FirstFitOrder};
use sinr_connectivity::contention::ContentionConfig;
use sinr_connectivity::init::run_init;
use sinr_connectivity::reschedule::reschedule_mean;
use sinr_phy::{PowerAssignment, SinrParams};

use crate::ensemble::Ensemble;
use crate::stats::Stats;
use crate::table::{f2, Table};
use crate::workloads::{delta_sweep, Family};
use crate::ExpOptions;

/// Runs E4 and returns tables E4a (vs n) and E4b (vs Δ).
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let seeds = opts.ensemble_seeds();
    let driver = Ensemble::from_opts(opts);

    let measure = |inst: &sinr_geom::Instance, seed: u64| -> (f64, f64, f64, f64) {
        let init = run_init(&params, inst, &opts.init_config(), seed).expect("init converges");
        let links = init.tree.aggregation_links();
        let timestamps = init.schedule.num_slots() as f64;
        let re = reschedule_mean(
            &params,
            inst,
            &links,
            &ContentionConfig {
                engine: opts.engine_options(),
                ..Default::default()
            },
            seed.wrapping_add(17),
        )
        .expect("contention converges");
        let distributed = re.aggregation.num_slots() as f64;
        let power = PowerAssignment::mean_with_margin(&params, inst.delta());
        let (ff, bad) = first_fit_schedule(
            &params,
            inst,
            &links,
            &power,
            FirstFitOrder::AscendingLength,
            |_| 0,
        );
        assert!(bad.is_empty());
        let centralized = ff.num_slots() as f64;
        (
            timestamps,
            distributed,
            centralized,
            distributed / centralized.max(1.0),
        )
    };

    let sizes = opts.sizes();
    let nb = if opts.quick { 16 } else { 24 };
    let b_specs = delta_sweep(nb, opts.seed);
    let rows_total = sizes.len() + b_specs.len();
    let results = driver.map_rows(opts.seed, rows_total, seeds, |row, inst_seed, algo_seed| {
        if row < sizes.len() {
            let inst = Family::UniformSquare.instance(sizes[row], inst_seed);
            measure(&inst, algo_seed)
        } else {
            // Fixture rows: the chain geometry is the row's fixture,
            // only the protocol's coin flips vary.
            let (_, inst) = &b_specs[row - sizes.len()];
            measure(inst, algo_seed)
        }
    });
    let mut per_row = results.iter();

    let mut t1 = Table::new(
        "E4a: schedule length, timestamps vs rescheduled (mean power)",
        "distributed reschedule ≪ timestamps; within O(log n) of centralized \
         first-fit (mean ±95% CI)",
        &[
            "n",
            "seeds",
            "timestamp slots",
            "distributed slots",
            "centralized slots",
            "dist/cent",
        ],
    );
    for &n in sizes {
        let trials = per_row.next().expect("one chunk per row");
        let col = |f: fn(&(f64, f64, f64, f64)) -> f64| {
            Stats::of(&trials.iter().map(f).collect::<Vec<_>>()).cell()
        };
        t1.push_row(vec![
            n.to_string(),
            seeds.to_string(),
            col(|r| r.0),
            col(|r| r.1),
            col(|r| r.2),
            col(|r| r.3),
        ]);
    }

    let mut t2 = Table::new(
        "E4b: schedule length vs Delta (mean power, fixed n)",
        "rescheduled < timestamps and ~flat in Δ; note the compacted timestamp \
         schedule saturates near n−1 at this small fixed n — the log Δ growth of \
         the Init phase shows in its runtime (E1b), not in distinct occupied slots \
         (mean ±95% CI)",
        &[
            "growth",
            "logΔ",
            "seeds",
            "timestamp slots",
            "distributed slots",
        ],
    );
    for (growth, inst) in &b_specs {
        let trials = per_row.next().expect("one chunk per row");
        let col = |f: fn(&(f64, f64, f64, f64)) -> f64| {
            Stats::of(&trials.iter().map(f).collect::<Vec<_>>()).cell()
        };
        t2.push_row(vec![
            f2(*growth),
            f2(inst.delta().log2()),
            seeds.to_string(),
            col(|r| r.0),
            col(|r| r.1),
        ]);
    }

    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables() {
        let opts = ExpOptions {
            quick: true,
            seed: 4,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 2);
        // Rescheduled must beat timestamps on the largest quick size
        // (ensemble means lead each cell).
        let last = tables[0].rows.last().unwrap();
        let lead = |cell: &str| -> f64 { cell.split_whitespace().next().unwrap().parse().unwrap() };
        let timestamps = lead(&last[2]);
        let rescheduled = lead(&last[3]);
        assert!(
            rescheduled <= timestamps,
            "reschedule ({rescheduled}) should not exceed timestamps ({timestamps})"
        );
    }
}
