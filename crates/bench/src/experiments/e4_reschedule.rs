//! E4 — Theorem 3: the `Init` tree can be rescheduled with mean power
//! far more compactly than its timestamp schedule, and the distributed
//! contention-resolution schedule stays within a logarithmic factor of
//! the centralized first-fit packing.

use sinr_baselines::first_fit::{first_fit_schedule, FirstFitOrder};
use sinr_connectivity::contention::ContentionConfig;
use sinr_connectivity::init::run_init;
use sinr_connectivity::reschedule::reschedule_mean;
use sinr_phy::{PowerAssignment, SinrParams};

use crate::table::{f2, Table};
use crate::workloads::{delta_sweep, Family};
use crate::{mean, parallel_map, ExpOptions};

/// Runs E4 and returns tables E4a (vs n) and E4b (vs Δ).
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();

    let measure = |inst: &sinr_geom::Instance, seed: u64| -> (f64, f64, f64, f64) {
        let init = run_init(&params, inst, &opts.init_config(), seed).expect("init converges");
        let links = init.tree.aggregation_links();
        let timestamps = init.schedule.num_slots() as f64;
        let re = reschedule_mean(
            &params,
            inst,
            &links,
            &ContentionConfig {
                backend: opts.backend,
                ..Default::default()
            },
            seed.wrapping_add(17),
        )
        .expect("contention converges");
        let distributed = re.aggregation.num_slots() as f64;
        let power = PowerAssignment::mean_with_margin(&params, inst.delta());
        let (ff, bad) = first_fit_schedule(
            &params,
            inst,
            &links,
            &power,
            FirstFitOrder::AscendingLength,
            |_| 0,
        );
        assert!(bad.is_empty());
        let centralized = ff.num_slots() as f64;
        (
            timestamps,
            distributed,
            centralized,
            distributed / centralized.max(1.0),
        )
    };

    let mut t1 = Table::new(
        "E4a: schedule length, timestamps vs rescheduled (mean power)",
        "distributed reschedule ≪ timestamps; within O(log n) of centralized first-fit",
        &[
            "n",
            "timestamp slots",
            "distributed slots",
            "centralized slots",
            "dist/cent",
        ],
    );
    for &n in opts.sizes() {
        let jobs: Vec<u64> = (0..opts.trials()).collect();
        let rows = parallel_map(jobs, |t| {
            let inst = Family::UniformSquare.instance(n, opts.seed.wrapping_add(t));
            measure(&inst, opts.seed.wrapping_add(200 + t))
        });
        t1.push_row(vec![
            n.to_string(),
            f2(mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.3).collect::<Vec<_>>())),
        ]);
    }

    let n = if opts.quick { 16 } else { 24 };
    let mut t2 = Table::new(
        "E4b: schedule length vs Delta (mean power, fixed n)",
        "rescheduled < timestamps and ~flat in Δ; note the compacted timestamp \
         schedule saturates near n−1 at this small fixed n — the log Δ growth of \
         the Init phase shows in its runtime (E1b), not in distinct occupied slots",
        &["growth", "logΔ", "timestamp slots", "distributed slots"],
    );
    for (growth, inst) in delta_sweep(n, opts.seed) {
        let jobs: Vec<u64> = (0..opts.trials()).collect();
        let rows = parallel_map(jobs, |t| measure(&inst, opts.seed.wrapping_add(400 + t)));
        t2.push_row(vec![
            f2(growth),
            f2(inst.delta().log2()),
            f2(mean(&rows.iter().map(|r| r.0).collect::<Vec<_>>())),
            f2(mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>())),
        ]);
    }

    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables() {
        let opts = ExpOptions {
            quick: true,
            seed: 4,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 2);
        // Rescheduled must beat timestamps on the largest quick size.
        let last = tables[0].rows.last().unwrap();
        let timestamps: f64 = last[1].parse().unwrap();
        let rescheduled: f64 = last[2].parse().unwrap();
        assert!(
            rescheduled <= timestamps,
            "reschedule ({rescheduled}) should not exceed timestamps ({timestamps})"
        );
    }
}
