//! E2 — Theorem 7: the `Init` tree's degree tail is exponential,
//! `P(deg ≥ d) ≤ e^{−p²d/8}`, so the maximum degree is `O(log n)`.
//!
//! Table E2a reports max/mean degree vs `n` (max should grow at most
//! logarithmically); E2b compares the measured tail against the
//! theorem's bound at the configured `p` (the bound is loose — the
//! shape to check is *exponential decay*).
//!
//! Both tables draw from one `--seeds K` ensemble per row through the
//! [`crate::ensemble`] driver (hierarchical seed split, one dispatch
//! for the whole ladder); E2a reports `mean ±95% CI`, E2b pools the
//! tails of every trial.

use sinr_connectivity::init::run_init;
use sinr_links::degree::DegreeStats;
use sinr_phy::SinrParams;

use crate::ensemble::Ensemble;
use crate::stats::Stats;
use crate::table::{f2, f3, Table};
use crate::workloads::Family;
use crate::ExpOptions;

/// Runs E2 and returns tables E2a and E2b.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let cfg = opts.init_config();
    let seeds = opts.ensemble_seeds();
    let driver = Ensemble::from_opts(opts);

    let sizes = opts.sizes();
    let stats: Vec<Vec<DegreeStats>> = driver.map_rows(
        opts.seed,
        sizes.len(),
        seeds,
        |row, inst_seed, algo_seed| {
            let inst = Family::UniformSquare.instance(sizes[row], inst_seed);
            let out = run_init(&params, &inst, &cfg, algo_seed).expect("init converges");
            DegreeStats::of(&out.tree.aggregation_links())
        },
    );

    let mut t1 = Table::new(
        "E2a: Init tree degrees vs n",
        "max degree = O(log n); mean degree < 2 + o(1) on trees (mean ±95% CI)",
        &[
            "n",
            "log n",
            "seeds",
            "max deg",
            "max deg (worst)",
            "mean deg",
        ],
    );
    for (&n, trials) in sizes.iter().zip(&stats) {
        let maxes = Stats::of(&trials.iter().map(|s| s.max as f64).collect::<Vec<_>>());
        let means = Stats::of(&trials.iter().map(|s| s.mean).collect::<Vec<_>>());
        t1.push_row(vec![
            n.to_string(),
            f2((n as f64).log2()),
            seeds.to_string(),
            maxes.cell(),
            f2(maxes.max),
            means.cell(),
        ]);
    }

    // E2b: pooled tail over every trial of every size.
    let p = cfg.p;
    let mut t2 = Table::new(
        "E2b: degree tail P(deg >= d), pooled over all runs",
        "exponential decay; Thm 7 bound e^{-p^2 d/8} is a (loose) ceiling",
        &["d", "measured P(deg>=d)", "Thm 7 bound"],
    );
    let pooled_nodes: usize = stats.iter().flatten().map(|s| s.nodes).sum();
    let max_d = stats.iter().flatten().map(|s| s.max).max().unwrap_or(0);
    for d in 1..=max_d {
        let at_least: f64 = stats
            .iter()
            .flatten()
            .map(|s| s.tail(d) * s.nodes as f64)
            .sum::<f64>()
            / pooled_nodes.max(1) as f64;
        t2.push_row(vec![
            d.to_string(),
            f3(at_least),
            f3(DegreeStats::theorem7_bound(p, d)),
        ]);
    }

    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables() {
        let opts = ExpOptions {
            quick: true,
            seed: 2,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].rows.is_empty());
        for row in &tables[0].rows {
            assert_eq!(row[2], "2"); // quick default ensemble size
        }
        // Tail at d=1 is 1.0 (every incident node has degree ≥ 1).
        assert_eq!(tables[1].rows[0][1], "1.000");
    }

    /// `--seeds` widens the ensemble.
    #[test]
    fn explicit_seeds_override_default_trials() {
        let opts = ExpOptions {
            quick: true,
            seed: 2,
            seeds: 3,
            ..Default::default()
        };
        let tables = run(&opts);
        for row in &tables[0].rows {
            assert_eq!(row[2], "3");
        }
    }
}
