//! E2 — Theorem 7: the `Init` tree's degree tail is exponential,
//! `P(deg ≥ d) ≤ e^{−p²d/8}`, so the maximum degree is `O(log n)`.
//!
//! Table E2a reports max/mean degree vs `n` (max should grow at most
//! logarithmically); E2b compares the measured tail against the
//! theorem's bound at the configured `p` (the bound is loose — the
//! shape to check is *exponential decay*).

use sinr_connectivity::init::run_init;
use sinr_links::degree::DegreeStats;
use sinr_phy::SinrParams;

use crate::table::{f2, f3, Table};
use crate::workloads::Family;
use crate::{mean, parallel_map, ExpOptions};

/// Runs E2 and returns tables E2a and E2b.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let cfg = opts.init_config();

    let mut t1 = Table::new(
        "E2a: Init tree degrees vs n",
        "max degree = O(log n); mean degree < 2 + o(1) on trees",
        &[
            "n",
            "log n",
            "max deg (mean over seeds)",
            "max deg (worst)",
            "mean deg",
        ],
    );
    let mut tails: Vec<DegreeStats> = Vec::new();
    for &n in opts.sizes() {
        let jobs: Vec<u64> = (0..opts.trials()).collect();
        let stats = parallel_map(jobs, |t| {
            let inst = Family::UniformSquare.instance(n, opts.seed.wrapping_add(t));
            let out = run_init(&params, &inst, &cfg, opts.seed.wrapping_add(31 + t))
                .expect("init converges");
            DegreeStats::of(&out.tree.aggregation_links())
        });
        let maxes: Vec<f64> = stats.iter().map(|s| s.max as f64).collect();
        let means: Vec<f64> = stats.iter().map(|s| s.mean).collect();
        t1.push_row(vec![
            n.to_string(),
            f2((n as f64).log2()),
            f2(mean(&maxes)),
            f2(crate::max(&maxes)),
            f2(mean(&means)),
        ]);
        tails.extend(stats);
    }

    // E2b: pooled tail over the largest size's runs.
    let p = cfg.p;
    let mut t2 = Table::new(
        "E2b: degree tail P(deg >= d), pooled over all runs",
        "exponential decay; Thm 7 bound e^{-p^2 d/8} is a (loose) ceiling",
        &["d", "measured P(deg>=d)", "Thm 7 bound"],
    );
    let pooled_nodes: usize = tails.iter().map(|s| s.nodes).sum();
    let max_d = tails.iter().map(|s| s.max).max().unwrap_or(0);
    for d in 1..=max_d {
        let at_least: f64 = tails
            .iter()
            .map(|s| s.tail(d) * s.nodes as f64)
            .sum::<f64>()
            / pooled_nodes.max(1) as f64;
        t2.push_row(vec![
            d.to_string(),
            f3(at_least),
            f3(DegreeStats::theorem7_bound(p, d)),
        ]);
    }

    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables() {
        let opts = ExpOptions {
            quick: true,
            seed: 2,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].rows.is_empty());
        // Tail at d=1 is 1.0 (every incident node has degree ≥ 1).
        assert_eq!(tables[1].rows[0][1], "1.000");
    }
}
