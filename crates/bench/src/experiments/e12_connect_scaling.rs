//! E12 — end-to-end `connect` scaling with per-phase timings.
//!
//! Where E11 isolates the engine's per-slot cost, E12 times the whole
//! pipeline a user actually runs, phase by phase, on uniform instances
//! up to n = 8192 plus end-to-end capability rungs at n = 65536 and
//! 131072 (per-phase engine breakdowns under the `profile` feature):
//!
//! 1. **build** — instance construction (`extreme_distances`, grid/hull
//!    accelerated);
//! 2. **mst** — the Euclidean MST (grid-pruned lazy Prim), the backbone
//!    every centralized baseline from \[11\] schedules;
//! 3. **pack** — the centralized MST bi-tree first-fit packing
//!    (`SlotAuditor`-incremental);
//! 4. **connect** — the distributed `Init` pipeline end to end
//!    (schedule + simulation), once on the serial grid engine and once
//!    on the pooled parallel engine.
//!
//! The point of the table is the *shape*: no `O(n²)` phase may
//! dominate — build + mst together are expected to stay within a few
//! percent of total wall-clock (the `build+mst` column), and the
//! parallel engine must fingerprint byte-identically to the serial one
//! on every row (the `parity` column is asserted, exactly like E11's).
//! Wall-clock parallel gains require the host to have cores; the
//! `cores` column records what this machine offered.

use std::time::Instant;

use sinr_baselines::mst::{centroid_root, mst_bitree};
use sinr_connectivity::{connect_with, ConnectivityResult, Strategy};
use sinr_phy::{PowerAssignment, SinrParams};

#[cfg(feature = "profile")]
use super::e11_scaling::{profile_table, push_profile_rows};
use super::e11_scaling::{CAPABILITY_MIN_N, PARALLEL_THREADS};
use crate::table::{f2, Table};
use crate::workloads::Family;
use crate::{EngineBackend, ExpOptions};

/// Sizes swept (uniform family). Full runs end on the capability
/// rungs (n = 65536 and 131072 — the whole distributed pipeline, not
/// just one slot); `capability` appends the 65536 rung to the quick
/// ladder, mirroring E11's CI smoke configuration.
fn ladder(quick: bool, capability: bool) -> Vec<usize> {
    if quick {
        let mut rungs = vec![256, 512];
        if capability {
            rungs.push(CAPABILITY_MIN_N);
        }
        rungs
    } else {
        vec![2048, 4096, 8192, 65536, 131072]
    }
}

/// FNV-1a over the canonical rendering of everything a connect run
/// produces — tree links, both schedules in slot order, power bits,
/// slot counts. Any decode that diverged between engines would change
/// a schedule or a power and therefore this value.
fn fingerprint(r: &ConnectivityResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(&(r.schedule_len as u64).to_le_bytes());
    eat(&r.runtime_slots.to_le_bytes());
    for l in r.tree_links.iter() {
        eat(&(l.sender as u64).to_le_bytes());
        eat(&(l.receiver as u64).to_le_bytes());
    }
    for (l, s) in r.aggregation_schedule.iter() {
        eat(&(l.sender as u64).to_le_bytes());
        eat(&(l.receiver as u64).to_le_bytes());
        eat(&(s as u64).to_le_bytes());
    }
    for (l, s) in r.dissemination_schedule.iter() {
        eat(&(l.sender as u64).to_le_bytes());
        eat(&(l.receiver as u64).to_le_bytes());
        eat(&(s as u64).to_le_bytes());
    }
    if let Some(powers) = r.power.as_explicit() {
        let mut entries: Vec<_> = powers.iter().collect();
        entries.sort_by_key(|(l, _)| **l);
        for (l, p) in entries {
            eat(&(l.sender as u64).to_le_bytes());
            eat(&(l.receiver as u64).to_le_bytes());
            eat(&p.to_bits().to_le_bytes());
        }
    }
    h
}

/// Runs E12: per-phase wall-clock of the full pipeline, serial vs
/// parallel engine, with a fingerprint parity gate per size.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let family = Family::UniformSquare;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut t = Table::new(
        "E12: end-to-end connect scaling, per-phase wall-clock (uniform)",
        "no O(n²) phase dominates: build+mst stay a sliver of total; engines \
         fingerprint identically (parallel wall-clock needs real cores)",
        &[
            "n",
            "engine",
            "threads",
            "build ms",
            "mst ms",
            "pack ms",
            "connect ms",
            "total ms",
            "build+mst",
            "slots",
            "parity",
        ],
    );

    #[cfg(feature = "profile")]
    let mut phases =
        profile_table("E12b: capability-row phase profile (grid engine, whole connect)");

    for &n in &ladder(opts.quick, opts.capability) {
        let seed = opts.seed.wrapping_add(1200 + n as u64);

        let t0 = Instant::now();
        let inst = family.instance(n, seed);
        let build_s = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let mst_edges = sinr_geom::mst::euclidean_mst(&inst);
        let mst_s = t1.elapsed().as_secs_f64();
        assert_eq!(mst_edges.len(), inst.len() - 1);

        let t2 = Instant::now();
        let power = PowerAssignment::mean_with_margin(&params, inst.delta());
        let baseline = mst_bitree(&params, &inst, centroid_root(&inst), &power);
        let pack_s = t2.elapsed().as_secs_f64();
        assert!(baseline.unschedulable.is_empty());

        let engines = [
            ("grid", EngineBackend::Grid),
            ("parallel", EngineBackend::Parallel(PARALLEL_THREADS)),
        ];
        let mut results: Vec<(&str, EngineBackend, f64, ConnectivityResult)> = Vec::new();
        for (label, backend) in engines {
            // The capability rungs profile the serial grid engine's
            // connect end to end (the profiler is thread-local, so the
            // parallel row would under-report its worker phases; the
            // grid row is the canonical breakdown).
            #[cfg(feature = "profile")]
            let profiled = n >= CAPABILITY_MIN_N && matches!(backend, EngineBackend::Grid);
            #[cfg(feature = "profile")]
            if profiled {
                sinr_sim::profile::start();
            }
            let t3 = Instant::now();
            let result = connect_with(&params, &inst, Strategy::InitOnly, seed, backend)
                .unwrap_or_else(|e| panic!("E12 connect n={n} {label}: {e}"));
            results.push((label, backend, t3.elapsed().as_secs_f64(), result));
            #[cfg(feature = "profile")]
            if profiled {
                push_profile_rows(&mut phases, "uniform", n, &sinr_sim::profile::stop());
            }
        }
        let fp0 = fingerprint(&results[0].3);
        let parity = results.iter().all(|(_, _, _, r)| fingerprint(r) == fp0);
        // Asserted for the same reason E11 asserts: the CI smoke run
        // must fail loudly if the engines ever diverge.
        assert!(
            parity,
            "E12 parity MISMATCH: engines diverged at n={n} \
             (fingerprints {:?})",
            results
                .iter()
                .map(|(l, _, _, r)| (*l, fingerprint(r)))
                .collect::<Vec<_>>()
        );

        for (label, backend, connect_s, result) in &results {
            let total = build_s + mst_s + pack_s + connect_s;
            t.push_row(vec![
                n.to_string(),
                label.to_string(),
                backend.worker_threads().to_string(),
                f2(build_s * 1e3),
                f2(mst_s * 1e3),
                f2(pack_s * 1e3),
                f2(connect_s * 1e3),
                f2(total * 1e3),
                format!("{:.1}%", 100.0 * (build_s + mst_s) / total),
                result.runtime_slots.to_string(),
                if parity {
                    "ok".into()
                } else {
                    "MISMATCH".into()
                },
            ]);
        }
    }

    // Record the host parallelism next to the data so saved snapshots
    // are interpretable.
    t.expectation = format!("{} (this host: {} core(s))", t.expectation, cores);
    // As in E11: empty tables never ship (the snapshot schema gate
    // rejects them), and only capability rungs record phases.
    #[cfg(feature = "profile")]
    {
        let mut out = vec![t];
        if !phases.rows.is_empty() {
            out.push(phases);
        }
        out
    }
    #[cfg(not(feature = "profile"))]
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_parity_clean() {
        let opts = ExpOptions {
            quick: true,
            seed: 5,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 1);
        // Two engine rows per swept size.
        assert_eq!(tables[0].rows.len(), 2 * ladder(true, false).len());
        for row in &tables[0].rows {
            assert_eq!(row[10], "ok", "engines diverged: {row:?}");
        }
    }
}
