//! E15 — the self-healing service loop under sustained Poisson churn
//! (DESIGN.md §13).
//!
//! E13 measured one-shot churn: inject a batch, recover, stop. This
//! experiment runs the [`crate::serve`] discrete-event loop instead —
//! a sustained Poisson trace of crash faults (plus a thinner join
//! stream) arriving against uniform instances at n = 4096–16384, each
//! fault batch flowing through the *full* robustness pipeline: the
//! timeout detector declares the crashed parents from missed
//! heartbeats, its suspect set is handed verbatim to
//! `repair_after_failures`, joins attach to the repaired structure,
//! and every recovery is audited end to end (bidirectional schedule
//! feasibility + the Definition 1 delivery replay) before the loop
//! accepts the next batch.
//!
//! Reported per row: recovery **throughput** (served events per
//! wall-clock second — measured, like every engineering experiment's
//! timing column) and the **detection / recovery latency distribution**
//! in slots (p50/p99/max by the deterministic nearest-rank rule,
//! pooled across the seed ensemble), plus the backpressure counters
//! (queue peak, early batch closes — each one a cancelled window
//! timer).
//!
//! Asserted per trial: every arrival served, zero skipped faults,
//! detector coverage exact (inside [`crate::serve::serve`]), and every
//! audit clean. The latency columns are deterministic; only the
//! events/sec column is wall-clock.

use crate::ensemble::Ensemble;
use crate::serve::{serve, ServeConfig, ServeReport};
use crate::stats::Stats;
use crate::table::{f2, Table};
use crate::workloads::Family;
use crate::ExpOptions;
use sinr_phy::SinrParams;

/// `(n, events)` rungs: larger instances get shorter traces so the
/// full ladder stays tractable.
fn ladder(quick: bool) -> &'static [(usize, usize)] {
    if quick {
        &[(512, 10), (1024, 8)]
    } else {
        &[(4096, 40), (8192, 28), (16384, 16)]
    }
}

/// Runs E15.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let seeds = opts.ensemble_seeds();
    let driver = Ensemble::from_opts(opts);
    let specs = ladder(opts.quick);

    let results: Vec<Vec<ServeReport>> = driver.map_rows(
        opts.seed,
        specs.len(),
        seeds,
        |row, inst_seed, algo_seed| {
            let (n, events) = specs[row];
            let inst = Family::UniformSquare.instance(n, inst_seed);
            let cfg = ServeConfig {
                events,
                detect: sinr_connectivity::DetectConfig {
                    engine: opts.engine_options(),
                    ..ServeConfig::default().detect
                },
                ..ServeConfig::default()
            };
            let rep = serve(&params, &inst, &cfg, algo_seed)
                .unwrap_or_else(|e| panic!("E15 n={n} seed={algo_seed:#x}: {e}"));
            assert_eq!(rep.events, events, "E15 n={n}: arrivals dropped");
            assert_eq!(rep.skipped_faults, 0, "E15 n={n}: victim pool starved");
            assert!(rep.audits >= rep.batches, "E15 n={n}: unaudited batch");
            rep
        },
    );

    let mut table = Table::new(
        "E15: self-healing service loop under sustained Poisson churn (uniform, MST base)",
        "the loop absorbs a sustained fault/join stream: detector coverage is exact \
         (asserted per batch), every recovery passes the bidirectional feasibility + \
         delivery audits before the next batch, and detection/recovery latency stays \
         flat in slots as n grows (latency percentiles are deterministic nearest-rank \
         over the pooled ensemble; only ev/s is wall-clock — snapshot taken at \
         --threads 1)",
        &[
            "n",
            "events",
            "seeds",
            "batches",
            "early closes",
            "queue peak",
            "ev/s",
            "det p50",
            "det p99",
            "det max",
            "rec p50",
            "rec p99",
            "rec max",
            "audits",
        ],
    );
    for ((n, events), trials) in specs.iter().zip(&results) {
        let pool = |pick: fn(&ServeReport) -> &[f64]| -> Stats {
            let xs: Vec<f64> = trials
                .iter()
                .flat_map(|t| pick(t).iter().copied())
                .collect();
            Stats::of(&xs)
        };
        let det = pool(|t| &t.detection_slots);
        let rec = pool(|t| &t.recovery_slots);
        let batches: usize = trials.iter().map(|t| t.batches).sum();
        let closes: usize = trials.iter().map(|t| t.cancelled_closes).sum();
        let peak = trials.iter().map(|t| t.queue_peak).max().unwrap_or(0);
        let audits: usize = trials.iter().map(|t| t.audits).sum();
        let evs = Stats::of(
            &trials
                .iter()
                .map(ServeReport::events_per_sec)
                .collect::<Vec<_>>(),
        );
        table.push_row(vec![
            n.to_string(),
            events.to_string(),
            seeds.to_string(),
            batches.to_string(),
            closes.to_string(),
            peak.to_string(),
            f2(evs.mean),
            f2(det.p50),
            f2(det.p99),
            f2(det.max),
            f2(rec.p50),
            f2(rec.p99),
            f2(rec.max),
            audits.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_serves_and_audits_cleanly() {
        let opts = ExpOptions {
            quick: true,
            seed: 15,
            seeds: 2,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), ladder(true).len());
        for row in &tables[0].rows {
            let batches: usize = row[3].parse().unwrap();
            let audits: usize = row[13].parse().unwrap();
            assert!(batches >= 1, "{row:?}");
            assert!(audits >= batches, "{row:?}");
            // Detection is never instant; recovery includes detection.
            let det_p50: f64 = row[7].parse().unwrap();
            let rec_p50: f64 = row[10].parse().unwrap();
            assert!(det_p50 > 0.0, "{row:?}");
            assert!(rec_p50 >= det_p50, "{row:?}");
        }
    }
}
