//! E16 — instance-family sweep: schedule length on heterogeneous,
//! percolation and shadowed deployments.
//!
//! The paper's bounds are stated for *arbitrary* metric instances, but
//! E1–E10 measure them on the four classical families. E16 stresses the
//! same E1/E7-class schedule-length metrics on the deployment shapes
//! the [`ChannelModel`] redesign unlocked:
//!
//! - **E16a** sweeps `n` across the uniform baseline, the two-tier
//!   hub/member family (heterogeneous per-node power classes from its
//!   two length scales) and the Bernoulli percolation lattice; the
//!   normalized `slots/log n` column should stay roughly flat per
//!   family if Theorem 21's shape survives the geometry.
//! - **E16b** fixes the expected size and walks the percolation
//!   occupancy ladder through the 2D site-percolation threshold
//!   (≈ 0.5927) — the schedule length tracks the surviving density,
//!   not the lattice size.
//! - **E16c** reruns the uniform ladder under the shadowed channel
//!   (σ = 6 dB log-normal fades, per-trial fade seeds) next to the
//!   geometric baseline; the ratio column quantifies what shadowing
//!   costs the scheduler.
//!
//! All three tables are ensemble runs through one
//! [`crate::ensemble`] dispatch (`--seeds K`, `mean ±95% CI` cells),
//! byte-identical at any `--threads` count.

use sinr_connectivity::{connect_opts, ChannelModel, EngineOptions, Strategy};
use sinr_phy::SinrParams;

use crate::ensemble::Ensemble;
use crate::stats::Stats;
use crate::table::{f2, Table};
use crate::workloads::{percolation_ladder, Family};
use crate::ExpOptions;

/// Shadowing depth of the E16c column, in dB (mid-range of the 3–8 dB
/// outdoor measurements the log-normal literature reports).
const SIGMA_DB: f64 = 6.0;

/// Runs E16 and returns tables E16a, E16b and E16c.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let params = SinrParams::default();
    let seeds = opts.ensemble_seeds();
    let driver = Ensemble::from_opts(opts);

    // Row specs up front: E16a draws a fresh instance per trial; E16b
    // keeps the ladder geometry as the row's fixture (only the
    // protocol's coin flips vary, like E1b); E16c redraws the uniform
    // instance and its fades per trial.
    let a_specs: Vec<(Family, usize)> =
        [Family::UniformSquare, Family::TwoTier, Family::Percolation]
            .into_iter()
            .flat_map(|family| opts.sizes().iter().map(move |&n| (family, n)))
            .collect();
    let nb = if opts.quick { 32 } else { 64 };
    let b_specs = percolation_ladder(nb, opts.seed);
    let c_specs: Vec<usize> = opts.sizes().to_vec();

    let rows = a_specs.len() + b_specs.len() + c_specs.len();
    let results = driver.map_rows(opts.seed, rows, seeds, |row, inst_seed, algo_seed| {
        if row < a_specs.len() {
            let (family, n) = a_specs[row];
            let inst = family.instance(n, inst_seed);
            let out = connect_opts(
                &params,
                &inst,
                Strategy::TvcArbitrary,
                algo_seed,
                opts.engine_options(),
            )
            .expect("connect converges");
            let log_n = (inst.len() as f64).log2().max(1.0);
            (
                inst.delta().log2().max(1.0),
                out.tree_links.len() as f64,
                out.schedule_len as f64,
                out.schedule_len as f64 / log_n,
            )
        } else if row < a_specs.len() + b_specs.len() {
            let (_, inst) = &b_specs[row - a_specs.len()];
            let out = connect_opts(
                &params,
                inst,
                Strategy::TvcArbitrary,
                algo_seed,
                opts.engine_options(),
            )
            .expect("connect converges");
            let log_n = (inst.len() as f64).log2().max(1.0);
            (
                0.0,
                out.tree_links.len() as f64,
                out.schedule_len as f64,
                out.schedule_len as f64 / log_n,
            )
        } else {
            let n = c_specs[row - a_specs.len() - b_specs.len()];
            let inst = Family::UniformSquare.instance(n, inst_seed);
            let geo = connect_opts(
                &params,
                &inst,
                Strategy::TvcArbitrary,
                algo_seed,
                EngineOptions::with_backend(opts.backend),
            )
            .expect("connect converges");
            // Fade streams derive from the trial's instance seed, so
            // the ensemble averages over shadowing realizations too.
            let shadowed = ChannelModel::shadowed(inst_seed, SIGMA_DB).expect("valid sigma");
            let shad = connect_opts(
                &params,
                &inst,
                Strategy::TvcArbitrary,
                algo_seed,
                EngineOptions {
                    backend: opts.backend,
                    channel: shadowed,
                },
            )
            .expect("connect converges under fades");
            (
                geo.schedule_len as f64,
                shad.schedule_len as f64,
                shad.schedule_len as f64 / (geo.schedule_len as f64).max(1.0),
                0.0,
            )
        }
    });
    let mut per_row = results.iter();

    // ---- E16a: schedule slots vs n per family ----------------------
    let mut t1 = Table::new(
        "E16a: TVC schedule slots across instance families",
        "Thm 21's O(log n) shape should survive heterogeneous power \
         classes (two-tier) and percolation geometry: slots/log n \
         stays ~flat per family (mean ±95% CI)",
        &[
            "family",
            "n",
            "seeds",
            "logΔ",
            "links",
            "schedule slots",
            "slots/log n",
        ],
    );
    for &(family, n) in &a_specs {
        let trials = per_row.next().expect("one chunk per row");
        let logd = Stats::of(&trials.iter().map(|r| r.0).collect::<Vec<_>>());
        let links = Stats::of(&trials.iter().map(|r| r.1).collect::<Vec<_>>());
        let slots = Stats::of(&trials.iter().map(|r| r.2).collect::<Vec<_>>());
        let norm = Stats::of(&trials.iter().map(|r| r.3).collect::<Vec<_>>());
        t1.push_row(vec![
            family.label().into(),
            n.to_string(),
            seeds.to_string(),
            f2(logd.mean),
            links.cell(),
            slots.cell(),
            norm.cell(),
        ]);
    }

    // ---- E16b: the percolation density ladder ----------------------
    let mut t2 = Table::new(
        "E16b: percolation occupancy ladder through the threshold",
        "schedule length tracks the surviving density, not the lattice \
         size; the threshold (~0.5927) row sits mid-ladder (mean ±95% CI)",
        &[
            "occupancy",
            "nodes",
            "seeds",
            "links",
            "schedule slots",
            "slots/log n",
        ],
    );
    for (occ, inst) in &b_specs {
        let trials = per_row.next().expect("one chunk per row");
        let links = Stats::of(&trials.iter().map(|r| r.1).collect::<Vec<_>>());
        let slots = Stats::of(&trials.iter().map(|r| r.2).collect::<Vec<_>>());
        let norm = Stats::of(&trials.iter().map(|r| r.3).collect::<Vec<_>>());
        t2.push_row(vec![
            f2(*occ),
            inst.len().to_string(),
            seeds.to_string(),
            links.cell(),
            slots.cell(),
            norm.cell(),
        ]);
    }

    // ---- E16c: geometric vs shadowed channel -----------------------
    let mut t3 = Table::new(
        "E16c: geometric vs shadowed channel (uniform, sigma=6dB)",
        "per-link log-normal fades move the schedule length by a \
         bounded factor only (the clamp keeps the certified gain range \
         finite); ratio = shadowed/geometric slots (mean ±95% CI)",
        &["n", "seeds", "geometric slots", "shadowed slots", "ratio"],
    );
    for &n in &c_specs {
        let trials = per_row.next().expect("one chunk per row");
        let geo = Stats::of(&trials.iter().map(|r| r.0).collect::<Vec<_>>());
        let shad = Stats::of(&trials.iter().map(|r| r.1).collect::<Vec<_>>());
        let ratio = Stats::of(&trials.iter().map(|r| r.2).collect::<Vec<_>>());
        t3.push_row(vec![
            n.to_string(),
            seeds.to_string(),
            geo.cell(),
            shad.cell(),
            ratio.cell(),
        ]);
    }

    vec![t1, t2, t3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_tables() {
        let opts = ExpOptions {
            quick: true,
            seed: 1,
            seeds: 2,
            ..Default::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 3);
        // E16a: one row per (family, size).
        assert_eq!(tables[0].rows.len(), 3 * opts.sizes().len());
        // E16b: the five-rung occupancy ladder.
        assert_eq!(tables[1].rows.len(), 5);
        // E16c: the uniform ladder, ensemble cells in the slot columns.
        assert_eq!(tables[2].rows.len(), opts.sizes().len());
        for row in &tables[2].rows {
            assert!(row[2].contains(" ±"), "not an ensemble cell: {row:?}");
            assert!(row[3].contains(" ±"), "not an ensemble cell: {row:?}");
        }
    }

    /// Same ordered-merge contract as every other ensemble experiment:
    /// the rendered rows are byte-identical at any worker-thread count.
    #[test]
    fn thread_count_does_not_change_row_bytes() {
        let base = ExpOptions {
            quick: true,
            seed: 3,
            seeds: 2,
            threads: 1,
            ..Default::default()
        };
        let one = run(&base);
        let four = run(&ExpOptions { threads: 4, ..base });
        assert_eq!(one, four);
    }
}
