//! `connect` — a small CLI around the library: generate an instance,
//! run a strategy, print the structure, optionally export link/schedule
//! CSVs.
//!
//! ```text
//! cargo run --release -p sinr-bench --bin connect -- \
//!     --family uniform --n 128 --strategy tvc-arbitrary --seed 7 \
//!     [--engine naive|grid|parallel[:N]] [--seeds K] [--threads T] \
//!     [--churn-kill K] [--repack full|incremental] \
//!     [--export target/connect]
//! ```
//!
//! With `--seeds K` (K > 1) the run becomes an ensemble: K independent
//! instances fan out over the multi-seed driver's worker pool
//! (`--threads T`, 0 = auto) and the summary reports `mean ±95% CI`
//! per metric instead of one seed's anecdote. Output bytes are
//! independent of `T` (DESIGN.md §9).
//!
//! With `--churn-kill K` (single-instance runs) the demo additionally
//! fails K random nodes after the build and repairs the structure,
//! printing the re-pack cost accounting — `--repack` selects the
//! incremental re-packer (default) or the centralized full reference
//! (DESIGN.md §10).

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sinr_bench::ensemble::Ensemble;
use sinr_bench::stats::Stats;
use sinr_bench::table::{f2, Table};
use sinr_bench::workloads::Family;
use sinr_connectivity::repair::{repair_after_failures, PriorStructure};
use sinr_connectivity::selector::MeanSamplingSelector;
use sinr_connectivity::tvc::TvcConfig;
use sinr_connectivity::{connect_with, EngineBackend, RepackMode, Strategy};
use sinr_phy::{feasibility, SinrParams};

struct Args {
    family: Family,
    n: usize,
    strategy: Strategy,
    seed: u64,
    engine: EngineBackend,
    seeds: u64,
    threads: usize,
    churn_kill: usize,
    repack: RepackMode,
    export: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut family = Family::UniformSquare;
    let mut n = 64usize;
    let mut strategy = Strategy::TvcArbitrary;
    let mut seed = 0u64;
    let mut engine = EngineBackend::default();
    let mut seeds = 1u64;
    let mut threads = 0usize;
    let mut churn_kill = 0usize;
    let mut repack = RepackMode::default();
    let mut export = None;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let val = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("missing value for {key}"))
        };
        match key {
            "--family" => {
                family = match val(i)?.as_str() {
                    "uniform" => Family::UniformSquare,
                    "clustered" => Family::Clustered,
                    "lattice" => Family::Lattice,
                    "exp-chain" => Family::ExponentialChain,
                    other => return Err(format!("unknown family `{other}`")),
                };
                i += 2;
            }
            "--n" => {
                n = val(i)?.parse().map_err(|e| format!("--n: {e}"))?;
                i += 2;
            }
            "--strategy" => {
                strategy = match val(i)?.as_str() {
                    "init-only" => Strategy::InitOnly,
                    "mean-reschedule" => Strategy::MeanReschedule,
                    "tvc-mean" => Strategy::TvcMean,
                    "tvc-arbitrary" => Strategy::TvcArbitrary,
                    other => return Err(format!("unknown strategy `{other}`")),
                };
                i += 2;
            }
            "--seed" => {
                seed = val(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--engine" => {
                engine = val(i)?.parse()?;
                i += 2;
            }
            "--seeds" => {
                seeds = val(i)?.parse().map_err(|e| format!("--seeds: {e}"))?;
                if seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
                i += 2;
            }
            "--threads" => {
                threads = val(i)?.parse().map_err(|e| format!("--threads: {e}"))?;
                i += 2;
            }
            "--churn-kill" => {
                churn_kill = val(i)?.parse().map_err(|e| format!("--churn-kill: {e}"))?;
                i += 2;
            }
            "--repack" => {
                repack = val(i)?.parse()?;
                i += 2;
            }
            "--export" => {
                export = Some(PathBuf::from(val(i)?));
                i += 2;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: connect --family uniform|clustered|lattice|exp-chain \
                            --n <count> --strategy init-only|mean-reschedule|tvc-mean|\
                            tvc-arbitrary --seed <u64> [--engine naive|grid|parallel[:N]] \
                            [--seeds <K>] [--threads <T>] [--churn-kill <K>] \
                            [--repack full|incremental] [--export <dir>]"
                        .into(),
                );
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(Args {
        family,
        n,
        strategy,
        seed,
        engine,
        seeds,
        threads,
        churn_kill,
        repack,
        export,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let params = SinrParams::default();

    if args.seeds > 1 {
        if args.export.is_some() {
            eprintln!("--export works on a single instance; drop --seeds to export");
            std::process::exit(2);
        }
        if args.churn_kill > 0 {
            eprintln!(
                "--churn-kill works on a single instance; drop --seeds to run the churn demo"
            );
            std::process::exit(2);
        }
        run_ensemble(&args, &params);
        return;
    }

    let instance = args.family.instance(args.n, args.seed);
    println!(
        "instance: family={} n={} Δ={:.2} classes={} engine={}",
        args.family.label(),
        instance.len(),
        instance.delta(),
        instance.num_length_classes(),
        args.engine.label()
    );

    let result = match connect_with(&params, &instance, args.strategy, args.seed, args.engine) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("connectivity failed: {e}");
            std::process::exit(1);
        }
    };

    println!("strategy: {}", result.strategy);
    println!("links:    {}", result.tree_links.len());
    println!("schedule: {} slots", result.schedule_len);
    println!("runtime:  {} slots", result.runtime_slots);

    match feasibility::validate_schedule(
        &params,
        &instance,
        &result.aggregation_schedule,
        &result.power,
    ) {
        Ok(()) => println!("validated: every slot SINR-feasible"),
        Err(e) => {
            eprintln!("validation failed: {e}");
            std::process::exit(1);
        }
    }

    if args.churn_kill > 0 {
        run_churn_demo(&args, &params, &instance, &result);
    }

    if let Some(dir) = args.export {
        if let Err(e) = export_csvs(&dir, &instance, &result) {
            eprintln!("export failed: {e}");
            std::process::exit(1);
        }
        let svg = sinr_links::svg::render(
            &instance,
            Some(&result.tree_links),
            Some(&result.aggregation_schedule),
            &sinr_links::svg::SvgOptions::default(),
        );
        if let Err(e) = std::fs::write(dir.join("network.svg"), svg) {
            eprintln!("svg export failed: {e}");
            std::process::exit(1);
        }
        println!(
            "exported: {}/{{nodes,links}}.csv + network.svg",
            dir.display()
        );
    }
}

/// The `--churn-kill K` demo: fail K random nodes after the build,
/// repair with the selected re-packer, and print the re-pack cost
/// accounting (the DESIGN.md §10 boundary made visible from the CLI).
fn run_churn_demo(
    args: &Args,
    params: &SinrParams,
    instance: &sinr_geom::Instance,
    result: &sinr_connectivity::ConnectivityResult,
) {
    let Some(powers) = result.power.as_explicit() else {
        eprintln!(
            "--churn-kill needs explicit per-link powers; use a tvc-* strategy \
             (strategy {} assigns powers by formula)",
            result.strategy
        );
        std::process::exit(2);
    };
    if args.churn_kill >= instance.len() {
        eprintln!("--churn-kill must leave at least one survivor");
        std::process::exit(2);
    }
    // Parent array from the aggregation links (sender → parent).
    let mut parents: Vec<Option<usize>> = vec![None; instance.len()];
    for l in result.tree_links.iter() {
        parents[l.sender] = Some(l.receiver);
    }
    let mut ids: Vec<usize> = (0..instance.len()).collect();
    ids.shuffle(&mut StdRng::seed_from_u64(args.seed ^ 0xC4C4_C4C4));
    let failed: Vec<usize> = ids.into_iter().take(args.churn_kill).collect();

    let prior = PriorStructure {
        parents: &parents,
        powers,
        schedule: &result.aggregation_schedule,
    };
    let cfg = TvcConfig {
        repack: args.repack,
        ..Default::default()
    };
    let mut sel = MeanSamplingSelector::default();
    let rep = match repair_after_failures(
        params,
        instance,
        &prior,
        &failed,
        &cfg,
        &mut sel,
        args.seed.wrapping_add(0x5e1f),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("churn repair failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "churn:    killed {} node(s); kept {} links, re-attached {} for {} orphan(s)",
        failed.len(),
        rep.kept_links,
        rep.new_links,
        rep.orphaned_roots
    );
    println!(
        "repack:   mode={} re-placed {}/{} links ({:.1}%), {}/{} slot groupings untouched, \
         {} fresh slot(s), {:.2} ms",
        rep.repack.mode,
        rep.repack.repacked_links,
        rep.repack.total_links,
        100.0 * rep.repack.repacked_fraction(),
        rep.repack.untouched_slots,
        rep.repack.previous_slots,
        rep.repack.fresh_slots,
        rep.repack.pack_seconds * 1e3,
    );
    match feasibility::validate_schedule(params, &rep.instance, &rep.schedule, &rep.power) {
        Ok(()) => println!(
            "repaired: every slot SINR-feasible ({} slots)",
            rep.schedule.num_slots()
        ),
        Err(e) => {
            eprintln!("repaired schedule validation failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The `--seeds K` path: K independent trials through the ensemble
/// driver, every schedule validated, metrics reported as `mean ±95% CI`
/// with the ensemble extremes.
fn run_ensemble(args: &Args, params: &SinrParams) {
    println!(
        "ensemble: family={} n={} strategy={} engine={} seeds={} (base seed {})",
        args.family.label(),
        args.n,
        args.strategy.label(),
        args.engine.label(),
        args.seeds,
        args.seed,
    );

    let driver = Ensemble::new(args.threads);
    let results = driver.run_trials(args.seed, 0, args.seeds, |inst_seed, algo_seed| {
        let instance = args.family.instance(args.n, inst_seed);
        let result = connect_with(params, &instance, args.strategy, algo_seed, args.engine)
            .unwrap_or_else(|e| panic!("instance seed {inst_seed:#x}: connectivity failed: {e}"));
        feasibility::validate_schedule(
            params,
            &instance,
            &result.aggregation_schedule,
            &result.power,
        )
        .unwrap_or_else(|e| panic!("instance seed {inst_seed:#x}: validation failed: {e}"));
        (
            result.tree_links.len() as f64,
            result.schedule_len as f64,
            result.runtime_slots as f64,
        )
    });

    let mut t = Table::new(
        format!(
            "connect: {} on {} n={}, {}-seed ensemble",
            args.strategy.label(),
            args.family.label(),
            args.n,
            args.seeds
        ),
        "",
        &["metric", "mean ±95% CI", "min", "max"],
    );
    type Pick = fn(&(f64, f64, f64)) -> f64;
    let metrics: [(&str, Pick); 3] = [
        ("links", |r| r.0),
        ("schedule slots", |r| r.1),
        ("runtime slots", |r| r.2),
    ];
    for (name, pick) in metrics {
        let s = Stats::of(&results.iter().map(pick).collect::<Vec<_>>());
        t.push_row(vec![name.into(), s.cell(), f2(s.min), f2(s.max)]);
    }
    print!("{}", t.render());
    println!(
        "validated: every slot SINR-feasible on all {} seeds",
        args.seeds
    );
}

fn export_csvs(
    dir: &std::path::Path,
    instance: &sinr_geom::Instance,
    result: &sinr_connectivity::ConnectivityResult,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    std::fs::create_dir_all(dir)?;

    let mut nodes = String::from("node,x,y\n");
    for (id, p) in instance.iter() {
        let _ = writeln!(nodes, "{id},{},{}", p.x, p.y);
    }
    std::fs::write(dir.join("nodes.csv"), nodes)?;

    let mut links = String::from("sender,receiver,length,slot\n");
    for l in result.tree_links.iter() {
        let _ = writeln!(
            links,
            "{},{},{},{}",
            l.sender,
            l.receiver,
            l.length(instance),
            result
                .aggregation_schedule
                .slot_of(l)
                .map(|s| s.to_string())
                .unwrap_or_default()
        );
    }
    std::fs::write(dir.join("links.csv"), links)?;
    Ok(())
}
