//! `connect` — a small CLI around the library: generate an instance,
//! run a strategy, print the structure, optionally export link/schedule
//! CSVs.
//!
//! ```text
//! cargo run --release -p sinr-bench --bin connect -- \
//!     --family uniform --n 128 --strategy tvc-arbitrary --seed 7 \
//!     [--engine naive|grid|parallel[:N]] [--fade <sigma_db>] \
//!     [--seeds K] [--threads T] \
//!     [--churn-kill K] [--repack full|incremental|distributed] \
//!     [--export target/connect]
//! ```
//!
//! With `--seeds K` (K > 1) the run becomes an ensemble: K independent
//! instances fan out over the multi-seed driver's worker pool
//! (`--threads T`, 0 = auto) and the summary reports `mean ±95% CI`
//! per metric instead of one seed's anecdote. Output bytes are
//! independent of `T` (DESIGN.md §9).
//!
//! With `--churn-kill K` (single-instance runs) the demo additionally
//! fails K random nodes after the build and repairs the structure,
//! printing the re-pack cost accounting — `--repack` selects the
//! incremental re-packer (default), the message-passing distributed
//! one (lazy cascade; the demo then also prints its probe/ack round
//! count and escalations), or the centralized full reference
//! (DESIGN.md §10, §14).
//!
//! With `--serve` the CLI instead runs the self-healing service loop
//! (DESIGN.md §13): a sustained Poisson fault/join trace
//! (`--fault-rate` / `--join-rate` arrivals per 1000 slots,
//! `--serve-events` total) flows through timeout detection → repair →
//! re-pack with an end-to-end delivery audit after every recovery, and
//! the run reports throughput, detection/recovery latency percentiles
//! and the backpressure counters.
//!
//! Built with `--features profile`, `--profile` records the engine's
//! per-phase breakdown of a single run (build / grid / resolve / merge
//! wall laps, the field's decode phases, and the query counters —
//! DESIGN.md §12) and prints it after the run.
//!
//! Built with `--features trace`, four observability modes appear
//! (DESIGN.md §11):
//!
//! - `--trace <path>` records the structured event log of a single run
//!   as JSON;
//! - `--snapshot <path> --snapshot-at <slot>` captures the `Init`
//!   engine state at a slot (strategy `init-only`) into a replayable
//!   snapshot file;
//! - `--replay-from <path>` resumes a snapshot file under `--engine`
//!   and verifies the tail fingerprint bit-for-bit against the
//!   original run's;
//! - `--diff-engine <backend>` runs `--engine` and the named backend
//!   with tracing on and reports the first divergence (slot, node,
//!   event kind, field, both values) — or certifies there is none.

use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sinr_bench::ensemble::Ensemble;
use sinr_bench::stats::Stats;
use sinr_bench::table::{f2, Table};
use sinr_bench::workloads::Family;
use sinr_connectivity::repair::{repair_after_failures, PriorStructure};
use sinr_connectivity::selector::MeanSamplingSelector;
use sinr_connectivity::tvc::TvcConfig;
use sinr_connectivity::{
    connect_opts, ChannelModel, EngineBackend, EngineOptions, RepackMode, Strategy,
};
use sinr_phy::{feasibility, SinrParams};

struct Args {
    family: Family,
    n: usize,
    strategy: Strategy,
    seed: u64,
    engine: EngineBackend,
    channel: ChannelModel,
    seeds: u64,
    threads: usize,
    churn_kill: usize,
    repack: RepackMode,
    serve: bool,
    fault_rate: f64,
    join_rate: f64,
    serve_events: usize,
    export: Option<PathBuf>,
    profile: bool,
    trace: Option<PathBuf>,
    snapshot: Option<PathBuf>,
    snapshot_at: Option<u64>,
    replay_from: Option<PathBuf>,
    diff_engine: Option<EngineBackend>,
}

impl Args {
    /// The engine-facing knobs (backend + channel model) every pipeline
    /// construction site shares.
    fn engine_opts(&self) -> EngineOptions {
        EngineOptions {
            backend: self.engine,
            channel: self.channel,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut family = Family::UniformSquare;
    let mut n = 64usize;
    let mut strategy = Strategy::TvcArbitrary;
    let mut seed = 0u64;
    let mut engine = EngineBackend::default();
    let mut fade: Option<f64> = None;
    let mut seeds = 1u64;
    let mut threads = 0usize;
    let mut churn_kill = 0usize;
    let mut repack = RepackMode::default();
    let mut serve = false;
    let mut fault_rate: Option<f64> = None;
    let mut join_rate: Option<f64> = None;
    let mut serve_events: Option<usize> = None;
    let mut export = None;
    let mut profile = false;
    let mut trace = None;
    let mut snapshot = None;
    let mut snapshot_at = None;
    let mut replay_from = None;
    let mut diff_engine = None;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let val = |i: usize| -> Result<&String, String> {
            argv.get(i + 1)
                .ok_or_else(|| format!("missing value for {key}"))
        };
        match key {
            "--family" => {
                let v = val(i)?;
                family = Family::from_label(v).ok_or_else(|| {
                    format!(
                        "unknown family `{v}` (try uniform|clustered|lattice|\
                         exp-chain|two-tier|percolation)"
                    )
                })?;
                i += 2;
            }
            "--n" => {
                n = val(i)?.parse().map_err(|e| format!("--n: {e}"))?;
                i += 2;
            }
            "--strategy" => {
                strategy = match val(i)?.as_str() {
                    "init-only" => Strategy::InitOnly,
                    "mean-reschedule" => Strategy::MeanReschedule,
                    "tvc-mean" => Strategy::TvcMean,
                    "tvc-arbitrary" => Strategy::TvcArbitrary,
                    other => return Err(format!("unknown strategy `{other}`")),
                };
                i += 2;
            }
            "--seed" => {
                seed = val(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--engine" => {
                engine = val(i)?.parse()?;
                i += 2;
            }
            "--fade" => {
                let s: f64 = val(i)?.parse().map_err(|e| format!("--fade: {e}"))?;
                if !(s.is_finite() && s > 0.0) {
                    return Err(format!(
                        "--fade must be a positive shadowing σ in dB, got {s}"
                    ));
                }
                fade = Some(s);
                i += 2;
            }
            "--seeds" => {
                seeds = val(i)?.parse().map_err(|e| format!("--seeds: {e}"))?;
                if seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
                i += 2;
            }
            "--threads" => {
                threads = val(i)?.parse().map_err(|e| format!("--threads: {e}"))?;
                if threads == 0 {
                    return Err(
                        "--threads must be at least 1 (omit the flag to auto-size the pool)".into(),
                    );
                }
                i += 2;
            }
            "--churn-kill" => {
                churn_kill = val(i)?.parse().map_err(|e| format!("--churn-kill: {e}"))?;
                i += 2;
            }
            "--repack" => {
                repack = val(i)?.parse()?;
                i += 2;
            }
            "--serve" => {
                serve = true;
                i += 1;
            }
            "--fault-rate" => {
                let r: f64 = val(i)?.parse().map_err(|e| format!("--fault-rate: {e}"))?;
                if !(r.is_finite() && r >= 0.0) {
                    return Err(format!(
                        "--fault-rate must be finite and non-negative, got {r}"
                    ));
                }
                fault_rate = Some(r);
                i += 2;
            }
            "--join-rate" => {
                let r: f64 = val(i)?.parse().map_err(|e| format!("--join-rate: {e}"))?;
                if !(r.is_finite() && r >= 0.0) {
                    return Err(format!(
                        "--join-rate must be finite and non-negative, got {r}"
                    ));
                }
                join_rate = Some(r);
                i += 2;
            }
            "--serve-events" => {
                let e: usize = val(i)?
                    .parse()
                    .map_err(|e| format!("--serve-events: {e}"))?;
                if e == 0 {
                    return Err("--serve-events must be at least 1".into());
                }
                serve_events = Some(e);
                i += 2;
            }
            "--export" => {
                export = Some(PathBuf::from(val(i)?));
                i += 2;
            }
            "--profile" => {
                profile = true;
                i += 1;
            }
            "--trace" => {
                trace = Some(PathBuf::from(val(i)?));
                i += 2;
            }
            "--snapshot" => {
                snapshot = Some(PathBuf::from(val(i)?));
                i += 2;
            }
            "--snapshot-at" => {
                snapshot_at = Some(val(i)?.parse().map_err(|e| format!("--snapshot-at: {e}"))?);
                i += 2;
            }
            "--replay-from" => {
                replay_from = Some(PathBuf::from(val(i)?));
                i += 2;
            }
            "--diff-engine" => {
                diff_engine = Some(val(i)?.parse()?);
                i += 2;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: connect --family uniform|clustered|lattice|exp-chain|\
                            two-tier|percolation \
                            --n <count> --strategy init-only|mean-reschedule|tvc-mean|\
                            tvc-arbitrary --seed <u64> [--engine naive|grid|parallel[:N]] \
                            [--fade <sigma_db>] \
                            [--seeds <K>] [--threads <T>] [--churn-kill <K>] \
                            [--repack full|incremental|distributed] \
                            [--serve [--fault-rate <R>] [--join-rate <R>] \
                            [--serve-events <E>]] [--export <dir>] \
                            [--profile] (needs a build with --features profile) \
                            [--trace <path>] [--snapshot <path> --snapshot-at <slot>] \
                            [--replay-from <path>] [--diff-engine naive|grid|parallel[:N]] \
                            (the last four need a build with --features trace)"
                        .into(),
                );
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if snapshot.is_some() != snapshot_at.is_some() {
        return Err("--snapshot and --snapshot-at go together: both or neither".into());
    }
    if fade.is_some() && (snapshot.is_some() || replay_from.is_some()) {
        return Err(
            "--fade is not recorded in snapshot files; the snapshot/replay modes \
             run the geometric channel"
                .into(),
        );
    }
    if n == 0 {
        return Err("--n must be at least 1".into());
    }
    if churn_kill > 0 && churn_kill >= n {
        return Err(format!(
            "--churn-kill must leave at least one survivor (asked to kill \
             {churn_kill} of {n} nodes)"
        ));
    }
    if !serve && (fault_rate.is_some() || join_rate.is_some() || serve_events.is_some()) {
        return Err(
            "--fault-rate/--join-rate/--serve-events configure the service loop; \
             add --serve to run it"
                .into(),
        );
    }
    if serve {
        if churn_kill > 0 {
            return Err(
                "--serve runs sustained churn through the detector; it conflicts with \
                 the one-shot --churn-kill demo — pick one"
                    .into(),
            );
        }
        if fault_rate.unwrap_or(5.0) + join_rate.unwrap_or(1.0) <= 0.0 {
            return Err("--serve needs a positive --fault-rate or --join-rate".into());
        }
    }
    let channel = match fade {
        // The fade streams derive from the run seed, so two seeds see
        // independent shadowing realizations (the determinism gate's
        // seed-sensitivity check relies on this).
        Some(sigma) => ChannelModel::shadowed(seed, sigma).map_err(|e| format!("--fade: {e}"))?,
        None => ChannelModel::Geometric,
    };
    Ok(Args {
        family,
        n,
        strategy,
        seed,
        engine,
        channel,
        seeds,
        threads,
        churn_kill,
        repack,
        serve,
        fault_rate: fault_rate.unwrap_or(5.0),
        join_rate: join_rate.unwrap_or(1.0),
        serve_events: serve_events.unwrap_or(16),
        export,
        profile,
        trace,
        snapshot,
        snapshot_at,
        replay_from,
        diff_engine,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let params = SinrParams::default();

    #[cfg(not(feature = "profile"))]
    if args.profile {
        eprintln!(
            "this `connect` was built without the `profile` feature; \
             rebuild with `--features profile` to use --profile"
        );
        std::process::exit(2);
    }

    #[cfg(not(feature = "trace"))]
    if args.trace.is_some()
        || args.snapshot.is_some()
        || args.snapshot_at.is_some()
        || args.replay_from.is_some()
        || args.diff_engine.is_some()
    {
        eprintln!(
            "this `connect` was built without the `trace` feature; \
             rebuild with `--features trace` to use the observability flags"
        );
        std::process::exit(2);
    }

    #[cfg(feature = "trace")]
    {
        let modes = [
            args.replay_from.is_some(),
            args.diff_engine.is_some(),
            args.snapshot.is_some(),
        ];
        if modes.iter().filter(|&&m| m).count() > 1 {
            eprintln!("--replay-from, --diff-engine and --snapshot are separate modes; pick one");
            std::process::exit(2);
        }
        if modes.iter().any(|&m| m)
            && (args.seeds > 1
                || args.churn_kill > 0
                || args.serve
                || args.export.is_some()
                || args.profile)
        {
            eprintln!(
                "the observability modes run on a single instance; \
                 drop --seeds/--churn-kill/--serve/--export/--profile"
            );
            std::process::exit(2);
        }
        if let Some(path) = &args.replay_from {
            run_replay(&args, path);
            return;
        }
        if let Some(other) = args.diff_engine {
            run_diff(&args, &params, other);
            return;
        }
        if let (Some(path), Some(at)) = (&args.snapshot, args.snapshot_at) {
            run_snapshot(&args, &params, path, at);
            return;
        }
    }

    if args.serve {
        if args.seeds > 1 {
            eprintln!("--serve drives a single instance; drop --seeds to serve");
            std::process::exit(2);
        }
        if args.export.is_some() || args.profile || args.trace.is_some() {
            eprintln!("--serve is a standalone mode; drop --export/--profile/--trace");
            std::process::exit(2);
        }
        run_serve(&args, &params);
        return;
    }

    if args.seeds > 1 {
        if args.export.is_some() {
            eprintln!("--export works on a single instance; drop --seeds to export");
            std::process::exit(2);
        }
        if args.churn_kill > 0 {
            eprintln!(
                "--churn-kill works on a single instance; drop --seeds to run the churn demo"
            );
            std::process::exit(2);
        }
        if args.trace.is_some() {
            eprintln!("--trace records a single instance; drop --seeds to trace");
            std::process::exit(2);
        }
        if args.profile {
            eprintln!("--profile records a single instance; drop --seeds to profile");
            std::process::exit(2);
        }
        run_ensemble(&args, &params);
        return;
    }

    let instance = args.family.instance(args.n, args.seed);
    println!(
        "instance: family={} n={} Δ={:.2} classes={} engine={}",
        args.family.label(),
        instance.len(),
        instance.delta(),
        instance.num_length_classes(),
        args.engine.label()
    );
    if !args.channel.is_geometric() {
        println!("channel:  {}", args.channel.label());
    }

    #[cfg(feature = "trace")]
    if args.trace.is_some() {
        sinr_sim::trace::start(sinr_sim::trace::DEFAULT_CAPACITY);
    }
    #[cfg(feature = "profile")]
    if args.profile {
        sinr_sim::profile::start();
    }

    let result = match connect_opts(
        &params,
        &instance,
        args.strategy,
        args.seed,
        args.engine_opts(),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("connectivity failed: {e}");
            std::process::exit(1);
        }
    };

    #[cfg(feature = "profile")]
    if args.profile {
        use sinr_bench::experiments::e11_scaling::{profile_table, push_profile_rows};
        let report = sinr_sim::profile::stop();
        let mut t = profile_table("profile: per-phase engine breakdown");
        push_profile_rows(&mut t, args.family.label(), args.n, &report);
        print!("{}", t.render());
    }

    #[cfg(feature = "trace")]
    if let Some(path) = &args.trace {
        let log = sinr_sim::trace::stop();
        if let Err(e) = std::fs::write(path, sinr_bench::replay::trace_log_to_json(&log)) {
            eprintln!("trace write failed: {e}");
            std::process::exit(1);
        }
        println!(
            "trace:    {} event(s) ({} dropped) -> {}",
            log.events.len(),
            log.dropped,
            path.display()
        );
    }

    println!("strategy: {}", result.strategy);
    println!("links:    {}", result.tree_links.len());
    println!("schedule: {} slots", result.schedule_len);
    println!("runtime:  {} slots", result.runtime_slots);

    match feasibility::validate_schedule_with_model(
        &params,
        &instance,
        &result.aggregation_schedule,
        &result.power,
        args.channel,
    ) {
        Ok(()) => println!("validated: every slot SINR-feasible"),
        Err(e) => {
            eprintln!("validation failed: {e}");
            std::process::exit(1);
        }
    }

    if args.churn_kill > 0 {
        run_churn_demo(&args, &params, &instance, &result);
    }

    if let Some(dir) = args.export {
        if let Err(e) = export_csvs(&dir, &instance, &result) {
            eprintln!("export failed: {e}");
            std::process::exit(1);
        }
        let svg = sinr_links::svg::render(
            &instance,
            Some(&result.tree_links),
            Some(&result.aggregation_schedule),
            &sinr_links::svg::SvgOptions::default(),
        );
        if let Err(e) = std::fs::write(dir.join("network.svg"), svg) {
            eprintln!("svg export failed: {e}");
            std::process::exit(1);
        }
        println!(
            "exported: {}/{{nodes,links}}.csv + network.svg",
            dir.display()
        );
    }
}

/// The `--serve` mode: run the self-healing service loop — a Poisson
/// fault/join trace through detect → repair → re-pack with per-recovery
/// audits (DESIGN.md §13) — and print throughput, the latency
/// distribution and the backpressure counters.
fn run_serve(args: &Args, params: &SinrParams) {
    use sinr_bench::serve::{serve, ServeConfig};
    use sinr_bench::stats::Stats;

    let instance = args.family.instance(args.n, args.seed);
    let cfg = ServeConfig {
        fault_rate: args.fault_rate,
        join_rate: args.join_rate,
        events: args.serve_events,
        detect: sinr_connectivity::DetectConfig {
            engine: args.engine_opts(),
            ..ServeConfig::default().detect
        },
        repack: args.repack,
        ..ServeConfig::default()
    };
    println!(
        "serve:    family={} n={} engine={} events={} fault-rate={}/1000 \
         join-rate={}/1000 (seed {})",
        args.family.label(),
        args.n,
        args.engine.label(),
        cfg.events,
        cfg.fault_rate,
        cfg.join_rate,
        args.seed,
    );
    let rep = match serve(params, &instance, &cfg, args.seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    };
    let det = Stats::of(&rep.detection_slots);
    let rec = Stats::of(&rep.recovery_slots);
    println!(
        "served:   {} event(s) ({} fault(s), {} join(s)) in {} batch(es) over \
         {:.0} slot(s); {:.1} events/s wall",
        rep.events,
        rep.faults,
        rep.joins,
        rep.batches,
        rep.horizon,
        rep.events_per_sec(),
    );
    println!(
        "detect:   latency p50={} p99={} max={} slot(s) across {} declaration(s)",
        f2(det.p50),
        f2(det.p99),
        f2(det.max),
        rep.detection_slots.len(),
    );
    println!(
        "recover:  latency p50={} p99={} max={} slot(s); queue peak {}, \
         {} early close(s)",
        f2(rec.p50),
        f2(rec.p99),
        f2(rec.max),
        rep.queue_peak,
        rep.cancelled_closes,
    );
    println!(
        "audited:  {} recovery audit(s) clean (bidirectional feasibility + \
         delivery replay); final n = {}",
        rep.audits, rep.final_n,
    );
}

/// The `--churn-kill K` demo: fail K random nodes after the build,
/// repair with the selected re-packer, and print the re-pack cost
/// accounting (the DESIGN.md §10 boundary made visible from the CLI).
fn run_churn_demo(
    args: &Args,
    params: &SinrParams,
    instance: &sinr_geom::Instance,
    result: &sinr_connectivity::ConnectivityResult,
) {
    let Some(powers) = result.power.as_explicit() else {
        eprintln!(
            "--churn-kill needs explicit per-link powers; use a tvc-* strategy \
             (strategy {} assigns powers by formula)",
            result.strategy
        );
        std::process::exit(2);
    };
    if args.churn_kill >= instance.len() {
        eprintln!("--churn-kill must leave at least one survivor");
        std::process::exit(2);
    }
    // Parent array from the aggregation links (sender → parent).
    let mut parents: Vec<Option<usize>> = vec![None; instance.len()];
    for l in result.tree_links.iter() {
        parents[l.sender] = Some(l.receiver);
    }
    let mut ids: Vec<usize> = (0..instance.len()).collect();
    ids.shuffle(&mut StdRng::seed_from_u64(args.seed ^ 0xC4C4_C4C4));
    let failed: Vec<usize> = ids.into_iter().take(args.churn_kill).collect();

    let prior = PriorStructure {
        parents: &parents,
        powers,
        schedule: &result.aggregation_schedule,
    };
    let cfg = TvcConfig {
        repack: args.repack,
        init: sinr_connectivity::init::InitConfig {
            engine: args.engine_opts(),
            ..Default::default()
        },
        ..Default::default()
    };
    let mut sel = MeanSamplingSelector::default();
    let rep = match repair_after_failures(
        params,
        instance,
        &prior,
        &failed,
        &cfg,
        &mut sel,
        args.seed.wrapping_add(0x5e1f),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("churn repair failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "churn:    killed {} node(s); kept {} links, re-attached {} for {} orphan(s)",
        failed.len(),
        rep.kept_links,
        rep.new_links,
        rep.orphaned_roots
    );
    println!(
        "repack:   mode={} re-placed {}/{} links ({:.1}%), {}/{} slot groupings untouched, \
         {} fresh slot(s), {:.2} ms",
        rep.repack.mode,
        rep.repack.repacked_links,
        rep.repack.total_links,
        100.0 * rep.repack.repacked_fraction(),
        rep.repack.untouched_slots,
        rep.repack.previous_slots,
        rep.repack.fresh_slots,
        rep.repack.pack_seconds * 1e3,
    );
    if rep.repack.mode == RepackMode::Distributed {
        println!(
            "protocol: {} probe/ack slot(s), {} cascade escalation(s)",
            rep.repack.protocol_slots, rep.repack.cascade_escalations,
        );
    }
    match feasibility::validate_schedule_with_model(
        params,
        &rep.instance,
        &rep.schedule,
        &rep.power,
        args.channel,
    ) {
        Ok(()) => println!(
            "repaired: every slot SINR-feasible ({} slots)",
            rep.schedule.num_slots()
        ),
        Err(e) => {
            eprintln!("repaired schedule validation failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The `--seeds K` path: K independent trials through the ensemble
/// driver, every schedule validated, metrics reported as `mean ±95% CI`
/// with the ensemble extremes.
fn run_ensemble(args: &Args, params: &SinrParams) {
    println!(
        "ensemble: family={} n={} strategy={} engine={} seeds={} (base seed {})",
        args.family.label(),
        args.n,
        args.strategy.label(),
        args.engine.label(),
        args.seeds,
        args.seed,
    );

    let driver = Ensemble::new(args.threads);
    let results = driver.run_trials(args.seed, 0, args.seeds, |inst_seed, algo_seed| {
        let instance = args.family.instance(args.n, inst_seed);
        let result = connect_opts(
            params,
            &instance,
            args.strategy,
            algo_seed,
            args.engine_opts(),
        )
        .unwrap_or_else(|e| panic!("instance seed {inst_seed:#x}: connectivity failed: {e}"));
        feasibility::validate_schedule_with_model(
            params,
            &instance,
            &result.aggregation_schedule,
            &result.power,
            args.channel,
        )
        .unwrap_or_else(|e| panic!("instance seed {inst_seed:#x}: validation failed: {e}"));
        (
            result.tree_links.len() as f64,
            result.schedule_len as f64,
            result.runtime_slots as f64,
        )
    });

    let mut t = Table::new(
        format!(
            "connect: {} on {} n={}, {}-seed ensemble",
            args.strategy.label(),
            args.family.label(),
            args.n,
            args.seeds
        ),
        "",
        &["metric", "mean ±95% CI", "min", "max"],
    );
    type Pick = fn(&(f64, f64, f64)) -> f64;
    let metrics: [(&str, Pick); 3] = [
        ("links", |r| r.0),
        ("schedule slots", |r| r.1),
        ("runtime slots", |r| r.2),
    ];
    for (name, pick) in metrics {
        let s = Stats::of(&results.iter().map(pick).collect::<Vec<_>>());
        t.push_row(vec![name.into(), s.cell(), f2(s.min), f2(s.max)]);
    }
    print!("{}", t.render());
    println!(
        "validated: every slot SINR-feasible on all {} seeds",
        args.seeds
    );
}

/// The `--snapshot <path> --snapshot-at <slot>` mode: run `Init`
/// (strategy `init-only`), capture the engine state at the requested
/// slot, and write a replayable snapshot file carrying the final-state
/// fingerprint a later `--replay-from` must reproduce.
#[cfg(feature = "trace")]
fn run_snapshot(args: &Args, params: &SinrParams, path: &std::path::Path, at: u64) {
    use sinr_bench::replay::SnapshotFile;
    use sinr_connectivity::init::{run_init_with_snapshot, InitConfig};

    if args.strategy != Strategy::InitOnly {
        eprintln!("--snapshot captures the `Init` engine; use --strategy init-only");
        std::process::exit(2);
    }
    let instance = args.family.instance(args.n, args.seed);
    let cfg = InitConfig {
        engine: args.engine_opts(),
        ..Default::default()
    };
    let replay = match run_init_with_snapshot(params, &instance, &cfg, args.seed, at) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("init failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "init:     family={} n={} seed={} engine={}: {} slots, tail fingerprint {:016x}",
        args.family.label(),
        args.n,
        args.seed,
        args.engine.label(),
        replay.outcome.run.slots_used,
        replay.tail_fnv,
    );
    let Some(state) = replay.snapshot else {
        eprintln!(
            "no snapshot: the run was already over at slot {at} \
             (it used {} slots); pick an earlier --snapshot-at",
            replay.outcome.run.slots_used
        );
        std::process::exit(1);
    };
    let file = SnapshotFile {
        family: args.family.label().into(),
        n: args.n,
        seed: args.seed,
        engine: args.engine.label().into(),
        snapshot_slot: at,
        tail_fnv: replay.tail_fnv,
        params: serde::Serialize::to_value(params),
        state,
    };
    if let Err(e) = std::fs::write(path, file.to_json()) {
        eprintln!("snapshot write failed: {e}");
        std::process::exit(1);
    }
    println!("snapshot: slot-{at} engine state -> {}", path.display());
}

/// The `--replay-from <path>` mode: regenerate the instance from the
/// snapshot file's recipe, resume the captured engine state under
/// `--engine`, and verify the resumed run's tail fingerprint
/// bit-for-bit against the original's.
#[cfg(feature = "trace")]
fn run_replay(args: &Args, path: &std::path::Path) {
    use sinr_bench::replay::SnapshotFile;
    use sinr_connectivity::init::{resume_init, InitConfig};

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let file = match SnapshotFile::parse(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let Some(family) = Family::from_label(&file.family) else {
        eprintln!("snapshot names unknown family `{}`", file.family);
        std::process::exit(1);
    };
    let params: SinrParams = match serde::Deserialize::from_value(&file.params) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("snapshot carries bad SINR parameters: {e}");
            std::process::exit(1);
        }
    };
    let instance = family.instance(file.n, file.seed);
    let cfg = InitConfig {
        engine: args.engine_opts(),
        ..Default::default()
    };
    println!(
        "replay:   family={} n={} seed={} from slot {} (captured under {}, resuming under {})",
        file.family,
        file.n,
        file.seed,
        file.snapshot_slot,
        file.engine,
        args.engine.label(),
    );
    let (outcome, tail_fnv) = match resume_init(&params, &instance, &cfg, &file.state) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("resume failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "resumed:  {} slots total, tail fingerprint {tail_fnv:016x}",
        outcome.run.slots_used
    );
    if tail_fnv == file.tail_fnv {
        println!("verdict:  tail fingerprint matches the original run bit-for-bit");
    } else {
        eprintln!(
            "verdict:  DIVERGED — original tail {:016x}, replay tail {tail_fnv:016x}",
            file.tail_fnv
        );
        std::process::exit(1);
    }
}

/// The `--diff-engine <backend>` mode: run the same strategy twice with
/// tracing on — once under `--engine`, once under the named backend —
/// and report the first event-stream divergence (slot, node, event
/// kind, field, both values), or certify there is none.
#[cfg(feature = "trace")]
fn run_diff(args: &Args, params: &SinrParams, other: EngineBackend) {
    use sinr_sim::trace;

    let instance = args.family.instance(args.n, args.seed);
    let traced_run = |backend: EngineBackend| -> trace::TraceLog {
        trace::start(trace::DEFAULT_CAPACITY);
        let opts = EngineOptions {
            backend,
            channel: args.channel,
        };
        let result = connect_opts(params, &instance, args.strategy, args.seed, opts);
        let log = trace::stop();
        if let Err(e) = result {
            eprintln!("connectivity failed under {}: {e}", backend.label());
            std::process::exit(1);
        }
        log
    };
    let left = traced_run(args.engine);
    let right = traced_run(other);
    println!(
        "diff:     {} vs {} ({} on {} n={} seed={}): {} vs {} event(s)",
        args.engine.label(),
        other.label(),
        args.strategy.label(),
        args.family.label(),
        args.n,
        args.seed,
        left.events.len(),
        right.events.len(),
    );
    if let Some(path) = &args.trace {
        if let Err(e) = std::fs::write(path, sinr_bench::replay::trace_log_to_json(&left)) {
            eprintln!("trace write failed: {e}");
            std::process::exit(1);
        }
        println!(
            "trace:    {} engine's log -> {}",
            args.engine.label(),
            path.display()
        );
    }
    match trace::first_divergence(&left, &right) {
        None => println!("verdict:  no divergence — the event streams are identical"),
        Some(d) => {
            eprintln!("verdict:  {d}");
            std::process::exit(1);
        }
    }
}

fn export_csvs(
    dir: &std::path::Path,
    instance: &sinr_geom::Instance,
    result: &sinr_connectivity::ConnectivityResult,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    std::fs::create_dir_all(dir)?;

    let mut nodes = String::from("node,x,y\n");
    for (id, p) in instance.iter() {
        let _ = writeln!(nodes, "{id},{},{}", p.x, p.y);
    }
    std::fs::write(dir.join("nodes.csv"), nodes)?;

    let mut links = String::from("sender,receiver,length,slot\n");
    for l in result.tree_links.iter() {
        let _ = writeln!(
            links,
            "{},{},{},{}",
            l.sender,
            l.receiver,
            l.length(instance),
            result
                .aggregation_schedule
                .slot_of(l)
                .map(|s| s.to_string())
                .unwrap_or_default()
        );
    }
    std::fs::write(dir.join("links.csv"), links)?;
    Ok(())
}
