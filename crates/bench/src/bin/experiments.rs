//! Experiment runner: regenerates every quantitative claim of the
//! paper as a set of tables, and writes CSVs next to the text output.
//!
//! ```text
//! cargo run --release -p sinr-bench --bin experiments            # all
//! cargo run --release -p sinr-bench --bin experiments -- e1 e5   # subset
//! cargo run --release -p sinr-bench --bin experiments -- --quick # CI-sized
//! ```

use std::path::PathBuf;

use sinr_bench::experiments::ALL;
use sinr_bench::ExpOptions;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    let wanted: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.parse::<u64>().is_err())
        .collect();

    let opts = ExpOptions { quick, seed };
    let out_dir = PathBuf::from("target/experiments");

    let mut ran = 0;
    for exp in ALL {
        if !wanted.is_empty() && !wanted.iter().any(|w| w.as_str() == exp.id) {
            continue;
        }
        ran += 1;
        println!(
            "\n######## {} — {} ########",
            exp.id.to_uppercase(),
            exp.what
        );
        let start = std::time::Instant::now();
        let tables = (exp.run)(&opts);
        for table in &tables {
            print!("\n{}", table.render());
            match table.save_csv(&out_dir) {
                Ok(path) => println!("  [csv] {}", path.display()),
                Err(e) => eprintln!("  [csv] write failed: {e}"),
            }
        }
        println!("  [time] {:.1}s", start.elapsed().as_secs_f64());
    }

    if ran == 0 {
        eprintln!("no experiment matched; known ids:");
        for exp in ALL {
            eprintln!("  {} — {}", exp.id, exp.what);
        }
        std::process::exit(2);
    }
}
