//! Experiment runner: regenerates every quantitative claim of the
//! paper as a set of tables, and writes CSVs next to the text output.
//!
//! ```text
//! cargo run --release -p sinr-bench --bin experiments            # all
//! cargo run --release -p sinr-bench --bin experiments -- e1 e5   # subset
//! cargo run --release -p sinr-bench --bin experiments -- --quick # CI-sized
//! cargo run --release -p sinr-bench --bin experiments -- --engine naive e11
//! cargo run --release -p sinr-bench --bin experiments -- e12 --json BENCH_E12.json
//! cargo run --release -p sinr-bench --bin experiments -- e1 e7 e8 --seeds 16 --threads 4
//! cargo run --release -p sinr-bench --bin experiments -- e13 --quick --seeds 4 --json target/e13.json
//! cargo run --release -p sinr-bench --bin experiments -- e15 --threads 1 --json BENCH_E15.json
//! ```
//!
//! `--seeds K` sets the ensemble size of the multi-seed experiments
//! (E1–E10 report `mean ±95% CI` over K independent instances; E13
//! runs K churn trials per row, E15 K sustained-churn service traces);
//! `--threads T` sizes the ensemble driver's worker pool, which by the
//! determinism contract (DESIGN.md §9) changes wall-clock only — never
//! an output byte. `--capability` appends the n = 65536 single-slot
//! capability rung to the `--quick` ladders of the scale-out
//! experiments (the CI smoke configuration; full runs always sweep
//! the capability sizes). `--repack full|incremental|distributed`
//! picks the re-packer whose locality columns the dynamic experiments
//! report (E13 runs and parity-checks every mode regardless; the flag
//! selects the reported one). `--fade <sigma_db>` switches every
//! simulated pipeline to the shadowed channel model (fade streams
//! seeded from `--seed`); the default geometric channel reproduces the
//! committed snapshots bit for bit. `--json <path>` additionally writes every executed
//! experiment's tables as one machine-readable JSON document — the
//! format behind the committed `BENCH_*.json` trajectory snapshots.

use std::path::PathBuf;

use sinr_bench::experiments::ALL;
use sinr_bench::table::{experiment_entry_json, experiments_doc_json};
use sinr_bench::{ChannelModel, EngineBackend, ExpOptions, RepackMode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut capability = false;
    let mut seed: u64 = 0xC0FFEE;
    let mut backend = EngineBackend::default();
    let mut fade: Option<f64> = None;
    let mut seeds: u64 = 0;
    let mut threads: usize = 0;
    let mut repack = RepackMode::Incremental;
    let mut json_path: Option<PathBuf> = None;
    let mut wanted: Vec<&String> = Vec::new();

    // One-pass parse so flag *values* are consumed (a bare `naive` in
    // experiment position is an error, not a silently dropped token).
    let mut i = 0;
    let bail = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--capability" => {
                capability = true;
                i += 1;
            }
            "--seed" => {
                let v = args
                    .get(i + 1)
                    .unwrap_or_else(|| bail("missing value for --seed".into()));
                seed = v.parse().unwrap_or_else(|e| bail(format!("--seed: {e}")));
                i += 2;
            }
            "--engine" => {
                let v = args
                    .get(i + 1)
                    .unwrap_or_else(|| bail("missing value for --engine".into()));
                backend = v.parse().unwrap_or_else(|e| bail(e));
                i += 2;
            }
            "--fade" => {
                let v = args
                    .get(i + 1)
                    .unwrap_or_else(|| bail("missing value for --fade".into()));
                let s: f64 = v.parse().unwrap_or_else(|e| bail(format!("--fade: {e}")));
                if !(s.is_finite() && s > 0.0) {
                    bail(format!(
                        "--fade must be a positive shadowing σ in dB, got {s}"
                    ));
                }
                fade = Some(s);
                i += 2;
            }
            "--seeds" => {
                let v = args
                    .get(i + 1)
                    .unwrap_or_else(|| bail("missing value for --seeds".into()));
                seeds = v.parse().unwrap_or_else(|e| bail(format!("--seeds: {e}")));
                if seeds == 0 {
                    bail(
                        "--seeds must be at least 1 (omit the flag for each experiment's \
                         default ensemble size)"
                            .into(),
                    );
                }
                i += 2;
            }
            "--threads" => {
                let v = args
                    .get(i + 1)
                    .unwrap_or_else(|| bail("missing value for --threads".into()));
                threads = v
                    .parse()
                    .unwrap_or_else(|e| bail(format!("--threads: {e}")));
                if threads == 0 {
                    bail(
                        "--threads must be at least 1 (omit the flag to auto-size the pool)".into(),
                    );
                }
                i += 2;
            }
            "--repack" => {
                let v = args
                    .get(i + 1)
                    .unwrap_or_else(|| bail("missing value for --repack".into()));
                repack = v.parse().unwrap_or_else(|e| bail(format!("--repack: {e}")));
                i += 2;
            }
            "--json" => {
                let v = args
                    .get(i + 1)
                    .unwrap_or_else(|| bail("missing value for --json".into()));
                json_path = Some(PathBuf::from(v));
                i += 2;
            }
            flag if flag.starts_with("--") => bail(format!("unknown flag `{flag}`")),
            _ => {
                wanted.push(&args[i]);
                i += 1;
            }
        }
    }
    let channel = match fade {
        Some(sigma) => {
            ChannelModel::shadowed(seed, sigma).unwrap_or_else(|e| bail(format!("--fade: {e}")))
        }
        None => ChannelModel::Geometric,
    };
    let opts = ExpOptions {
        quick,
        seed,
        backend,
        seeds,
        threads,
        capability,
        repack,
        channel,
    };
    let out_dir = PathBuf::from("target/experiments");

    let mut ran = 0;
    let mut json_entries: Vec<String> = Vec::new();
    for exp in ALL {
        if !wanted.is_empty() && !wanted.iter().any(|w| w.as_str() == exp.id) {
            continue;
        }
        ran += 1;
        println!(
            "\n######## {} — {} ########",
            exp.id.to_uppercase(),
            exp.what
        );
        let start = std::time::Instant::now();
        let tables = (exp.run)(&opts);
        for table in &tables {
            print!("\n{}", table.render());
            match table.save_csv(&out_dir) {
                Ok(path) => println!("  [csv] {}", path.display()),
                Err(e) => eprintln!("  [csv] write failed: {e}"),
            }
        }
        let seconds = start.elapsed().as_secs_f64();
        println!("  [time] {seconds:.1}s");
        if json_path.is_some() {
            json_entries.push(experiment_entry_json(exp.id, exp.what, seconds, &tables));
        }
    }

    if ran == 0 {
        // Bail before the JSON write: a typo'd experiment id must not
        // clobber a committed BENCH_*.json snapshot with an empty run.
        eprintln!("no experiment matched; known ids:");
        for exp in ALL {
            eprintln!("  {} — {}", exp.id, exp.what);
        }
        std::process::exit(2);
    }

    if let Some(path) = &json_path {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let doc = experiments_doc_json(
            seed,
            quick,
            backend.label(),
            opts.ensemble_seeds(),
            cores,
            &json_entries,
        );
        match std::fs::write(path, doc) {
            Ok(()) => println!("\n[json] {}", path.display()),
            Err(e) => {
                eprintln!("[json] write failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
