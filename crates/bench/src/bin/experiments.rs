//! Experiment runner: regenerates every quantitative claim of the
//! paper as a set of tables, and writes CSVs next to the text output.
//!
//! ```text
//! cargo run --release -p sinr-bench --bin experiments            # all
//! cargo run --release -p sinr-bench --bin experiments -- e1 e5   # subset
//! cargo run --release -p sinr-bench --bin experiments -- --quick # CI-sized
//! cargo run --release -p sinr-bench --bin experiments -- --engine naive e11
//! ```

use std::path::PathBuf;

use sinr_bench::experiments::ALL;
use sinr_bench::{EngineBackend, ExpOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed: u64 = 0xC0FFEE;
    let mut backend = EngineBackend::default();
    let mut wanted: Vec<&String> = Vec::new();

    // One-pass parse so flag *values* are consumed (a bare `naive` in
    // experiment position is an error, not a silently dropped token).
    let mut i = 0;
    let bail = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--seed" => {
                let v = args
                    .get(i + 1)
                    .unwrap_or_else(|| bail("missing value for --seed".into()));
                seed = v.parse().unwrap_or_else(|e| bail(format!("--seed: {e}")));
                i += 2;
            }
            "--engine" => {
                let v = args
                    .get(i + 1)
                    .unwrap_or_else(|| bail("missing value for --engine".into()));
                backend = v.parse().unwrap_or_else(|e| bail(e));
                i += 2;
            }
            flag if flag.starts_with("--") => bail(format!("unknown flag `{flag}`")),
            _ => {
                wanted.push(&args[i]);
                i += 1;
            }
        }
    }
    let opts = ExpOptions {
        quick,
        seed,
        backend,
    };
    let out_dir = PathBuf::from("target/experiments");

    let mut ran = 0;
    for exp in ALL {
        if !wanted.is_empty() && !wanted.iter().any(|w| w.as_str() == exp.id) {
            continue;
        }
        ran += 1;
        println!(
            "\n######## {} — {} ########",
            exp.id.to_uppercase(),
            exp.what
        );
        let start = std::time::Instant::now();
        let tables = (exp.run)(&opts);
        for table in &tables {
            print!("\n{}", table.render());
            match table.save_csv(&out_dir) {
                Ok(path) => println!("  [csv] {}", path.display()),
                Err(e) => eprintln!("  [csv] write failed: {e}"),
            }
        }
        println!("  [time] {:.1}s", start.elapsed().as_secs_f64());
    }

    if ran == 0 {
        eprintln!("no experiment matched; known ids:");
        for exp in ALL {
            eprintln!("  {} — {}", exp.id, exp.what);
        }
        std::process::exit(2);
    }
}
