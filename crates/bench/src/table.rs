//! Aligned-text tables with CSV export.

use std::fmt::Write as _;
use std::path::Path;

/// A result table: title, expectation note, columns and string rows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    /// Table heading (e.g. `E1a: Init slots vs n`).
    pub title: String,
    /// The paper's expected shape, printed under the heading.
    pub expectation: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (each row must match `columns` in length).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, expectation: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            expectation: expectation.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the column count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {} in table `{}`",
            row.len(),
            self.columns.len(),
            self.title
        );
        self.rows.push(row);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        if !self.expectation.is_empty() {
            let _ = writeln!(out, "   paper: {}", self.expectation);
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "  {}", header.join("  "));
        let rule_len = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "  {}", "-".repeat(rule_len));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "  {}", cells.join("  "));
        }
        out
    }

    /// Renders CSV (header + rows), RFC-4180-style quoting for commas.
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Renders the table as a JSON object (`title`, `expectation`,
    /// `columns`, `rows`), for the machine-readable `BENCH_*.json`
    /// trajectory snapshots. The workspace's serde shim has no JSON
    /// backend, so the emitter lives here: cells are strings already,
    /// which keeps the format trivially stable across toolchains.
    pub fn to_json(&self) -> String {
        let row_json = |row: &[String]| {
            let cells: Vec<String> = row.iter().map(|c| json_string(c)).collect();
            format!("[{}]", cells.join(","))
        };
        format!(
            "{{\"title\":{},\"expectation\":{},\"columns\":{},\"rows\":[{}]}}",
            json_string(&self.title),
            json_string(&self.expectation),
            row_json(&self.columns),
            self.rows
                .iter()
                .map(|r| row_json(r))
                .collect::<Vec<_>>()
                .join(",")
        )
    }

    /// Writes the CSV under `dir`, deriving the file name from the
    /// title (lowercased, non-alphanumerics collapsed to `_`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let mut name: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        while name.contains("__") {
            name = name.replace("__", "_");
        }
        let path = dir.join(format!("{}.csv", name.trim_matches('_')));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// One experiment's entry in the `experiments --json` document:
/// identifier, description, wall-clock, and every table it produced.
pub fn experiment_entry_json(id: &str, what: &str, seconds: f64, tables: &[Table]) -> String {
    format!(
        "{{\"id\":{},\"what\":{},\"seconds\":{seconds:.3},\"tables\":[{}]}}",
        json_string(id),
        json_string(what),
        tables
            .iter()
            .map(|t| t.to_json())
            .collect::<Vec<_>>()
            .join(",")
    )
}

/// The full `experiments --json` document wrapping
/// [`experiment_entry_json`] entries: run configuration (`seed`,
/// `quick`, `engine`, the resolved ensemble size `seeds`), the host's
/// core count, and the experiments array.
///
/// The worker-thread count is **deliberately absent**: the ensemble
/// driver's ordered merge and canonical statistics make every output
/// byte independent of it (DESIGN.md §9), and the snapshot format must
/// not leak a value the determinism gates promise has no observable
/// effect. (`seconds` inside each entry and `cores` are the *measured*
/// host facts a perf-trajectory snapshot exists to record.)
pub fn experiments_doc_json(
    seed: u64,
    quick: bool,
    engine: &str,
    seeds: u64,
    cores: usize,
    entries: &[String],
) -> String {
    format!(
        "{{\"seed\":{seed},\"quick\":{quick},\"engine\":{},\"seeds\":{seeds},\"cores\":{cores},\
         \"experiments\":[{}]}}\n",
        json_string(engine),
        entries.join(",")
    )
}

/// Escapes a string as a JSON string literal (RFC 8259: quote,
/// backslash and control characters; everything else passes through as
/// UTF-8).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float with 2 decimals for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("E0: demo", "x grows", &["n", "value"]);
        t.push_row(vec!["32".into(), "1.50".into()]);
        t.push_row(vec!["64".into(), "2.25".into()]);
        t
    }

    #[test]
    fn render_contains_everything() {
        let r = sample().render();
        assert!(r.contains("E0: demo"));
        assert!(r.contains("x grows"));
        assert!(r.contains("value"));
        assert!(r.contains("2.25"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", "", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new("t", "", &["a,b", "c"]);
        t.push_row(vec!["x\"y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"a,b\",c"));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    fn save_csv_roundtrip() {
        let dir = std::env::temp_dir().join("sinr_bench_table_test");
        let path = sample().save_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("1.50"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn json_rendering_escapes() {
        let mut t = Table::new("t \"q\"", "exp\n2", &["a", "b"]);
        t.push_row(vec!["x\\y".into(), "1.50".into()]);
        let j = t.to_json();
        assert!(j.contains("\"t \\\"q\\\"\""));
        assert!(j.contains("\"exp\\n2\""));
        assert!(j.contains("[\"x\\\\y\",\"1.50\"]"));
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn float_formats() {
        assert_eq!(f2(1.0 / 3.0), "0.33");
        assert_eq!(f3(2.0), "2.000");
    }
}
