//! The self-healing service loop: a discrete-event driver feeding
//! sustained Poisson fault/join traffic through the full
//! detect → repair → re-pack pipeline (DESIGN.md §13).
//!
//! The dynamic layers built so far each ran one shot: inject a batch,
//! recover, stop. A deployed network instead *serves* — faults arrive
//! continuously, recoveries take time, and arrivals during a recovery
//! queue up behind it. This module closes that loop:
//!
//! - [`PlanQueue`] is the time-ordered plan queue (after the
//!   discrete-event schedulers of agent-based simulation frameworks): a
//!   binary heap ordered by `(time, insertion id)` with O(1) tombstone
//!   **cancellation**, so a scheduled plan — here the batch-close
//!   timeout — can be revoked when an earlier trigger supersedes it.
//! - [`serve`] drives a Poisson arrival trace through the loop:
//!   arrivals coalesce into batches (explicit **backpressure** — a
//!   batch closes after [`ServeConfig::batch_window`] slots, or
//!   immediately at [`ServeConfig::max_batch`] arrivals, which cancels
//!   the window timer), each fault batch runs the timeout detector
//!   ([`detect_failures`]) whose suspect set is the exact kill-set
//!   [`repair_after_failures`] consumes, joins attach via
//!   [`join_nodes`], and every recovery is audited end to end
//!   (bidirectional schedule feasibility + the Definition 1 delivery
//!   replay) before the loop accepts the next batch.
//!
//! **Victim eligibility.** Crash victims are drawn uniformly from the
//! *detectable* population: non-root nodes with at least one child,
//! tree-independent within a batch (no victim is another's parent).
//! This keeps the loop honestly self-healing — a crashed leaf is
//! invisible to the beacon-timeout detector (its parent expects no
//! beacon from it; DESIGN.md §13 records the blind spot), so leaf
//! crashes would sit as undetected ghosts rather than exercise the
//! recovery path this experiment measures.
//!
//! **Determinism.** Arrival gaps, event kinds, victims and join points
//! all derive from SplitMix64 streams split off the single serve seed
//! ([`faults::stream_seed`]); the engine-backed detector is
//! byte-identical across backends and thread counts. Every field of
//! [`ServeReport`] except the measured [`ServeReport::wall_seconds`]
//! is therefore reproducible bit for bit —
//! [`ServeReport::fingerprint`] renders exactly the deterministic
//! subset, and the `fault_` gates in `tests/determinism.rs` pin it.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use sinr_connectivity::join::join_nodes;
use sinr_connectivity::latency::audit_bitree;
use sinr_connectivity::repair::{repair_after_failures, PriorStructure};
use sinr_connectivity::selector::MeanSamplingSelector;
use sinr_connectivity::tvc::TvcConfig;
use sinr_connectivity::{detect_failures, DetectConfig, RepackMode};
use sinr_geom::{Instance, NodeId};
use sinr_links::{InTree, Link, Schedule};
use sinr_phy::{feasibility, SinrParams};
use sinr_sim::faults::{self, FaultPlan};
use sinr_sim::FaultEvent;

use crate::experiments::e13_churn::{base_structure, sample_join_points};

/// Handle to a scheduled plan, usable for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanId(u64);

/// Heap entry: fire time plus the insertion id as a deterministic
/// tie-breaker (FIFO among equal times).
#[derive(Debug)]
struct Entry {
    time: f64,
    id: u64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the binary max-heap then pops smallest time first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.id.cmp(&self.id))
    }
}

/// A time-ordered plan queue with cancellation.
///
/// Plans fire in `(time, insertion order)` order — `f64` times compared
/// by `total_cmp`, so ordering is deterministic for every finite input.
/// [`cancel`](PlanQueue::cancel) is O(1): the payload is removed from
/// the side table and the heap entry becomes a tombstone that
/// [`pop`](PlanQueue::pop) silently skips.
#[derive(Debug, Default)]
pub struct PlanQueue<T> {
    heap: BinaryHeap<Entry>,
    plans: HashMap<u64, T>,
    next_id: u64,
}

impl<T> PlanQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        PlanQueue {
            heap: BinaryHeap::new(),
            plans: HashMap::new(),
            next_id: 0,
        }
    }

    /// Schedules `plan` at `time` (must be finite) and returns its
    /// cancellation handle.
    pub fn add_plan(&mut self, time: f64, plan: T) -> PlanId {
        assert!(time.is_finite(), "plan time must be finite, got {time}");
        let id = self.next_id;
        self.next_id += 1;
        self.heap.push(Entry { time, id });
        self.plans.insert(id, plan);
        PlanId(id)
    }

    /// Cancels a scheduled plan, returning its payload — or `None` if
    /// it already fired or was already cancelled.
    pub fn cancel(&mut self, id: PlanId) -> Option<T> {
        self.plans.remove(&id.0)
    }

    /// Pops the earliest live plan as `(time, payload)`, skipping
    /// cancelled tombstones.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        while let Some(entry) = self.heap.pop() {
            if let Some(plan) = self.plans.remove(&entry.id) {
                return Some((entry.time, plan));
            }
        }
        None
    }

    /// Number of live (not cancelled, not yet fired) plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether no live plan remains.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

/// What arrives on the trace, or fires internally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Plan {
    /// Trace arrival `index` of the given kind.
    Arrival { index: u64, kind: EventKind },
    /// The batch-window timeout: close and process the forming batch.
    BatchClose,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EventKind {
    Fault,
    Join,
}

/// Configuration of one [`serve`] run.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Expected crash arrivals per 1000 slots (Poisson rate).
    pub fault_rate: f64,
    /// Expected join arrivals per 1000 slots (Poisson rate).
    pub join_rate: f64,
    /// Total arrivals to serve before the loop drains and stops.
    pub events: usize,
    /// Slots a forming batch stays open after its first arrival.
    pub batch_window: f64,
    /// Arrivals that close a batch early (cancelling the window timer).
    pub max_batch: usize,
    /// The timeout detector's knobs (threshold, backoff, horizon,
    /// engine backend).
    pub detect: DetectConfig,
    /// Re-packer mode for repairs and joins.
    pub repack: RepackMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            fault_rate: 5.0,
            join_rate: 1.0,
            events: 16,
            batch_window: 32.0,
            max_batch: 4,
            // Declare after 2 missed probes with one backoff cycle:
            // ~3–4 heartbeat cycles from crash to declaration, well
            // inside the 8-cycle horizon even for arrivals late in the
            // batch window.
            detect: DetectConfig {
                miss_threshold: 2,
                max_backoff_exp: 1,
                max_rounds: 8,
                ..DetectConfig::default()
            },
            repack: RepackMode::Incremental,
        }
    }
}

/// What one [`serve`] run measured.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Arrivals served (always the configured count).
    pub events: usize,
    /// How many of them were crash faults.
    pub faults: usize,
    /// How many were joins.
    pub joins: usize,
    /// Faults skipped because no eligible victim remained (0 at any
    /// realistic size; reported so a starved run is visible).
    pub skipped_faults: usize,
    /// Recovery batches processed.
    pub batches: usize,
    /// Batch closes forced early by [`ServeConfig::max_batch`] — each
    /// one cancelled a pending window-timeout plan.
    pub cancelled_closes: usize,
    /// Per victim: crash slot → declaration slot, in slots.
    pub detection_slots: Vec<f64>,
    /// Per victim: crash slot → structure repaired and audited, in
    /// slots (queueing wait + detection + distributed repair).
    pub recovery_slots: Vec<f64>,
    /// Per arrival: slots spent queued behind an in-progress recovery
    /// or an open batch window before its batch closed.
    pub wait_slots: Vec<f64>,
    /// Most arrivals that waited behind one recovery (backpressure
    /// depth).
    pub queue_peak: usize,
    /// End-to-end delivery audits run (one per batch; every one
    /// passed, or [`serve`] would have returned an error).
    pub audits: usize,
    /// Node count after the final recovery.
    pub final_n: usize,
    /// Model time (slots) when the last recovery completed.
    pub horizon: f64,
    /// Measured wall-clock of the whole loop — the one
    /// non-deterministic field, excluded from
    /// [`fingerprint`](ServeReport::fingerprint).
    pub wall_seconds: f64,
}

impl ServeReport {
    /// Served events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_seconds.max(1e-12)
    }

    /// Canonical byte rendering of every deterministic field (exact
    /// `f64` bits for the latency vectors) — what the determinism
    /// gates compare across backends and repeated runs.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "events={} faults={} joins={} skipped={} batches={} cancelled={} \
             queue_peak={} audits={} final_n={} horizon={:016x}",
            self.events,
            self.faults,
            self.joins,
            self.skipped_faults,
            self.batches,
            self.cancelled_closes,
            self.queue_peak,
            self.audits,
            self.final_n,
            self.horizon.to_bits(),
        );
        for (label, xs) in [
            ("det", &self.detection_slots),
            ("rec", &self.recovery_slots),
            ("wait", &self.wait_slots),
        ] {
            let _ = write!(out, "{label}:");
            for x in xs {
                let _ = write!(out, " {:016x}", x.to_bits());
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Domain-separation tags for the serve loop's SplitMix64 streams.
const TAG_GAP: u64 = 0x5EED_1001;
const TAG_KIND: u64 = 0x5EED_1002;
const TAG_VICTIM: u64 = 0x5EED_1003;
const TAG_REPAIR: u64 = 0x5EED_1004;
const TAG_JOIN: u64 = 0x5EED_1005;
const TAG_POINTS: u64 = 0x5EED_1006;

/// The live structure the loop churns.
struct State {
    inst: Instance,
    tree: InTree,
    powers: HashMap<Link, f64>,
    schedule: Schedule,
}

impl State {
    fn parents(&self) -> Vec<Option<NodeId>> {
        (0..self.tree.len()).map(|u| self.tree.parent(u)).collect()
    }
}

/// Runs the self-healing service loop over `inst` and returns the
/// measurements.
///
/// # Errors
///
/// Returns a message on invalid configuration (non-positive or
/// non-finite rates/window, zero events or batch size), on a pipeline
/// error, or if any recovery fails its end-to-end audit.
pub fn serve(
    params: &SinrParams,
    inst: &Instance,
    cfg: &ServeConfig,
    seed: u64,
) -> Result<ServeReport, String> {
    if cfg.events == 0 {
        return Err("serve: events must be at least 1".into());
    }
    if cfg.max_batch == 0 {
        return Err("serve: max_batch must be at least 1".into());
    }
    if !(cfg.batch_window.is_finite() && cfg.batch_window > 0.0) {
        return Err(format!(
            "serve: batch_window must be positive and finite, got {}",
            cfg.batch_window
        ));
    }
    for (name, rate) in [("fault_rate", cfg.fault_rate), ("join_rate", cfg.join_rate)] {
        if !(rate.is_finite() && rate >= 0.0) {
            return Err(format!(
                "serve: {name} must be finite and non-negative, got {rate}"
            ));
        }
    }
    let total_rate = cfg.fault_rate + cfg.join_rate;
    if total_rate <= 0.0 {
        return Err("serve: fault_rate + join_rate must be positive".into());
    }
    if inst.len() < 8 {
        return Err(format!(
            "serve: the loop needs at least 8 nodes, got {}",
            inst.len()
        ));
    }

    let start = std::time::Instant::now();
    let (parents, powers, schedule) = base_structure(params, inst);
    let tree = InTree::from_parents(parents).expect("base structure is a valid in-tree");
    let mut state = State {
        inst: inst.clone(),
        tree,
        powers,
        schedule,
    };

    // The Poisson trace: exponential gaps at the combined rate, each
    // arrival's kind drawn by the rates' mixture weights.
    let per_slot = total_rate / 1000.0;
    let fault_share = cfg.fault_rate / total_rate;
    let mut queue: PlanQueue<Plan> = PlanQueue::new();
    let mut t = 0.0f64;
    for i in 0..cfg.events as u64 {
        let gap_u = faults::unit_f64(faults::stream_seed(seed ^ TAG_GAP, i));
        t += -(1.0 - gap_u).ln() / per_slot;
        let kind = if faults::unit_f64(faults::stream_seed(seed ^ TAG_KIND, i)) < fault_share {
            EventKind::Fault
        } else {
            EventKind::Join
        };
        queue.add_plan(t, Plan::Arrival { index: i, kind });
    }

    let mut report = ServeReport {
        events: cfg.events,
        faults: 0,
        joins: 0,
        skipped_faults: 0,
        batches: 0,
        cancelled_closes: 0,
        detection_slots: Vec::new(),
        recovery_slots: Vec::new(),
        wait_slots: Vec::new(),
        queue_peak: 0,
        audits: 0,
        final_n: state.inst.len(),
        horizon: 0.0,
        wall_seconds: 0.0,
    };

    // The forming batch: (event index, kind, effective arrival time).
    let mut batch: Vec<(u64, EventKind, f64)> = Vec::new();
    let mut close_plan: Option<PlanId> = None;
    let mut busy_until = 0.0f64;
    let mut waiting_now = 0usize;

    while let Some((when, plan)) = queue.pop() {
        match plan {
            Plan::Arrival { index, kind } => {
                // Backpressure: an arrival during a recovery (or an
                // open window) queues until the structure is free.
                let effective = when.max(busy_until);
                if when < busy_until {
                    waiting_now += 1;
                    report.queue_peak = report.queue_peak.max(waiting_now);
                }
                if batch.is_empty() {
                    close_plan =
                        Some(queue.add_plan(effective + cfg.batch_window, Plan::BatchClose));
                }
                batch.push((index, kind, effective));
                if batch.len() >= cfg.max_batch {
                    let id = close_plan.take().expect("a forming batch has a close plan");
                    queue
                        .cancel(id)
                        .expect("the close plan of a forming batch is live");
                    report.cancelled_closes += 1;
                    let fired_at = batch.last().expect("batch is non-empty").2;
                    busy_until = process_batch(
                        params,
                        cfg,
                        seed,
                        &mut state,
                        &mut batch,
                        fired_at,
                        &mut report,
                    )?;
                    waiting_now = 0;
                }
            }
            Plan::BatchClose => {
                close_plan = None;
                busy_until =
                    process_batch(params, cfg, seed, &mut state, &mut batch, when, &mut report)?;
                waiting_now = 0;
            }
        }
    }
    assert!(batch.is_empty(), "the close plan drains the final batch");

    report.final_n = state.inst.len();
    report.horizon = busy_until;
    report.wall_seconds = start.elapsed().as_secs_f64();
    Ok(report)
}

/// Closes one batch at model time `now`: inject the batch's crashes
/// into the timeout detector, repair from its suspect set, attach the
/// batch's joins, audit the result end to end, and advance the state.
/// Returns the model time at which the recovery completes.
fn process_batch(
    params: &SinrParams,
    cfg: &ServeConfig,
    seed: u64,
    state: &mut State,
    batch: &mut Vec<(u64, EventKind, f64)>,
    now: f64,
    report: &mut ServeReport,
) -> Result<f64, String> {
    let events = std::mem::take(batch);
    assert!(!events.is_empty(), "a batch close implies a forming batch");
    report.batches += 1;
    let batch_start = events.first().expect("non-empty").2;
    for &(_, _, arrived) in &events {
        report.wait_slots.push(now - arrived);
    }

    // Draw the batch's victims: uniform over detectable (non-root,
    // non-leaf) nodes, tree-independent within the batch so every
    // crash has a surviving child to declare it and a surviving parent
    // to reattach under.
    let eligible: Vec<NodeId> = (0..state.tree.len())
        .filter(|&u| u != state.tree.root() && !state.tree.children(u).is_empty())
        .collect();
    // (victim, crash slot relative to the batch's first arrival).
    let mut victims: Vec<(NodeId, u64)> = Vec::new();
    let mut join_events: Vec<u64> = Vec::new();
    for &(index, kind, arrived) in &events {
        match kind {
            EventKind::Join => join_events.push(index),
            EventKind::Fault => {
                let mut at = (faults::stream_seed(seed ^ TAG_VICTIM, index) % eligible.len() as u64)
                    as usize;
                let mut chosen = None;
                for _ in 0..eligible.len() {
                    let cand = eligible[at];
                    let independent = victims.iter().all(|&(v, _)| {
                        v != cand
                            && state.tree.parent(cand) != Some(v)
                            && state.tree.parent(v) != Some(cand)
                    });
                    if independent {
                        chosen = Some(cand);
                        break;
                    }
                    at = (at + 1) % eligible.len();
                }
                match chosen {
                    Some(v) => victims.push((v, (arrived - batch_start).floor() as u64)),
                    None => report.skipped_faults += 1,
                }
            }
        }
    }
    // Skipped faults still count as served fault arrivals.
    report.faults += events
        .iter()
        .filter(|(_, k, _)| *k == EventKind::Fault)
        .count();
    report.joins += join_events.len();

    let mut service_slots = 0u64;

    // Phase 1: detection + repair of the batch's crashes.
    if !victims.is_empty() {
        let mut plan = FaultPlan::new(
            state.inst.len(),
            faults::stream_seed(seed, report.batches as u64),
        );
        for &(v, at) in &victims {
            plan.push(v, FaultEvent::CrashStop { at });
        }
        let parents = state.parents();
        let prior = PriorStructure {
            parents: &parents,
            powers: &state.powers,
            schedule: &state.schedule,
        };
        let detection = detect_failures(params, &state.inst, &prior, &plan, &cfg.detect, seed)
            .map_err(|e| format!("serve: detection failed: {e}"))?;

        // Coverage must be exact: every injected crash declared, no
        // false positives (the trace injects no reception faults).
        let mut expected: Vec<NodeId> = victims.iter().map(|&(v, _)| v).collect();
        expected.sort_unstable();
        if detection.suspects != expected {
            return Err(format!(
                "serve: detector coverage broke — injected {expected:?}, suspected {:?}",
                detection.suspects
            ));
        }
        let mut last_declared = 0u64;
        for &(v, at) in &victims {
            let declared = detection
                .detections
                .iter()
                .filter(|d| d.suspect == v)
                .map(|d| d.slot)
                .min()
                .expect("coverage checked above");
            report.detection_slots.push((declared - at) as f64);
            last_declared = last_declared.max(declared);
        }
        // The detection phase occupies the loop until the last
        // declaration plus one heartbeat cycle (the reporting beat).
        let detect_slots = last_declared + detection.cycle_slots;

        let mut sel = MeanSamplingSelector::default();
        let repaired = repair_after_failures(
            params,
            &state.inst,
            &prior,
            &detection.suspects,
            &TvcConfig {
                repack: cfg.repack,
                ..TvcConfig::default()
            },
            &mut sel,
            faults::stream_seed(seed ^ TAG_REPAIR, report.batches as u64),
        )
        .map_err(|e| format!("serve: repair failed: {e}"))?;
        service_slots += detect_slots + repaired.runtime_slots;
        for &(_, at) in &victims {
            // Crash → recovered: queueing until the batch closed, then
            // the shared detection + repair service time.
            report.recovery_slots.push(
                (now - (batch_start + at as f64)) + (detect_slots + repaired.runtime_slots) as f64,
            );
        }
        audit(
            params,
            &repaired.instance,
            &repaired.schedule,
            &repaired.bitree,
            &repaired.power,
        )?;
        report.audits += 1;
        #[cfg(feature = "trace")]
        sinr_sim::trace::emit(sinr_sim::trace::TraceEvent::RecoveryComplete {
            index: (report.batches - 1) as u64,
            batch: victims.len(),
            detection_slots: detect_slots,
            repair_slots: repaired.runtime_slots,
        });
        state.inst = repaired.instance;
        state.tree = repaired.tree;
        state.powers = repaired
            .power
            .as_explicit()
            .expect("repair assigns explicit powers")
            .clone();
        state.schedule = repaired.schedule;
    }

    // Phase 2: the batch's joins attach to the repaired structure.
    if !join_events.is_empty() {
        let points = sample_join_points(
            &state.inst,
            join_events.len(),
            faults::stream_seed(seed ^ TAG_POINTS, report.batches as u64),
        );
        let parents = state.parents();
        let prior = PriorStructure {
            parents: &parents,
            powers: &state.powers,
            schedule: &state.schedule,
        };
        let mut sel = MeanSamplingSelector::default();
        let joined = join_nodes(
            params,
            &state.inst,
            &prior,
            &points,
            &TvcConfig {
                repack: cfg.repack,
                ..TvcConfig::default()
            },
            &mut sel,
            faults::stream_seed(seed ^ TAG_JOIN, report.batches as u64),
        )
        .map_err(|e| format!("serve: join failed: {e}"))?;
        service_slots += joined.runtime_slots;
        audit(
            params,
            &joined.instance,
            &joined.schedule,
            &joined.bitree,
            &joined.power,
        )?;
        report.audits += 1;
        state.inst = joined.instance;
        state.tree = joined.tree;
        state.powers = joined
            .power
            .as_explicit()
            .expect("join assigns explicit powers")
            .clone();
        state.schedule = joined.schedule;
    }

    Ok(now + service_slots as f64)
}

/// The per-recovery audit: both schedule directions SINR-feasible and
/// the Definition 1 delivery replay clean.
fn audit(
    params: &SinrParams,
    inst: &Instance,
    schedule: &Schedule,
    bitree: &sinr_links::BiTree,
    power: &sinr_phy::PowerAssignment,
) -> Result<(), String> {
    feasibility::validate_schedule(params, inst, schedule, power)
        .map_err(|e| format!("serve: post-recovery aggregation infeasible: {e}"))?;
    let dual = schedule
        .map_links(Link::dual)
        .map_err(|e| format!("serve: tree links lack distinct duals: {e}"))?;
    feasibility::validate_schedule(params, inst, &dual, power)
        .map_err(|e| format!("serve: post-recovery dissemination infeasible: {e}"))?;
    let (up, down) = audit_bitree(params, inst, bitree, power)
        .map_err(|e| format!("serve: delivery audit errored: {e}"))?;
    if !(up.all_delivered && down.all_reached) {
        return Err("serve: post-recovery delivery audit failed".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Family;

    #[test]
    fn plan_queue_orders_by_time_then_insertion() {
        let mut q: PlanQueue<&str> = PlanQueue::new();
        q.add_plan(5.0, "c");
        q.add_plan(1.0, "a");
        q.add_plan(5.0, "d"); // same time as "c": FIFO by insertion
        q.add_plan(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, ["a", "b", "c", "d"]);
        assert!(q.is_empty());
    }

    #[test]
    fn plan_queue_cancellation_is_a_tombstone() {
        let mut q: PlanQueue<u32> = PlanQueue::new();
        let a = q.add_plan(1.0, 10);
        let b = q.add_plan(2.0, 20);
        q.add_plan(3.0, 30);
        assert_eq!(q.len(), 3);
        assert_eq!(q.cancel(b), Some(20));
        assert_eq!(q.cancel(b), None, "double cancel is a no-op");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((1.0, 10)));
        // The cancelled entry is skipped, not returned.
        assert_eq!(q.pop(), Some((3.0, 30)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.cancel(a), None, "cancelling after firing is a no-op");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn plan_queue_rejects_non_finite_times() {
        PlanQueue::new().add_plan(f64::NAN, 0u8);
    }

    fn quick_cfg(events: usize) -> ServeConfig {
        ServeConfig {
            events,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serve_rejects_hostile_configs() {
        let params = SinrParams::default();
        let inst = Family::UniformSquare.instance(64, 3);
        for cfg in [
            ServeConfig {
                events: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                batch_window: 0.0,
                ..ServeConfig::default()
            },
            ServeConfig {
                batch_window: f64::INFINITY,
                ..ServeConfig::default()
            },
            ServeConfig {
                fault_rate: -1.0,
                ..ServeConfig::default()
            },
            ServeConfig {
                join_rate: f64::NAN,
                ..ServeConfig::default()
            },
            ServeConfig {
                fault_rate: 0.0,
                join_rate: 0.0,
                ..ServeConfig::default()
            },
        ] {
            assert!(serve(&params, &inst, &cfg, 1).is_err(), "{cfg:?}");
        }
    }

    #[test]
    fn serve_processes_every_event_and_audits_every_recovery() {
        let params = SinrParams::default();
        let inst = Family::UniformSquare.instance(96, 7);
        let rep = serve(&params, &inst, &quick_cfg(6), 11).unwrap();
        assert_eq!(rep.events, 6);
        assert_eq!(rep.faults + rep.joins, 6);
        assert_eq!(rep.skipped_faults, 0);
        assert!(rep.batches >= 1);
        assert!(rep.audits >= rep.batches);
        assert_eq!(rep.detection_slots.len() + rep.skipped_faults, rep.faults);
        assert_eq!(rep.recovery_slots.len(), rep.detection_slots.len());
        assert_eq!(rep.wait_slots.len(), 6);
        assert!(rep.horizon > 0.0);
        // Detection can't be instant, and recovery includes it.
        for (&d, &r) in rep.detection_slots.iter().zip(&rep.recovery_slots) {
            assert!(d > 0.0);
            assert!(r >= d);
        }
    }

    #[test]
    fn serve_is_deterministic_and_backend_invariant() {
        let params = SinrParams::default();
        let inst = Family::UniformSquare.instance(96, 5);
        let cfg = quick_cfg(5);
        let a = serve(&params, &inst, &cfg, 23).unwrap();
        let b = serve(&params, &inst, &cfg, 23).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint(), "repeated run diverged");
        let naive = ServeConfig {
            detect: DetectConfig {
                engine: sinr_connectivity::EngineOptions::with_backend(
                    sinr_connectivity::EngineBackend::Naive,
                ),
                ..cfg.detect
            },
            ..cfg
        };
        let c = serve(&params, &inst, &naive, 23).unwrap();
        assert_eq!(a.fingerprint(), c.fingerprint(), "naive detector diverged");
        // A different seed genuinely changes the trace.
        let d = serve(&params, &inst, &cfg, 24).unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }
}
