//! Instance families used by the experiments.

use sinr_geom::{gen, Instance};

/// The instance families the experiments sweep over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Uniform in a density-preserving square.
    UniformSquare,
    /// Thomas-process clusters (sensor-style deployments).
    Clustered,
    /// Jittered unit lattice.
    Lattice,
    /// Near-line with exponentially growing gaps (large `Δ`).
    ExponentialChain,
}

impl Family {
    /// All families.
    pub const ALL: [Family; 4] = [
        Family::UniformSquare,
        Family::Clustered,
        Family::Lattice,
        Family::ExponentialChain,
    ];

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Family::UniformSquare => "uniform",
            Family::Clustered => "clustered",
            Family::Lattice => "lattice",
            Family::ExponentialChain => "exp-chain",
        }
    }

    /// The inverse of [`label`](Self::label) — the parse used by the
    /// `connect` CLI and the snapshot-file loader.
    pub fn from_label(label: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.label() == label)
    }

    /// Builds an instance of roughly `n` nodes with the given seed.
    ///
    /// # Panics
    ///
    /// Panics on generator errors (the parameters used here are always
    /// valid for `n ≥ 1`).
    pub fn instance(&self, n: usize, seed: u64) -> Instance {
        match self {
            Family::UniformSquare => gen::uniform_square(n, 1.5, seed).expect("valid parameters"),
            Family::Clustered => {
                let clusters = (n / 8).max(1);
                let per = n.div_ceil(clusters);
                gen::clustered(clusters, per, 1.5, 2.0, seed).expect("valid parameters")
            }
            Family::Lattice => {
                let side = (n as f64).sqrt().ceil() as usize;
                gen::grid_lattice(side, side, 0.25, seed).expect("valid parameters")
            }
            Family::ExponentialChain => {
                // Growth tuned so Δ stays within f64 for the sizes used.
                let growth = 1.0 + 16.0 / (n.max(8) as f64);
                gen::exponential_chain(n, growth, seed).expect("valid parameters")
            }
        }
    }
}

/// Exponential-chain instances with a fixed node count and a swept
/// aspect ratio, for experiments that isolate the `log Δ` dependence.
/// Returns `(growth, instance)` pairs.
pub fn delta_sweep(n: usize, seed: u64) -> Vec<(f64, Instance)> {
    [1.2, 1.5, 2.0, 2.8]
        .into_iter()
        .map(|g| {
            (
                g,
                gen::exponential_chain(n, g, seed).expect("valid parameters"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_build() {
        for fam in Family::ALL {
            let inst = fam.instance(40, 1);
            assert!(inst.len() >= 40, "{fam:?} built only {} nodes", inst.len());
            assert!(inst.is_normalized());
            assert!(!fam.label().is_empty());
        }
    }

    #[test]
    fn delta_sweep_increases_delta() {
        let sweep = delta_sweep(20, 0);
        for w in sweep.windows(2) {
            assert!(w[1].1.delta() > w[0].1.delta());
        }
    }

    #[test]
    fn deterministic() {
        for fam in Family::ALL {
            assert_eq!(fam.instance(30, 7), fam.instance(30, 7));
        }
    }
}
