//! Instance families used by the experiments.

use sinr_geom::{gen, Instance};

/// The instance families the experiments sweep over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Uniform in a density-preserving square.
    UniformSquare,
    /// Thomas-process clusters (sensor-style deployments).
    Clustered,
    /// Jittered unit lattice.
    Lattice,
    /// Near-line with exponentially growing gaps (large `Δ`).
    ExponentialChain,
    /// Backbone hubs with tight member clusters — two length scales,
    /// so the init power ladder splits into heterogeneous per-node
    /// power classes (short member links vs. long hub–hub links).
    TwoTier,
    /// Bernoulli-occupied jittered lattice at occupancy 0.65, just
    /// above the 2D site-percolation threshold (≈ 0.5927); the density
    /// ladder of [`percolation_ladder`] sweeps through it.
    Percolation,
}

impl Family {
    /// All families.
    pub const ALL: [Family; 6] = [
        Family::UniformSquare,
        Family::Clustered,
        Family::Lattice,
        Family::ExponentialChain,
        Family::TwoTier,
        Family::Percolation,
    ];

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Family::UniformSquare => "uniform",
            Family::Clustered => "clustered",
            Family::Lattice => "lattice",
            Family::ExponentialChain => "exp-chain",
            Family::TwoTier => "two-tier",
            Family::Percolation => "percolation",
        }
    }

    /// The inverse of [`label`](Self::label) — the parse used by the
    /// `connect` CLI and the snapshot-file loader.
    pub fn from_label(label: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.label() == label)
    }

    /// Builds an instance of roughly `n` nodes with the given seed.
    ///
    /// # Panics
    ///
    /// Panics on generator errors (the parameters used here are always
    /// valid for `n ≥ 1`).
    pub fn instance(&self, n: usize, seed: u64) -> Instance {
        match self {
            Family::UniformSquare => gen::uniform_square(n, 1.5, seed).expect("valid parameters"),
            Family::Clustered => {
                let clusters = (n / 8).max(1);
                let per = n.div_ceil(clusters);
                gen::clustered(clusters, per, 1.5, 2.0, seed).expect("valid parameters")
            }
            Family::Lattice => {
                let side = (n as f64).sqrt().ceil() as usize;
                gen::grid_lattice(side, side, 0.25, seed).expect("valid parameters")
            }
            Family::ExponentialChain => {
                // Growth tuned so Δ stays within f64 for the sizes used.
                let growth = 1.0 + 16.0 / (n.max(8) as f64);
                gen::exponential_chain(n, growth, seed).expect("valid parameters")
            }
            Family::TwoTier => {
                let hubs = n.div_ceil(8);
                gen::two_tier(hubs, 7, 1.0, 8.0, seed).expect("valid parameters")
            }
            Family::Percolation => {
                // Side chosen so the expected survivor count is ≈ n at
                // occupancy 0.65 (the actual count is random).
                let side = ((n as f64) / 0.65).sqrt().ceil() as usize;
                gen::percolation(side, side, 0.65, 0.25, seed).expect("valid parameters")
            }
        }
    }
}

/// The site-percolation density ladder: instances of expected size `n`
/// at occupancies stepping through the 2D site-percolation threshold
/// (≈ 0.5927). Returns `(occupancy, instance)` pairs.
pub fn percolation_ladder(n: usize, seed: u64) -> Vec<(f64, Instance)> {
    [0.45, 0.55, 0.5927, 0.65, 0.8]
        .into_iter()
        .map(|occ| {
            let side = ((n as f64) / occ).sqrt().ceil() as usize;
            (
                occ,
                gen::percolation(side, side, occ, 0.25, seed).expect("valid parameters"),
            )
        })
        .collect()
}

/// Exponential-chain instances with a fixed node count and a swept
/// aspect ratio, for experiments that isolate the `log Δ` dependence.
/// Returns `(growth, instance)` pairs.
pub fn delta_sweep(n: usize, seed: u64) -> Vec<(f64, Instance)> {
    [1.2, 1.5, 2.0, 2.8]
        .into_iter()
        .map(|g| {
            (
                g,
                gen::exponential_chain(n, g, seed).expect("valid parameters"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_build() {
        for fam in Family::ALL {
            let inst = fam.instance(40, 1);
            // Percolation keeps a Bernoulli subset of the lattice, so
            // its count is only close to `n` in expectation.
            let floor = if fam == Family::Percolation { 20 } else { 40 };
            assert!(
                inst.len() >= floor,
                "{fam:?} built only {} nodes",
                inst.len()
            );
            assert!(inst.is_normalized());
            assert!(!fam.label().is_empty());
            assert_eq!(Family::from_label(fam.label()), Some(fam));
        }
    }

    #[test]
    fn percolation_ladder_density_increases() {
        let ladder = percolation_ladder(60, 2);
        assert_eq!(ladder.len(), 5);
        for w in ladder.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn delta_sweep_increases_delta() {
        let sweep = delta_sweep(20, 0);
        for w in sweep.windows(2) {
            assert!(w[1].1.delta() > w[0].1.delta());
        }
    }

    #[test]
    fn deterministic() {
        for fam in Family::ALL {
            assert_eq!(fam.instance(30, 7), fam.instance(30, 7));
        }
    }
}
