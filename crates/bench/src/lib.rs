//! Experiment harness regenerating every quantitative claim of the
//! PODC 2012 connectivity paper.
//!
//! The paper is pure theory — its "evaluation" is a set of theorem
//! bounds. Each experiment module measures one of them and prints a
//! table whose *shape* (growth rate, who wins, by what factor) can be
//! compared against the claim; `EXPERIMENTS.md` records the outcomes.
//!
//! | Module | Claim |
//! |--------|-------|
//! | [`experiments::e1_init`] | Thm 2: `Init` uses `O(log Δ · log n)` slots |
//! | [`experiments::e2_degree`] | Thm 7: exponential degree tail, max `O(log n)` |
//! | [`experiments::e3_sparsity`] | Thm 11/13: `O(log n)`- and `O(1)`-sparsity |
//! | [`experiments::e4_reschedule`] | Thm 3: mean-power rescheduling |
//! | [`experiments::e5_tvc_mean`] | Thm 16: `O(Υ·log n)`-slot bi-trees |
//! | [`experiments::e6_tvc_arbitrary`] | Thm 21: `O(log n)`-slot bi-trees |
//! | [`experiments::e7_comparison`] | §4: distributed matches centralized |
//! | [`experiments::e8_latency`] | Def 1: converge-cast/broadcast/pairwise latency |
//! | [`experiments::e9_sparse_capacity`] | Thm 9 / Eqn 5 machinery |
//! | [`experiments::e10_ablations`] | DESIGN.md §5 knob ablations |
//! | [`experiments::e11_scaling`] | DESIGN.md §7: naive vs grid engine scaling |
//! | [`experiments::e12_connect_scaling`] | DESIGN.md §8: end-to-end connect scaling |
//! | [`experiments::e13_churn`] | DESIGN.md §10: incremental vs full re-packing under churn |
//! | [`experiments::e14_kernel_profile`] | DESIGN.md §12: per-phase kernel cost of a grid slot |
//! | [`experiments::e15_serve`] | DESIGN.md §13: self-healing service loop under sustained churn |
//! | [`experiments::e16_families`] | DESIGN.md §15: heterogeneous / percolation / shadowed families |
//!
//! Run everything with `cargo run -p sinr-bench --bin experiments`
//! (add `--quick` for CI-sized sweeps); criterion micro-benchmarks live
//! under `benches/`.
//!
//! The theorems hold w.h.p. over the random instance, so every
//! statistical experiment (E1–E10) runs as a multi-seed **ensemble**
//! (`--seeds K --threads T`) through the [`ensemble`] driver and
//! reports `mean ±95% CI` per row via [`stats`] — byte-identically at
//! any thread count (DESIGN.md §9). The engineering experiments
//! (E11–E15) assert parity/partition invariants instead; their
//! wall-clock cells are measured, not derived ([`serve`] is E15's
//! discrete-event driver).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ensemble;
pub mod experiments;
pub mod json;
#[cfg(feature = "trace")]
pub mod replay;
pub mod serve;
pub mod stats;
pub mod table;
pub mod workloads;

use sinr_connectivity::init::InitConfig;
pub use sinr_connectivity::{ChannelModel, EngineBackend, EngineOptions, RepackMode, Shadowing};

/// Shared experiment options.
#[derive(Clone, Copy, Debug)]
pub struct ExpOptions {
    /// Smaller sweeps for CI / smoke runs.
    pub quick: bool,
    /// Base RNG seed; sweeps derive per-run seeds from it.
    pub seed: u64,
    /// Simulation-engine backend for every simulated pipeline
    /// (`--engine naive|grid|parallel[:N]` on the runners; the
    /// backends are bit-identical, so this only changes wall-clock).
    pub backend: EngineBackend,
    /// Ensemble size: independent seeds per table row (`--seeds K`;
    /// `0` = the experiment's default [`trials`](Self::trials) count).
    pub seeds: u64,
    /// Worker threads of the ensemble driver (`--threads T`; `0` = one
    /// per available core). The driver's ordered merge and canonical
    /// statistics make every output byte independent of this value.
    pub threads: usize,
    /// Append the capability rung (n = 65536, single slot) to the
    /// `--quick` ladders of the scale-out experiments (`--capability`).
    /// The CI experiment-smoke job sets this so every merge proves the
    /// engine still *completes* a 65536-node slot, without paying the
    /// full ladder; full (non-quick) runs always include the capability
    /// sizes and ignore the flag.
    pub capability: bool,
    /// Re-packer mode feeding the dynamic experiments' locality
    /// columns and the service loop (`--repack
    /// full|incremental|distributed`). E13 always runs all modes for
    /// its parity asserts; this picks which one the `repacked frac` /
    /// `pack ms` columns report.
    pub repack: RepackMode,
    /// Channel model for every simulated pipeline (`--fade <sigma_db>`
    /// on the runners selects a shadowed channel; the default Geometric
    /// model reproduces the historical outputs bit for bit).
    pub channel: ChannelModel,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            quick: false,
            seed: 0xC0FFEE,
            backend: EngineBackend::default(),
            seeds: 0,
            threads: 0,
            capability: false,
            repack: RepackMode::Incremental,
            channel: ChannelModel::Geometric,
        }
    }
}

impl ExpOptions {
    /// The instance sizes to sweep. The historical ladder topped out at
    /// 256 when the simulator's per-slot cost was `O(n²)`; with the
    /// grid-indexed engine (experiment E11) larger sweeps are viable,
    /// but the experiment suite keeps the recorded ladder so tables
    /// stay comparable — E11 itself sweeps to 2048.
    pub fn sizes(&self) -> &'static [usize] {
        if self.quick {
            &[32, 64, 128]
        } else {
            &[32, 64, 128, 256]
        }
    }

    /// Number of seeds per configuration.
    pub fn trials(&self) -> u64 {
        if self.quick {
            2
        } else {
            3
        }
    }

    /// Ensemble size of the multi-seed experiments (every statistical
    /// experiment, plus E13's churn trials): the `--seeds` flag,
    /// defaulting to [`trials`](Self::trials).
    pub fn ensemble_seeds(&self) -> u64 {
        if self.seeds == 0 {
            self.trials()
        } else {
            self.seeds
        }
    }

    /// The selected engine-facing knobs (backend + channel model).
    pub fn engine_options(&self) -> EngineOptions {
        EngineOptions {
            backend: self.backend,
            channel: self.channel,
        }
    }

    /// An [`InitConfig`] honoring the selected engine backend and
    /// channel model.
    pub fn init_config(&self) -> InitConfig {
        InitConfig {
            engine: self.engine_options(),
            ..Default::default()
        }
    }
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Maximum of a slice (0 for empty).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// Runs `jobs` in parallel, preserving input order in the output.
///
/// A thin wrapper over the ensemble driver with one worker per
/// available core. The experiments themselves all use
/// [`ensemble::Ensemble`] directly for `--seeds` / `--threads` control
/// and `mean ± ci` statistics; this helper remains for ad-hoc
/// fan-outs.
pub fn parallel_map<T, R, F>(jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    ensemble::Ensemble::new(0).map(jobs, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<u64> = (0..50).collect();
        let out = parallel_map(jobs, |x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(max(&[1.0, 5.0, 2.0]), 5.0);
    }

    #[test]
    fn options_sizes() {
        assert!(
            ExpOptions {
                quick: true,
                seed: 0,
                ..Default::default()
            }
            .sizes()
            .len()
                < ExpOptions::default().sizes().len()
        );
    }
}
