//! Disk formats for the observability layer (feature `trace`):
//! snapshot files and trace-log dumps.
//!
//! The bench JSON parser ([`crate::json`]) parses every number as
//! `f64`, which cannot carry a full `u64` word (RNG state) or an exact
//! `f64` bit pattern (powers, SINRs) — and snapshot replay is a
//! *bit-for-bit* contract. Serialized engine state therefore goes to
//! disk in **tagged** form: every shim [`Value`] becomes a JSON array
//! whose first element names the variant, with 64-bit payloads spelled
//! as decimal strings (`["u64","18446744073709551615"]`) and floats as
//! 16-digit hex bit patterns (`["f64","3ff0000000000000"]`) — lossless
//! through any RFC 8259 parser, including this crate's own.

use serde::{Deserialize, Serialize, Value};
use sinr_sim::snapshot::EngineSnapshot;
use sinr_sim::trace::TraceLog;

use crate::json;
use crate::table::json_string;

/// Encodes a shim [`Value`] as tagged JSON (see the module docs).
pub fn value_to_json(value: &Value) -> String {
    match value {
        Value::Unit => "[\"unit\"]".into(),
        Value::Bool(b) => format!("[\"bool\",{b}]"),
        Value::U64(x) => format!("[\"u64\",\"{x}\"]"),
        Value::I64(x) => format!("[\"i64\",\"{x}\"]"),
        Value::F64(x) => format!("[\"f64\",\"{:016x}\"]", x.to_bits()),
        Value::Str(s) => format!("[\"str\",{}]", json_string(s)),
        Value::None => "[\"none\"]".into(),
        Value::Some(inner) => format!("[\"some\",{}]", value_to_json(inner)),
        Value::Seq(items) => {
            let body: Vec<String> = items.iter().map(value_to_json).collect();
            format!("[\"seq\",[{}]]", body.join(","))
        }
        Value::Map(entries) => {
            let body: Vec<String> = entries
                .iter()
                .map(|(k, v)| format!("[{},{}]", json_string(k), value_to_json(v)))
                .collect();
            format!("[\"map\",[{}]]", body.join(","))
        }
    }
}

/// Decodes a tagged JSON tree back into a shim [`Value`] — the exact
/// inverse of [`value_to_json`], bit patterns included.
///
/// # Errors
///
/// Returns a description of the first malformed tag or payload.
pub fn value_from_json(node: &json::Value) -> Result<Value, String> {
    let items = node
        .as_array()
        .ok_or_else(|| format!("tagged value must be an array, got {node:?}"))?;
    let tag = items
        .first()
        .and_then(json::Value::as_str)
        .ok_or("tagged value must start with a string tag")?;
    let arity = |want: usize| -> Result<(), String> {
        if items.len() == want {
            Ok(())
        } else {
            Err(format!(
                "tag `{tag}` wants {} element(s), got {}",
                want - 1,
                items.len() - 1
            ))
        }
    };
    let payload_str = || -> Result<&str, String> {
        items
            .get(1)
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("tag `{tag}` wants a string payload"))
    };
    match tag {
        "unit" => {
            arity(1)?;
            Ok(Value::Unit)
        }
        "none" => {
            arity(1)?;
            Ok(Value::None)
        }
        "bool" => {
            arity(2)?;
            match items[1] {
                json::Value::Bool(b) => Ok(Value::Bool(b)),
                ref other => Err(format!("tag `bool` wants a boolean, got {other:?}")),
            }
        }
        "u64" => {
            arity(2)?;
            payload_str()?
                .parse()
                .map(Value::U64)
                .map_err(|e| format!("bad u64 payload: {e}"))
        }
        "i64" => {
            arity(2)?;
            payload_str()?
                .parse()
                .map(Value::I64)
                .map_err(|e| format!("bad i64 payload: {e}"))
        }
        "f64" => {
            arity(2)?;
            let hex = payload_str()?;
            if hex.len() != 16 {
                return Err(format!(
                    "f64 bit pattern must be 16 hex digits, got `{hex}`"
                ));
            }
            u64::from_str_radix(hex, 16)
                .map(|bits| Value::F64(f64::from_bits(bits)))
                .map_err(|e| format!("bad f64 bit pattern `{hex}`: {e}"))
        }
        "str" => {
            arity(2)?;
            Ok(Value::Str(payload_str()?.to_string()))
        }
        "some" => {
            arity(2)?;
            Ok(Value::Some(Box::new(value_from_json(&items[1])?)))
        }
        "seq" => {
            arity(2)?;
            let inner = items[1]
                .as_array()
                .ok_or("tag `seq` wants an array payload")?;
            Ok(Value::Seq(
                inner
                    .iter()
                    .map(value_from_json)
                    .collect::<Result<_, _>>()?,
            ))
        }
        "map" => {
            arity(2)?;
            let inner = items[1]
                .as_array()
                .ok_or("tag `map` wants an array payload")?;
            let mut entries = Vec::with_capacity(inner.len());
            for entry in inner {
                let pair = entry
                    .as_array()
                    .ok_or("map entry must be a [key, value] pair")?;
                if pair.len() != 2 {
                    return Err(format!(
                        "map entry must have 2 elements, got {}",
                        pair.len()
                    ));
                }
                let key = pair[0].as_str().ok_or("map key must be a string")?;
                entries.push((key.to_string(), value_from_json(&pair[1])?));
            }
            Ok(Value::Map(entries))
        }
        other => Err(format!("unknown value tag `{other}`")),
    }
}

/// A snapshot file: one mid-run engine state plus everything needed to
/// resume it — the instance recipe (family/n/seed), the SINR
/// parameters, the original backend (informational: any backend resumes
/// identically), and the original run's tail fingerprint to verify the
/// replay against.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotFile {
    /// Instance family label (`uniform` / `clustered` / …).
    pub family: String,
    /// Requested node count.
    pub n: usize,
    /// Instance + algorithm seed of the original run.
    pub seed: u64,
    /// Backend label of the snapshotting run (informational).
    pub engine: String,
    /// The slot the engine state was captured at.
    pub snapshot_slot: u64,
    /// Canonical fingerprint of the original run's *final* engine
    /// state; a replay must reproduce it bit-for-bit.
    pub tail_fnv: u64,
    /// The [`sinr_phy::SinrParams`] of the run, serialized.
    pub params: Value,
    /// The captured engine state.
    pub state: EngineSnapshot,
}

const SNAPSHOT_FORMAT: &str = "sinr-connect-snapshot-v1";

impl SnapshotFile {
    /// Renders the file as one JSON document.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"format\":{},\"family\":{},\"n\":{},\"seed\":\"{}\",",
                "\"engine\":{},\"snapshot_slot\":\"{}\",\"tail_fnv\":\"{:016x}\",",
                "\"params\":{},\"state\":{}}}\n"
            ),
            json_string(SNAPSHOT_FORMAT),
            json_string(&self.family),
            self.n,
            self.seed,
            json_string(&self.engine),
            self.snapshot_slot,
            self.tail_fnv,
            value_to_json(&self.params),
            value_to_json(&self.state.to_value()),
        )
    }

    /// Parses a snapshot file produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field, including a
    /// format-marker mismatch for files that are not snapshots at all.
    pub fn parse(input: &str) -> Result<SnapshotFile, String> {
        let doc = json::parse(input)?;
        let str_field = |name: &str| -> Result<&str, String> {
            doc.get(name)
                .and_then(json::Value::as_str)
                .ok_or_else(|| format!("missing string field `{name}`"))
        };
        let format = str_field("format")?;
        if format != SNAPSHOT_FORMAT {
            return Err(format!(
                "not a snapshot file: format `{format}` (expected `{SNAPSHOT_FORMAT}`)"
            ));
        }
        let n = match doc.get("n") {
            Some(&json::Value::Number(x)) if x >= 0.0 && x.fract() == 0.0 => x as usize,
            other => return Err(format!("bad field `n`: {other:?}")),
        };
        let u64_field = |name: &str, radix: u32| -> Result<u64, String> {
            u64::from_str_radix(str_field(name)?, radix)
                .map_err(|e| format!("bad field `{name}`: {e}"))
        };
        let state_value = value_from_json(doc.get("state").ok_or("missing field `state`")?)?;
        let state = EngineSnapshot::from_value(&state_value)
            .map_err(|e| format!("bad engine state: {e}"))?;
        Ok(SnapshotFile {
            family: str_field("family")?.to_string(),
            n,
            seed: u64_field("seed", 10)?,
            engine: str_field("engine")?.to_string(),
            snapshot_slot: u64_field("snapshot_slot", 10)?,
            tail_fnv: u64_field("tail_fnv", 16)?,
            params: value_from_json(doc.get("params").ok_or("missing field `params`")?)?,
            state,
        })
    }
}

/// Renders a recorded trace as one JSON document: the drop count plus
/// every event as an object of its [`fields`](sinr_sim::trace::TraceEvent::fields)
/// (rendered strings — this file is for inspection and diffing by eye
/// or `jq`, not for bit-level replay, which goes through snapshots).
pub fn trace_log_to_json(log: &TraceLog) -> String {
    let mut out = String::from("{\"dropped\":");
    out.push_str(&log.dropped.to_string());
    out.push_str(",\"events\":[");
    for (i, event) in log.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"kind\":");
        out.push_str(&json_string(event.kind()));
        for (name, value) in event.fields() {
            out.push(',');
            out.push_str(&json_string(name));
            out.push(':');
            out.push_str(&json_string(&value));
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_sim::trace::TraceEvent;

    fn roundtrip(v: Value) {
        let encoded = value_to_json(&v);
        let parsed = json::parse(&encoded).expect("tagged encoding parses");
        assert_eq!(value_from_json(&parsed).as_ref(), Ok(&v), "{encoded}");
    }

    #[test]
    fn tagged_values_roundtrip_losslessly() {
        roundtrip(Value::Unit);
        roundtrip(Value::Bool(true));
        roundtrip(Value::U64(u64::MAX)); // > 2^53: would corrupt as f64
        roundtrip(Value::I64(i64::MIN));
        roundtrip(Value::F64(-0.0));
        roundtrip(Value::F64(0.1 + 0.2)); // bit-exact, not re-parsed
        roundtrip(Value::Str("quoted \"✓\"\nline".into()));
        roundtrip(Value::None);
        roundtrip(Value::Some(Box::new(Value::Seq(vec![
            Value::U64(1),
            Value::Map(vec![("k".into(), Value::F64(f64::MAX))]),
        ]))));
    }

    #[test]
    fn nan_bits_survive_the_disk_format() {
        let bits = f64::NAN.to_bits() | 1; // a payload-carrying NaN
        let v = Value::F64(f64::from_bits(bits));
        let parsed = json::parse(&value_to_json(&v)).unwrap();
        match value_from_json(&parsed).unwrap() {
            Value::F64(x) => assert_eq!(x.to_bits(), bits),
            other => panic!("expected F64, got {other:?}"),
        }
    }

    #[test]
    fn malformed_tags_are_rejected() {
        for bad in [
            "[\"zap\"]",
            "[\"u64\",\"not a number\"]",
            "[\"u64\"]",
            "[\"f64\",\"3ff\"]",
            "[\"map\",[[1,[\"unit\"]]]]",
            "42",
        ] {
            let parsed = json::parse(bad).unwrap();
            assert!(value_from_json(&parsed).is_err(), "{bad}");
        }
    }

    #[test]
    fn snapshot_file_roundtrips() {
        let file = SnapshotFile {
            family: "uniform".into(),
            n: 48,
            seed: u64::MAX - 1,
            engine: "grid".into(),
            snapshot_slot: 17,
            tail_fnv: 0xdead_beef_cafe_f00d,
            params: Value::Map(vec![("alpha".into(), Value::F64(3.0))]),
            state: EngineSnapshot {
                slot: 17,
                stats: sinr_sim::EngineStats {
                    slots: 17,
                    transmissions: 5,
                    receptions: 2,
                },
                nodes: vec![Value::U64(7)],
                rngs: vec![Value::Seq(vec![Value::U64(u64::MAX); 4])],
            },
        };
        let parsed = SnapshotFile::parse(&file.to_json()).unwrap();
        assert_eq!(parsed, file);

        assert!(SnapshotFile::parse("{}").is_err());
        assert!(SnapshotFile::parse("{\"format\":\"other\"}").is_err());
    }

    #[test]
    fn trace_log_renders_as_json() {
        let log = TraceLog {
            events: vec![
                TraceEvent::Transmit {
                    slot: 0,
                    node: 3,
                    power: 2.0f64.to_bits(),
                },
                TraceEvent::Batch {
                    phase: "repair",
                    index: 0,
                    size: 2,
                },
            ],
            dropped: 5,
        };
        let doc = json::parse(&trace_log_to_json(&log)).expect("valid JSON");
        assert_eq!(doc.get("dropped"), Some(&json::Value::Number(5.0)));
        let events = doc.get("events").and_then(json::Value::as_array).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].get("kind").and_then(json::Value::as_str),
            Some("transmit")
        );
        assert_eq!(
            events[1].get("phase").and_then(json::Value::as_str),
            Some("repair")
        );
    }
}
