//! A minimal JSON reader for the committed `BENCH_*.json` snapshots.
//!
//! The workspace's offline serde shim has no JSON backend, and the
//! snapshot *emitters* (`table::to_json`, `table::experiments_doc_json`)
//! deliberately build their documents by string formatting. The
//! committed-snapshot CI gate needs the inverse: parse a snapshot back
//! into a tree and check it still carries every field the current
//! emitters produce. This module is that inverse — a small
//! recursive-descent RFC 8259 parser, sufficient for (and tested
//! against) the emitters' output, not a general-purpose JSON library.

use std::collections::BTreeMap;

/// A parsed JSON value. Object member order is preserved in
/// [`Value::Object`]'s companion key list so schema checks can verify
/// emitter field order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: members by key, plus the key order as written.
    Object(BTreeMap<String, Value>, Vec<String>),
}

impl Value {
    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map, _) => map.get(key),
            _ => None,
        }
    }

    /// The object's keys in document order; empty otherwise.
    pub fn keys(&self) -> &[String] {
        match self {
            Value::Object(_, order) => order,
            _ => &[],
        }
    }

    /// The array's elements; `None` otherwise.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string's contents; `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document (ignoring surrounding whitespace).
///
/// # Errors
///
/// Returns a human-readable description with a byte offset on malformed
/// input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected `{word}` at byte {pos}", pos = *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    let mut order = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map, order));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        if map.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate object key `{key}`"));
        }
        order.push(key);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map, order));
            }
            other => return Err(format!("expected `,` or `}}` in object, found {other:?}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            other => return Err(format!("expected `,` or `]` in array, found {other:?}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // The emitters only escape control characters;
                        // surrogate pairs do not occur in our documents.
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte safe).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structure() {
        let v = parse(r#"{"a":1.5,"b":[true,false,null,"x\n\"y\""],"c":{}}"#).unwrap();
        assert_eq!(v.keys(), ["a", "b", "c"]);
        assert_eq!(v.get("a"), Some(&Value::Number(1.5)));
        let arr = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[3].as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("c").unwrap().keys().len(), 0);
    }

    #[test]
    fn round_trips_the_emitters() {
        use crate::table::{experiment_entry_json, experiments_doc_json, Table};
        let mut t = Table::new("T \"q\"", "exp\nnote", &["a", "b"]);
        t.push_row(vec!["1".into(), "x\\y ±0.5".into()]);
        let entry = experiment_entry_json("e0", "unit fixture", 1.25, &[t]);
        let doc = experiments_doc_json(7, true, "grid", 4, 1, &[entry]);
        let v = parse(&doc).unwrap();
        assert_eq!(
            v.keys(),
            ["seed", "quick", "engine", "seeds", "cores", "experiments"]
        );
        let exps = v.get("experiments").unwrap().as_array().unwrap();
        assert_eq!(exps[0].keys(), ["id", "what", "seconds", "tables"]);
        let table = &exps[0].get("tables").unwrap().as_array().unwrap()[0];
        assert_eq!(table.keys(), ["title", "expectation", "columns", "rows"]);
        assert_eq!(table.get("title").unwrap().as_str(), Some("T \"q\""));
        assert_eq!(
            table.get("expectation").unwrap().as_str(),
            Some("exp\nnote")
        );
        let rows = table.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].as_array().unwrap()[1].as_str(), Some("x\\y ±0.5"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":1} trailing"#).is_err());
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
        assert!(parse(r#"["unterminated"#).is_err());
        assert!(parse("01a").is_err());
    }
}
