//! A minimal JSON reader for the committed `BENCH_*.json` snapshots.
//!
//! The workspace's offline serde shim has no JSON backend, and the
//! snapshot *emitters* (`table::to_json`, `table::experiments_doc_json`)
//! deliberately build their documents by string formatting. The
//! committed-snapshot CI gate needs the inverse: parse a snapshot back
//! into a tree and check it still carries every field the current
//! emitters produce. This module is that inverse — a small
//! recursive-descent RFC 8259 parser, sufficient for (and tested
//! against) the emitters' output, not a general-purpose JSON library.

use std::collections::BTreeMap;

/// A parsed JSON value. Object member order is preserved in
/// [`Value::Object`]'s companion key list so schema checks can verify
/// emitter field order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: members by key, plus the key order as written.
    Object(BTreeMap<String, Value>, Vec<String>),
}

impl Value {
    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map, _) => map.get(key),
            _ => None,
        }
    }

    /// The object's keys in document order; empty otherwise.
    pub fn keys(&self) -> &[String] {
        match self {
            Value::Object(_, order) => order,
            _ => &[],
        }
    }

    /// The array's elements; `None` otherwise.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string's contents; `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Maximum container nesting depth the parser accepts.
///
/// The parser is recursive-descent, so each `[` / `{` consumes a stack
/// frame; a hostile (or merely buggy) document like `"[".repeat(10^6)`
/// would otherwise overflow the stack inside the CI schema gate instead
/// of returning an error. 128 is far above anything the emitters
/// produce (their documents nest 6 levels deep) while keeping worst-case
/// stack use trivially bounded.
pub const MAX_DEPTH: usize = 128;

/// Parses one JSON document (ignoring surrounding whitespace).
///
/// # Errors
///
/// Returns a human-readable description with a byte offset on malformed
/// input, trailing garbage, or nesting deeper than [`MAX_DEPTH`].
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_DEPTH} at byte {pos}",
            pos = *pos
        ));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected `{word}` at byte {pos}", pos = *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    let mut order = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map, order));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        if map.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate object key `{key}`"));
        }
        order.push(key);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map, order));
            }
            other => return Err(format!("expected `,` or `}}` in object, found {other:?}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            other => return Err(format!("expected `,` or `]` in array, found {other:?}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        if (0xDC00..=0xDFFF).contains(&code) {
                            return Err(format!(
                                "unpaired low surrogate \\u{code:04X} at byte {}",
                                *pos - 4
                            ));
                        }
                        if (0xD800..=0xDBFF).contains(&code) {
                            // High surrogate: RFC 8259 §7 requires it be
                            // followed by a `\u`-escaped low surrogate.
                            if bytes.get(*pos + 1..*pos + 3) != Some(br"\u") {
                                return Err(format!(
                                    "high surrogate \\u{code:04X} not followed by \\u escape"
                                ));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err(format!(
                                    "high surrogate \\u{code:04X} followed by non-surrogate \\u{low:04X}"
                                ));
                            }
                            *pos += 6;
                            let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(char::from_u32(scalar).ok_or("invalid surrogate pair")?);
                        } else {
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        }
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte safe).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
    let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
    u32::from_str_radix(hex, 16).map_err(|e| e.to_string())
}

/// Parses a number following the RFC 8259 grammar exactly:
/// `-? (0 | [1-9][0-9]*) (\. [0-9]+)? ([eE] [+-]? [0-9]+)?`.
///
/// Anything `f64::parse` would accept beyond that — leading zeros,
/// leading `+`, bare `.`/`e` tails, `inf`, `NaN` — is rejected, so the
/// parser stays the true inverse of RFC-conforming emitters.
fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    let err = |pos: usize| format!("invalid number at byte {pos}");
    let digits = |pos: &mut usize| -> Result<(), String> {
        let from = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == from {
            Err(err(from))
        } else {
            Ok(())
        }
    };

    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // int: `0` alone, or a nonzero digit followed by any digits.
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => digits(pos)?,
        _ => return Err(err(*pos)),
    }
    // Leading zeros (`01`) are caught here: after the single `0` the
    // next digit is not part of any production, and a digit cannot
    // legally follow a complete number either, so reject explicitly.
    if *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        digits(pos)?;
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        digits(pos)?;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structure() {
        let v = parse(r#"{"a":1.5,"b":[true,false,null,"x\n\"y\""],"c":{}}"#).unwrap();
        assert_eq!(v.keys(), ["a", "b", "c"]);
        assert_eq!(v.get("a"), Some(&Value::Number(1.5)));
        let arr = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[3].as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("c").unwrap().keys().len(), 0);
    }

    #[test]
    fn round_trips_the_emitters() {
        use crate::table::{experiment_entry_json, experiments_doc_json, Table};
        let mut t = Table::new("T \"q\"", "exp\nnote", &["a", "b"]);
        t.push_row(vec!["1".into(), "x\\y ±0.5".into()]);
        let entry = experiment_entry_json("e0", "unit fixture", 1.25, &[t]);
        let doc = experiments_doc_json(7, true, "grid", 4, 1, &[entry]);
        let v = parse(&doc).unwrap();
        assert_eq!(
            v.keys(),
            ["seed", "quick", "engine", "seeds", "cores", "experiments"]
        );
        let exps = v.get("experiments").unwrap().as_array().unwrap();
        assert_eq!(exps[0].keys(), ["id", "what", "seconds", "tables"]);
        let table = &exps[0].get("tables").unwrap().as_array().unwrap()[0];
        assert_eq!(table.keys(), ["title", "expectation", "columns", "rows"]);
        assert_eq!(table.get("title").unwrap().as_str(), Some("T \"q\""));
        assert_eq!(
            table.get("expectation").unwrap().as_str(),
            Some("exp\nnote")
        );
        let rows = table.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].as_array().unwrap()[1].as_str(), Some("x\\y ±0.5"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":1} trailing"#).is_err());
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
        assert!(parse(r#"["unterminated"#).is_err());
        assert!(parse("01a").is_err());
    }

    /// The depth guard: nesting up to [`MAX_DEPTH`] parses, one level
    /// past it returns an error instead of overflowing the stack, and
    /// a pathologically deep document (far beyond any plausible stack)
    /// errors out the same way.
    #[test]
    fn depth_guard_rejects_deep_nesting() {
        let nested = |d: usize| format!("{}0{}", "[".repeat(d), "]".repeat(d));
        assert!(parse(&nested(MAX_DEPTH)).is_ok());
        let e = parse(&nested(MAX_DEPTH + 1)).unwrap_err();
        assert!(e.contains("nesting deeper than"), "{e}");
        assert!(parse(&"[".repeat(1_000_000)).is_err());
        // Mixed object/array nesting counts the same.
        let mixed = format!(
            "{}0{}",
            r#"{"k":["#.repeat(MAX_DEPTH / 2 + 1),
            "]}".repeat(MAX_DEPTH / 2 + 1)
        );
        assert!(parse(&mixed).is_err());
    }

    /// RFC 8259 number grammar: the loose pre-RFC scanner accepted all
    /// of these via `f64::parse`.
    #[test]
    fn rejects_non_rfc_numbers() {
        for bad in [
            "01", "00", "-01", "+5", "1.", ".5", "5e", "5e+", "1.e3", "1e2.5", "1-2", "--1", "-",
            "NaN", "inf",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should be rejected");
            assert!(
                parse(&format!("[{bad}]")).is_err(),
                "`[{bad}]` should be rejected"
            );
        }
    }

    #[test]
    fn accepts_rfc_numbers() {
        let cases: [(&str, f64); 9] = [
            ("0", 0.0),
            ("-0", -0.0),
            ("10", 10.0),
            ("-1.5", -1.5),
            ("0.25", 0.25),
            ("1e3", 1000.0),
            ("1E+3", 1000.0),
            ("2.5e-2", 0.025),
            ("1.25E2", 125.0),
        ];
        for (text, want) in cases {
            match parse(text) {
                Ok(Value::Number(got)) => assert_eq!(got.to_bits(), want.to_bits(), "`{text}`"),
                other => panic!("`{text}` → {other:?}"),
            }
        }
    }

    /// `\u` escapes: BMP scalars decode directly, surrogate *pairs*
    /// combine into one astral-plane scalar, and broken halves error.
    #[test]
    fn decodes_surrogate_pairs() {
        let v = parse(r#""A\u00e9\u2713""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé✓"));
        // U+1D11E MUSICAL SYMBOL G CLEF as the pair D834 DD1E.
        let v = parse(r#""\uD834\uDD1E""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1D11E}"));
        // U+10348 GOTHIC LETTER HWAIR (D800 DF48), mixed with text.
        let v = parse(r#""x\uD800\uDF48y""#).unwrap();
        assert_eq!(v.as_str(), Some("x\u{10348}y"));
        for bad in [
            r#""\uD834""#,       // lone high surrogate at end of string
            r#""\uD834x""#,      // high surrogate followed by literal
            r#""\uD834\n""#,     // high surrogate followed by other escape
            r#""\uD834\uD834""#, // high followed by high
            r#""\uDD1E""#,       // lone low surrogate
            r#""\uD8""#,         // truncated hex
        ] {
            assert!(parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }
}
