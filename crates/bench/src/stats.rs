//! Deterministic ensemble statistics.
//!
//! Every headline number the experiments report over a multi-seed
//! ensemble goes through [`Stats`]: mean, sample standard deviation,
//! min/max, and a 95% confidence half-width via the t-distribution
//! (the same machinery the Monte-Carlo connectivity studies — continuum
//! percolation, generic-connection-model sweeps — report their curves
//! with). The paper's theorems hold w.h.p. over the random instance, so
//! a single-seed row is an anecdote; `mean ± ci` over K seeds is a
//! distribution.
//!
//! **Determinism contract** (DESIGN.md §9): float addition does not
//! commute, and the ensemble driver completes jobs in a scheduling-
//! dependent order, so [`Stats::of`] first sorts a copy of the sample
//! by `f64::total_cmp` and accumulates every sum left to right over
//! that canonical order. Any permutation of the same values therefore
//! produces bit-identical statistics — which is what lets the ensemble
//! tables fingerprint byte-identically at any worker-thread count.

use crate::table::f2;

/// Summary statistics of one ensemble sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean (canonical summation order; 0 for empty input).
    pub mean: f64,
    /// Sample standard deviation (`n − 1` denominator; 0 for `n ≤ 1`).
    pub stddev: f64,
    /// Smallest value (0 for empty input).
    pub min: f64,
    /// Largest value (0 for empty input).
    pub max: f64,
    /// Median by the nearest-rank rule on the canonically sorted
    /// sample (0 for empty input). Nearest-rank picks an *observed*
    /// value — no interpolation, hence bit-exact under permutation.
    pub p50: f64,
    /// 99th percentile, nearest-rank (0 for empty input). For `n < 100`
    /// this is the maximum by construction.
    pub p99: f64,
    /// Half-width of the 95% confidence interval for the mean,
    /// `t₀.₉₇₅(n−1) · stddev / √n` — 0 for `n ≤ 1`, where a CI is
    /// undefined (one observation constrains no variance).
    pub ci95: f64,
}

impl Stats {
    /// Computes the statistics of `values`.
    ///
    /// The input is copied and sorted by `f64::total_cmp` first, so the
    /// result is bit-identical under any permutation of `values` — the
    /// property the thread-count parity gates rely on.
    pub fn of(values: &[f64]) -> Stats {
        let mut xs = values.to_vec();
        xs.sort_by(f64::total_cmp);
        let n = xs.len();
        if n == 0 {
            return Stats {
                n: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p99: 0.0,
                ci95: 0.0,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let p50 = percentile_sorted(&xs, 50.0);
        let p99 = percentile_sorted(&xs, 99.0);
        if n == 1 {
            return Stats {
                n,
                mean,
                stddev: 0.0,
                min: xs[0],
                max: xs[0],
                p50,
                p99,
                ci95: 0.0,
            };
        }
        let ss = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>();
        let stddev = (ss / (n - 1) as f64).sqrt();
        let ci95 = t_critical_95(n - 1) * stddev / (n as f64).sqrt();
        Stats {
            n,
            mean,
            stddev,
            min: xs[0],
            max: xs[n - 1],
            p50,
            p99,
            ci95,
        }
    }

    /// Renders the `mean ± ci` table cell (2 decimals each), the
    /// ensemble analogue of [`f2`] single-value cells — right-aligned
    /// into fixed widths ([`Self::CELL_MEAN_WIDTH`] for the mean,
    /// [`Self::CELL_CI_WIDTH`] for the half-width), so a value crossing
    /// a digit boundary between two snapshot generations never re-pads
    /// its whole column: committed `BENCH_*.json` tables diff row by
    /// row, not column by column.
    ///
    /// An empty sample renders as `n/a (0 seeds)` (padded to the same
    /// width) rather than `0.00 ±0.00`, so a misconfigured ensemble is
    /// distinguishable from a genuine all-zero one.
    pub fn cell(&self) -> String {
        if self.n == 0 {
            return format!("{:>width$}", "n/a (0 seeds)", width = Self::CELL_WIDTH);
        }
        format!(
            "{:>mw$} ±{:>cw$}",
            f2(self.mean),
            f2(self.ci95),
            mw = Self::CELL_MEAN_WIDTH,
            cw = Self::CELL_CI_WIDTH,
        )
    }

    /// Fixed mean width in [`cell`](Self::cell): fits every per-slot
    /// microsecond figure through the n = 131072 capability rows
    /// (`9999999999.99`) without jitter.
    pub const CELL_MEAN_WIDTH: usize = 13;
    /// Fixed CI half-width width in [`cell`](Self::cell).
    pub const CELL_CI_WIDTH: usize = 9;
    /// Total rendered width of a non-degenerate [`cell`](Self::cell).
    pub const CELL_WIDTH: usize = Self::CELL_MEAN_WIDTH + 2 + Self::CELL_CI_WIDTH;
}

/// Nearest-rank percentile of an **already canonically sorted** sample:
/// the value at 1-based rank `⌈q/100 · n⌉` (clamped to `[1, n]`). Being
/// a pure selection from the `total_cmp`-sorted copy, the result is an
/// observed sample value and bit-identical under any permutation of the
/// input — the same contract as every other [`Stats`] field. Returns 0
/// for an empty sample.
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let rank = (q / 100.0 * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Two-sided 95% critical value of Student's t with `df` degrees of
/// freedom: exact table through df = 30, step approximations beyond,
/// converging toward the normal 1.96. A table lookup keeps the value a
/// pure function of `df` — no iterative special functions whose
/// rounding could wobble across toolchains.
///
/// The steps are **band-conservative**: each band reports the critical
/// value at (or just above) its *smallest* df, so an approximated CI
/// errs wide, never narrow — a snapshot must not overclaim precision.
pub fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df - 1],
        31..=40 => 2.042,  // ≥ t(31) ≈ 2.040
        41..=60 => 2.021,  // ≥ t(41) ≈ 2.020
        61..=120 => 2.000, // ≥ t(61) ≈ 2.000
        121..=1000 => 1.980,
        _ => 1.963, // ≥ t(1001) ≈ 1.962
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Hand-computed fixture: {2, 4, 4, 4, 5, 5, 7, 9} has mean 5,
    /// population variance 4 → sample variance 32/7.
    #[test]
    fn hand_computed_fixture() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Stats::of(&xs);
        assert_eq!(s.n, 8);
        assert_eq!(s.mean, 5.0);
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        // df = 7 → t = 2.365.
        let expect = 2.365 * (32.0f64 / 7.0).sqrt() / 8.0f64.sqrt();
        assert!((s.ci95 - expect).abs() < 1e-12, "{} vs {expect}", s.ci95);
        // Nearest-rank: p50 is rank ⌈0.5·8⌉ = 4 → the 4th sorted value;
        // p99 is rank ⌈0.99·8⌉ = 8 → the maximum.
        assert_eq!(s.p50, 4.0);
        assert_eq!(s.p99, 9.0);
    }

    /// Hand-computed nearest-rank fixtures, including the odd-length
    /// case and a sample large enough that p99 < max.
    #[test]
    fn percentiles_follow_the_nearest_rank_rule() {
        // Odd length: p50 of {1,2,3,4,5} is rank ⌈2.5⌉ = 3 → 3.
        let s = Stats::of(&[5.0, 1.0, 4.0, 2.0, 3.0]);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p99, 5.0, "p99 of n < 100 is the max");
        // Even length: nearest-rank p50 of {10,20,30,40} is rank 2 → 20
        // (an observed value, not the interpolated 25).
        let s = Stats::of(&[40.0, 10.0, 30.0, 20.0]);
        assert_eq!(s.p50, 20.0);
        // n = 200 of 0..200: p50 is rank 100 → sorted[99] = 99;
        // p99 is rank 198 → sorted[197] = 197, strictly below max 199.
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let s = Stats::of(&xs);
        assert_eq!(s.p50, 99.0);
        assert_eq!(s.p99, 197.0);
        assert_eq!(s.max, 199.0);
        // Degenerate inputs keep the 0-default / single-value contract.
        assert_eq!(Stats::of(&[]).p50, 0.0);
        assert_eq!(Stats::of(&[]).p99, 0.0);
        assert_eq!(Stats::of(&[7.5]).p50, 7.5);
        assert_eq!(Stats::of(&[7.5]).p99, 7.5);
    }

    /// n = 1: the degenerate ensemble. Mean is the value; the CI (and
    /// stddev) are defined as 0 rather than NaN so a `--seeds 1` run
    /// still renders a table.
    #[test]
    fn single_value_degenerates_cleanly() {
        let s = Stats::of(&[3.25]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.25);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.min, 3.25);
        assert_eq!(s.max, 3.25);
        assert_eq!(s.cell(), "         3.25 ±     0.00");
    }

    /// The numeric fields of an empty sample stay zero (stable
    /// arithmetic defaults), but the rendered cell must be visibly
    /// degenerate — `0.00 ±0.00` would be indistinguishable from a
    /// genuine all-zero ensemble.
    #[test]
    fn empty_sample_renders_as_not_available() {
        let s = Stats::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.cell().trim_start(), "n/a (0 seeds)");
        assert_ne!(s.cell(), Stats::of(&[0.0, 0.0]).cell());
    }

    /// Identical values: zero variance, zero CI, exactly.
    #[test]
    fn identical_values_zero_variance() {
        let s = Stats::of(&[7.5; 12]);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
    }

    /// The canonical-order contract: every permutation of the sample
    /// produces bit-identical statistics. Uses values spread across
    /// magnitudes so a naive input-order sum *would* differ.
    #[test]
    fn permutation_does_not_change_reported_bits() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut xs: Vec<f64> = (0..24)
            .map(|i| rng.gen::<f64>() * 10f64.powi(i % 7 - 3))
            .collect();
        let reference = Stats::of(&xs);
        // A left-to-right sum over the *input* order is genuinely
        // order-sensitive for this sample — the canonical sort is doing
        // real work, not vacuously passing.
        let forward: f64 = xs.iter().sum();
        let backward: f64 = xs.iter().rev().sum();
        assert_ne!(forward.to_bits(), backward.to_bits());
        for _ in 0..50 {
            // Deterministic Fisher–Yates shuffle.
            for i in (1..xs.len()).rev() {
                xs.swap(i, rng.gen_range(0..=i));
            }
            let s = Stats::of(&xs);
            assert_eq!(reference.mean.to_bits(), s.mean.to_bits());
            assert_eq!(reference.stddev.to_bits(), s.stddev.to_bits());
            assert_eq!(reference.ci95.to_bits(), s.ci95.to_bits());
            assert_eq!(reference.min.to_bits(), s.min.to_bits());
            assert_eq!(reference.max.to_bits(), s.max.to_bits());
            assert_eq!(reference.p50.to_bits(), s.p50.to_bits());
            assert_eq!(reference.p99.to_bits(), s.p99.to_bits());
        }
    }

    #[test]
    fn t_table_shape() {
        // Monotone non-increasing in df, approaching the normal value.
        let mut prev = t_critical_95(1);
        for df in 2..2000 {
            let t = t_critical_95(df);
            assert!(t <= prev, "t must not increase with df (df = {df})");
            prev = t;
        }
        assert_eq!(t_critical_95(15), 2.131); // the --seeds 16 row
                                              // Band-conservative steps: never below the true critical value
                                              // of the band's smallest df (reference: t(31) ≈ 2.0395,
                                              // t(41) ≈ 2.0195, t(61) ≈ 1.9996, t(121) ≈ 1.9798).
        assert!(t_critical_95(31) >= 2.0395);
        assert!(t_critical_95(41) >= 2.0195);
        assert!(t_critical_95(61) >= 1.9996);
        assert!(t_critical_95(121) >= 1.9798);
        assert!(t_critical_95(5000) >= 1.9600);
        assert!(t_critical_95(0).is_infinite());
    }

    #[test]
    fn cell_formats_mean_pm_ci() {
        let s = Stats::of(&[1.0, 2.0, 3.0]);
        assert_eq!(
            s.cell().replace(' ', ""),
            format!("{}±{}", f2(s.mean), f2(s.ci95))
        );
    }

    /// The anti-jitter contract: every non-degenerate cell (and the
    /// degenerate one) renders at exactly `CELL_WIDTH` characters, no
    /// matter how many digits the mean grows.
    #[test]
    fn cell_width_is_fixed_across_magnitudes() {
        for sample in [
            &[0.0][..],
            &[3.25],
            &[99.99, 100.01],
            &[330858.76, 330911.02],
            &[4_126_940.0, 4_126_950.0],
        ] {
            let cell = Stats::of(sample).cell();
            assert_eq!(
                cell.chars().count(),
                Stats::CELL_WIDTH,
                "cell width jitters for {sample:?}: {cell:?}"
            );
        }
        assert_eq!(Stats::of(&[]).cell().chars().count(), Stats::CELL_WIDTH);
    }
}
