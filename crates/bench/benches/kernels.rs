//! Kernel micro-benchmarks: the SoA [`InterferenceField`] build and
//! the certified best-SINR decode sweep, isolated from the engine's
//! slot loop. These are the same two kernels experiment E14 profiles
//! phase-by-phase into the committed `BENCH_PROFILE.json` trajectory;
//! criterion gives them statistically disciplined micro numbers, E14
//! gives them the committed scaling shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sinr_bench::workloads::Family;
use sinr_geom::{Instance, NodeId};
use sinr_phy::field::{FieldBuffers, FieldScratch, InterferenceField};
use sinr_phy::SinrParams;

/// One slot-soup transmitter set (p = 0.1, E11's power sizing rule —
/// spacing of a normalized uniform square scales as Δ/√(2n)).
fn soup(params: &SinrParams, inst: &Instance, seed: u64) -> (Vec<(NodeId, f64)>, Vec<NodeId>) {
    let spacing = inst.delta() / (2.0 * inst.len() as f64).sqrt();
    let power = params.min_power_for_length(1.5 * spacing) * 4.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut senders = Vec::new();
    let mut listeners = Vec::new();
    for v in 0..inst.len() {
        if rng.gen_bool(0.1) {
            senders.push((v, power));
        } else {
            listeners.push(v);
        }
    }
    (senders, listeners)
}

fn bench_kernels(c: &mut Criterion) {
    let params = SinrParams::default();

    let mut build = c.benchmark_group("kernel_field_build");
    build.sample_size(10);
    for n in [1024usize, 4096, 16384] {
        let inst = Family::UniformSquare.instance(n, 5);
        let (senders, _) = soup(&params, &inst, 14);
        build.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            // Arena-style recycling, exactly as the engine drives it:
            // steady-state iterations re-use the grid's capacity.
            let mut buffers = FieldBuffers::default();
            b.iter(|| {
                let field = InterferenceField::build_with(
                    &params,
                    inst,
                    &senders,
                    std::mem::take(&mut buffers),
                );
                buffers = field.into_buffers();
            });
        });
    }
    build.finish();

    let mut decode = c.benchmark_group("kernel_decode_sweep");
    decode.sample_size(10);
    for n in [1024usize, 4096, 16384] {
        let inst = Family::UniformSquare.instance(n, 5);
        let (senders, listeners) = soup(&params, &inst, 14);
        let field = InterferenceField::build(&params, &inst, &senders);
        decode.bench_with_input(BenchmarkId::from_parameter(n), &field, |b, field| {
            let mut scratch = FieldScratch::default();
            b.iter(|| {
                let mut decoded = 0u64;
                for &v in &listeners {
                    if field.decode_best_with(v, &mut scratch).is_some() {
                        decoded += 1;
                    }
                }
                decoded
            });
        });
    }
    decode.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
