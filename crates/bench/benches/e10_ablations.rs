//! E10 bench — ablation kernels: `Init` across broadcast probabilities
//! and `Distr-Cap` across probe-repetition budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_bench::workloads::Family;
use sinr_connectivity::init::{run_init, InitConfig};
use sinr_connectivity::selector::{DistrCapConfig, DistrCapSelector};
use sinr_connectivity::tvc::{tree_via_capacity, TvcConfig};
use sinr_phy::SinrParams;

fn bench_ablations(c: &mut Criterion) {
    let params = SinrParams::default();
    let inst = Family::UniformSquare.instance(64, 61);

    let mut group = c.benchmark_group("e10_init_p");
    group.sample_size(10);
    for p in [0.05f64, 0.1, 0.3] {
        let cfg = InitConfig {
            p,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(p), &cfg, |b, cfg| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_init(&params, &inst, cfg, seed).expect("init converges")
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e10_distrcap_repeats");
    group.sample_size(10);
    for reps in [1u32, 4, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(reps), &reps, |b, &reps| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sel = DistrCapSelector::new(DistrCapConfig {
                    class_repeats: reps,
                    ..Default::default()
                });
                tree_via_capacity(&params, &inst, &TvcConfig::default(), &mut sel, seed)
                    .expect("tvc converges")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
