//! E8 bench — Definition 1 kernel: replaying bi-tree schedules against
//! the SINR channel (converge-cast + broadcast audit).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_bench::workloads::Family;
use sinr_connectivity::latency::audit_bitree;
use sinr_connectivity::selector::MeanSamplingSelector;
use sinr_connectivity::tvc::{tree_via_capacity, TvcConfig};
use sinr_phy::SinrParams;

fn bench_latency(c: &mut Criterion) {
    let params = SinrParams::default();
    let mut group = c.benchmark_group("e8_bitree_audit");
    group.sample_size(20);
    for n in [64usize, 128] {
        let inst = Family::UniformSquare.instance(n, 41);
        let mut sel = MeanSamplingSelector::default();
        let out = tree_via_capacity(&params, &inst, &TvcConfig::default(), &mut sel, 5)
            .expect("tvc converges");
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(inst, out),
            |b, (inst, out)| {
                b.iter(|| audit_bitree(&params, inst, &out.bitree, &out.power).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
