//! E2 bench — Theorem 7 kernel: degree statistics of `Init` trees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_bench::workloads::Family;
use sinr_connectivity::init::{run_init, InitConfig};
use sinr_links::degree::DegreeStats;
use sinr_phy::SinrParams;

fn bench_degree(c: &mut Criterion) {
    let params = SinrParams::default();
    let mut group = c.benchmark_group("e2_degree_stats");
    group.sample_size(20);
    for n in [64usize, 256] {
        let inst = Family::UniformSquare.instance(n, 11);
        let out = run_init(&params, &inst, &InitConfig::default(), 3).expect("init");
        let links = out.tree.aggregation_links();
        group.bench_with_input(BenchmarkId::from_parameter(n), &links, |b, links| {
            b.iter(|| {
                let stats = DegreeStats::of(links);
                (stats.max, stats.tail(4))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_degree);
criterion_main!(benches);
