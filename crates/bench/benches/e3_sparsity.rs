//! E3 bench — Theorem 11/13 kernel: ψ-sparsity measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_bench::workloads::Family;
use sinr_links::{sparsity, Link, LinkSet};

fn bench_sparsity(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_sparsity_lower_bound");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let inst = Family::UniformSquare.instance(n, 5);
        let links: LinkSet = sinr_geom::mst::mst_parent_array(&inst, 0)
            .iter()
            .enumerate()
            .filter_map(|(u, p)| p.map(|v| Link::new(u, v)))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(inst, links),
            |b, (inst, links)| {
                b.iter(|| sparsity::sparsity_lower_bound(inst, links));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sparsity);
criterion_main!(benches);
