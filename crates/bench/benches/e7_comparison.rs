//! E7 bench — §4 kernel: the centralized comparators (MST bi-tree
//! first-fit packing, length-class scheduling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_baselines::length_class::length_class_schedule;
use sinr_baselines::mst::{centroid_root, mst_bitree};
use sinr_bench::workloads::Family;
use sinr_links::{Link, LinkSet};
use sinr_phy::{PowerAssignment, SinrParams};

fn bench_baselines(c: &mut Criterion) {
    let params = SinrParams::default();

    let mut group = c.benchmark_group("e7_mst_bitree");
    group.sample_size(10);
    for n in [64usize, 128] {
        let inst = Family::UniformSquare.instance(n, 31);
        let power = PowerAssignment::mean_with_margin(&params, inst.delta());
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(inst, power),
            |b, (inst, power)| {
                b.iter(|| mst_bitree(&params, inst, centroid_root(inst), power));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e7_length_class");
    group.sample_size(10);
    for n in [64usize, 128] {
        let inst = Family::ExponentialChain.instance(n, 31);
        let links: LinkSet = sinr_geom::mst::mst_parent_array(&inst, 0)
            .iter()
            .enumerate()
            .filter_map(|(u, p)| p.map(|v| Link::new(u, v)))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(inst, links),
            |b, (inst, links)| {
                b.iter(|| length_class_schedule(&params, inst, links));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
