//! E11 bench — per-slot engine cost, naive vs grid-indexed
//! interference, on the slot-soup contention workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::Rng;
use sinr_bench::workloads::Family;
use sinr_geom::NodeId;
use sinr_phy::SinrParams;
use sinr_sim::{Action, Engine, EngineBackend, Protocol, SlotOutcome};

#[derive(Debug)]
struct Soup {
    power: f64,
}

impl Protocol for Soup {
    type Msg = ();
    // Matches experiment E11: the soup never reads the measured SINR
    // or affectance, so both per-reception instruments are off.
    const MEASURES_AFFECTANCE: bool = false;
    const MEASURES_SINR: bool = false;
    fn begin_slot(&mut self, _: NodeId, _: u64, rng: &mut StdRng) -> Action<()> {
        if rng.gen_bool(0.1) {
            Action::Transmit {
                power: self.power,
                msg: (),
            }
        } else {
            Action::Listen
        }
    }
    fn end_slot(&mut self, _: NodeId, _: u64, _: SlotOutcome<()>, _: &mut StdRng) {}
}

fn bench_engines(c: &mut Criterion) {
    let params = SinrParams::default();
    let mut group = c.benchmark_group("e11_engine_slot");
    group.sample_size(10);
    for n in [256usize, 1024] {
        let inst = Family::UniformSquare.instance(n, 5);
        // Power sized to the typical spacing so decodes occur; the
        // spacing of a normalized uniform square scales as Δ/√(2n).
        let spacing = inst.delta() / (2.0 * n as f64).sqrt();
        let power = params.min_power_for_length(1.5 * spacing) * 4.0;
        for backend in [EngineBackend::Naive, EngineBackend::Grid] {
            // The naive engine at n = 2048 costs ~1s per slot; keep the
            // criterion grid at 1024 and let experiment E11 cover 2048.
            group.bench_with_input(BenchmarkId::new(backend.label(), n), &inst, |b, inst| {
                let mut engine =
                    Engine::with_backend(&params, inst, |_| Soup { power }, 7, backend);
                b.iter(|| engine.step());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
