//! E5 bench — Theorem 16 kernel: `TreeViaCapacity` with mean-power
//! sampling, end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_bench::workloads::Family;
use sinr_connectivity::selector::MeanSamplingSelector;
use sinr_connectivity::tvc::{tree_via_capacity, TvcConfig};
use sinr_phy::SinrParams;

fn bench_tvc_mean(c: &mut Criterion) {
    let params = SinrParams::default();
    let mut group = c.benchmark_group("e5_tvc_mean");
    group.sample_size(10);
    for n in [32usize, 64] {
        let inst = Family::UniformSquare.instance(n, 21);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sel = MeanSamplingSelector::default();
                tree_via_capacity(&params, inst, &TvcConfig::default(), &mut sel, seed)
                    .expect("tvc converges")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tvc_mean);
criterion_main!(benches);
