//! E9 bench — Theorem 9 kernel: Kesselheim greedy capacity with power
//! completion, and q-independence partitioning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_baselines::capacity::greedy_capacity;
use sinr_bench::workloads::Family;
use sinr_connectivity::power_control::PowerControlConfig;
use sinr_links::{independence, Link, LinkSet};
use sinr_phy::SinrParams;

fn mst_links(inst: &sinr_geom::Instance) -> LinkSet {
    sinr_geom::mst::mst_parent_array(inst, 0)
        .iter()
        .enumerate()
        .filter_map(|(u, p)| p.map(|v| Link::new(u, v)))
        .collect()
}

fn bench_capacity(c: &mut Criterion) {
    let params = SinrParams::default();

    let mut group = c.benchmark_group("e9_greedy_capacity");
    group.sample_size(10);
    for n in [64usize, 128] {
        let inst = Family::UniformSquare.instance(n, 51);
        let links = mst_links(&inst);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(inst, links),
            |b, (inst, links)| {
                b.iter(|| {
                    greedy_capacity(&params, inst, links, 0.5, &PowerControlConfig::default())
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e9_q_independence_partition");
    group.sample_size(10);
    for n in [64usize, 128] {
        let inst = Family::UniformSquare.instance(n, 51);
        let links = mst_links(&inst);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(inst, links),
            |b, (inst, links)| {
                b.iter(|| independence::partition_q_independent(inst, links, 1.0));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_capacity);
criterion_main!(benches);
