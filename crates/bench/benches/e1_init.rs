//! E1 bench — Theorem 2 kernel: one full `Init` run (tree construction
//! through the simulated SINR channel), swept over `n` and over `Δ`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_bench::workloads::{delta_sweep, Family};
use sinr_connectivity::init::{run_init, InitConfig};
use sinr_phy::SinrParams;

fn bench_init(c: &mut Criterion) {
    let params = SinrParams::default();
    let cfg = InitConfig::default();

    let mut group = c.benchmark_group("e1_init_vs_n");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let inst = Family::UniformSquare.instance(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_init(&params, inst, &cfg, seed).expect("init converges")
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e1_init_vs_delta");
    group.sample_size(10);
    for (growth, inst) in delta_sweep(16, 7) {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("growth_{growth}")),
            &inst,
            |b, inst| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    run_init(&params, inst, &cfg, seed).expect("init converges")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_init);
criterion_main!(benches);
