//! E4 bench — Theorem 3 kernel: distributed contention-resolution
//! rescheduling of a tree under mean power, vs centralized first-fit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sinr_baselines::first_fit::{first_fit_schedule, FirstFitOrder};
use sinr_bench::workloads::Family;
use sinr_connectivity::contention::{schedule_distributed, ContentionConfig};
use sinr_links::{Link, LinkSet};
use sinr_phy::{PowerAssignment, SinrParams};

fn tree_links(n: usize, seed: u64) -> (sinr_geom::Instance, LinkSet) {
    let inst = Family::UniformSquare.instance(n, seed);
    let links: LinkSet = sinr_geom::mst::mst_parent_array(&inst, 0)
        .iter()
        .enumerate()
        .filter_map(|(u, p)| p.map(|v| Link::new(u, v)))
        .collect();
    (inst, links)
}

fn bench_reschedule(c: &mut Criterion) {
    let params = SinrParams::default();

    let mut group = c.benchmark_group("e4_distributed_contention");
    group.sample_size(10);
    for n in [32usize, 64] {
        let (inst, links) = tree_links(n, 3);
        let power = PowerAssignment::mean_with_margin(&params, inst.delta());
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(inst, links, power),
            |b, (inst, links, power)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    schedule_distributed(
                        &params,
                        inst,
                        links,
                        power,
                        &ContentionConfig::default(),
                        seed,
                    )
                    .expect("contention converges")
                });
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e4_centralized_first_fit");
    group.sample_size(10);
    for n in [64usize, 128] {
        let (inst, links) = tree_links(n, 3);
        let power = PowerAssignment::mean_with_margin(&params, inst.delta());
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(inst, links, power),
            |b, (inst, links, power)| {
                b.iter(|| {
                    first_fit_schedule(
                        &params,
                        inst,
                        links,
                        power,
                        FirstFitOrder::AscendingLength,
                        |_| 0,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reschedule);
criterion_main!(benches);
