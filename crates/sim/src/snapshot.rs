//! Engine state snapshots (feature `serde`).
//!
//! A running [`Engine`](crate::Engine) is fully determined by four
//! pieces of mutable state: the next slot index, the cumulative
//! statistics, the per-node protocol states, and the per-node RNG
//! streams (the instance, parameters and backend are immutable inputs
//! the caller re-supplies). [`EngineSnapshot`] captures exactly those
//! four through the serde shim's [`Value`] data model, so any trial can
//! be paused at slot *t* and later resumed — on the same or a different
//! process — with a bit-identical tail: the restored RNGs continue the
//! same streams, and every float the resumed run computes matches the
//! uninterrupted run's.

use serde::{Deserialize, Error, Serialize, Value};

use crate::EngineStats;

/// The complete mutable state of an [`Engine`](crate::Engine) at a slot
/// boundary, with protocol and RNG state erased into [`Value`]s.
///
/// Produced by [`Engine::snapshot`](crate::Engine::snapshot); consumed
/// by [`Engine::restore`](crate::Engine::restore) together with the
/// immutable run inputs (parameters, instance, backend).
#[derive(Clone, Debug, PartialEq)]
pub struct EngineSnapshot {
    /// The next slot index the engine would execute.
    pub slot: u64,
    /// Cumulative statistics at the snapshot point.
    pub stats: EngineStats,
    /// Per-node protocol states, in node order.
    pub nodes: Vec<Value>,
    /// Per-node RNG streams, in node order.
    pub rngs: Vec<Value>,
}

fn field<'v>(entries: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

fn as_map(value: &Value, what: &str) -> Result<Vec<(String, Value)>, Error> {
    match value {
        Value::Map(entries) => Ok(entries.clone()),
        other => Err(Error::custom(format!("expected {what} map, got {other:?}"))),
    }
}

impl Serialize for EngineStats {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("slots".into(), Value::U64(self.slots)),
            ("transmissions".into(), Value::U64(self.transmissions)),
            ("receptions".into(), Value::U64(self.receptions)),
        ])
    }
}

impl Deserialize for EngineStats {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = as_map(value, "EngineStats")?;
        Ok(EngineStats {
            slots: u64::from_value(field(&entries, "slots")?)?,
            transmissions: u64::from_value(field(&entries, "transmissions")?)?,
            receptions: u64::from_value(field(&entries, "receptions")?)?,
        })
    }
}

impl Serialize for EngineSnapshot {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("slot".into(), Value::U64(self.slot)),
            ("stats".into(), self.stats.to_value()),
            ("nodes".into(), Value::Seq(self.nodes.clone())),
            ("rngs".into(), Value::Seq(self.rngs.clone())),
        ])
    }
}

impl Deserialize for EngineSnapshot {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = as_map(value, "EngineSnapshot")?;
        let seq = |name: &str| -> Result<Vec<Value>, Error> {
            match field(&entries, name)? {
                Value::Seq(items) => Ok(items.clone()),
                other => Err(Error::custom(format!(
                    "expected `{name}` sequence, got {other:?}"
                ))),
            }
        };
        let snapshot = EngineSnapshot {
            slot: u64::from_value(field(&entries, "slot")?)?,
            stats: EngineStats::from_value(field(&entries, "stats")?)?,
            nodes: seq("nodes")?,
            rngs: seq("rngs")?,
        };
        if snapshot.nodes.len() != snapshot.rngs.len() {
            return Err(Error::custom(format!(
                "snapshot has {} nodes but {} RNG streams",
                snapshot.nodes.len(),
                snapshot.rngs.len()
            )));
        }
        Ok(snapshot)
    }
}

/// Streaming FNV-1a (64-bit), the construction behind the determinism
/// gates' fingerprints — shared by the engine's per-slot outcome digest
/// (feature `trace`) and the snapshot tail fingerprints.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorbs one 64-bit word (little-endian bytes).
    pub fn write_u64(&mut self, word: u64) {
        self.write_bytes(&word.to_le_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Canonical FNV-1a digest of a [`Value`] tree: every variant is
/// tagged, every float hashed by its IEEE-754 bits, every aggregate
/// length-prefixed — so two values hash equal iff they would serialize
/// identically. This is what makes snapshot *tail fingerprints*
/// comparable bit-for-bit across a replayed and an original run.
pub fn hash_value(value: &Value) -> u64 {
    let mut h = Fnv1a::default();
    absorb(&mut h, value);
    h.finish()
}

fn absorb(h: &mut Fnv1a, value: &Value) {
    match value {
        Value::Unit => h.write_u64(0),
        Value::Bool(b) => {
            h.write_u64(1);
            h.write_u64(u64::from(*b));
        }
        Value::U64(x) => {
            h.write_u64(2);
            h.write_u64(*x);
        }
        Value::I64(x) => {
            h.write_u64(3);
            h.write_u64(*x as u64);
        }
        Value::F64(x) => {
            h.write_u64(4);
            h.write_u64(x.to_bits());
        }
        Value::Str(s) => {
            h.write_u64(5);
            h.write_u64(s.len() as u64);
            h.write_bytes(s.as_bytes());
        }
        Value::None => h.write_u64(6),
        Value::Some(inner) => {
            h.write_u64(7);
            absorb(h, inner);
        }
        Value::Seq(items) => {
            h.write_u64(8);
            h.write_u64(items.len() as u64);
            for item in items {
                absorb(h, item);
            }
        }
        Value::Map(entries) => {
            h.write_u64(9);
            h.write_u64(entries.len() as u64);
            for (key, item) in entries {
                h.write_u64(key.len() as u64);
                h.write_bytes(key.as_bytes());
                absorb(h, item);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_roundtrip() {
        let stats = EngineStats {
            slots: 7,
            transmissions: 21,
            receptions: 13,
        };
        assert_eq!(EngineStats::from_value(&stats.to_value()), Ok(stats));
        assert!(EngineStats::from_value(&Value::U64(0)).is_err());
        assert!(
            EngineStats::from_value(&Value::Map(vec![("slots".into(), Value::U64(1))])).is_err()
        );
    }

    #[test]
    fn snapshot_roundtrip_and_shape_checks() {
        let snap = EngineSnapshot {
            slot: 5,
            stats: EngineStats {
                slots: 5,
                transmissions: 2,
                receptions: 1,
            },
            nodes: vec![Value::U64(1), Value::U64(2)],
            rngs: vec![Value::Seq(vec![]), Value::Seq(vec![])],
        };
        assert_eq!(
            EngineSnapshot::from_value(&snap.to_value()).as_ref(),
            Ok(&snap)
        );

        // Mismatched node/rng counts are rejected at the shape level.
        let bad = EngineSnapshot {
            rngs: vec![Value::Seq(vec![])],
            ..snap
        };
        assert!(EngineSnapshot::from_value(&bad.to_value()).is_err());
    }

    #[test]
    fn hash_value_separates_shapes_and_bits() {
        let a = Value::Seq(vec![Value::U64(1), Value::U64(2)]);
        let b = Value::Seq(vec![Value::U64(2), Value::U64(1)]);
        assert_ne!(hash_value(&a), hash_value(&b));

        // Tag separation: U64(0) vs I64(0) vs F64(0.0) all differ.
        assert_ne!(hash_value(&Value::U64(0)), hash_value(&Value::I64(0)));
        assert_ne!(hash_value(&Value::U64(0)), hash_value(&Value::F64(0.0)));

        // Floats hash by bits: -0.0 != +0.0, NaN is stable.
        assert_ne!(hash_value(&Value::F64(0.0)), hash_value(&Value::F64(-0.0)));
        assert_eq!(
            hash_value(&Value::F64(f64::NAN)),
            hash_value(&Value::F64(f64::NAN))
        );

        // Length prefixes prevent concatenation ambiguity.
        let ab = Value::Map(vec![("ab".into(), Value::Unit)]);
        let a_b = Value::Map(vec![("a".into(), Value::Str("b".into()))]);
        assert_ne!(hash_value(&ab), hash_value(&a_b));
    }
}
