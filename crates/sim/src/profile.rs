//! Feature-gated phase profiling: named counters with computed
//! statistics (DESIGN.md §12).
//!
//! The raw-speed work on the per-slot path needs every claim to name
//! the phase it came from: a "3× faster" row is only actionable when
//! it decomposes into *build* (action collection), *grid* (field
//! construction), *near-field* (candidate scans), *far-field-cert*
//! (ring accumulation + certification), *fallback* (exact naive
//! sums), and *merge* (outcome merge + slot bookkeeping). This module
//! is the registry those phases report into: a phase is a named
//! counter accumulating samples — one per slot, usually seconds — and
//! a finished recording computes `count`/`min`/`mean`/`max`/`total`
//! per phase for rendering as a table or emission into the `--json`
//! experiment documents.
//!
//! # Zero cost when disabled, observational when enabled
//!
//! The module and every emission site sit behind the `profile` cargo
//! feature; a build without it contains no profiling code. With the
//! feature compiled in, emission goes through a thread-local registry
//! that is inert until [`start`] installs one — and recording only
//! *observes* wall-clock, never a value that feeds back into the run,
//! so outputs stay byte-identical either way (same contract as the
//! `trace` recorder, sans ring buffer: a run has few phases, not
//! millions of events).
//!
//! The registry is thread-local on purpose, like the trace recorder:
//! every emission site runs on the thread that owns the trial. The
//! engine's pooled backend shards channel resolution across workers,
//! whose per-query phase time cannot reach this registry directly —
//! the workers instead *return* their accumulated counters with each
//! slot's outcomes and the driving thread records the merged sums, so
//! a parallel run's per-phase totals are CPU time across the pool,
//! not wall-clock.

use std::cell::RefCell;
use std::time::Instant;

/// Accumulated samples of one named phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseStats {
    /// Number of recorded samples.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sum of all samples.
    pub total: f64,
}

impl PhaseStats {
    /// Mean sample (`0.0` before the first record).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    /// Folds one sample in.
    pub fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.total += value;
    }
}

/// A finished recording: every phase in first-recorded order with its
/// computed statistics. First-recorded order is deterministic because
/// every emission site runs in the deterministic slot loop.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileReport {
    /// `(phase name, stats)` pairs, in first-recorded order.
    pub phases: Vec<(&'static str, PhaseStats)>,
}

impl ProfileReport {
    /// The stats of one phase, if it recorded any sample.
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|(n, _)| *n == name).map(|(_, s)| s)
    }
}

/// Phase names are few (≤ a dozen) and `&'static`, so a linear-scan
/// vector beats a hash map and keeps first-recorded order for free.
#[derive(Debug, Default)]
struct Registry {
    phases: Vec<(&'static str, PhaseStats)>,
}

thread_local! {
    static REGISTRY: RefCell<Option<Registry>> = const { RefCell::new(None) };
}

/// Installs a fresh registry on this thread, replacing (and
/// discarding) any previous one.
pub fn start() {
    REGISTRY.with(|r| *r.borrow_mut() = Some(Registry::default()));
}

/// Uninstalls this thread's registry and returns what it captured.
/// Returns an empty report if no registry was installed.
pub fn stop() -> ProfileReport {
    REGISTRY.with(|r| match r.borrow_mut().take() {
        Some(reg) => ProfileReport { phases: reg.phases },
        None => ProfileReport::default(),
    })
}

/// Whether a registry is installed on this thread. Emission sites
/// check this before paying for `Instant::now` pairs.
pub fn is_active() -> bool {
    REGISTRY.with(|r| r.borrow().is_some())
}

/// Records one sample into the named phase; a no-op without a
/// registry.
pub fn record(name: &'static str, value: f64) {
    REGISTRY.with(|r| {
        if let Some(reg) = r.borrow_mut().as_mut() {
            match reg.phases.iter_mut().find(|(n, _)| *n == name) {
                Some((_, stats)) => stats.record(value),
                None => {
                    let mut stats = PhaseStats::default();
                    stats.record(value);
                    reg.phases.push((name, stats));
                }
            }
        }
    });
}

/// Times `f` and records the elapsed seconds under `name` when a
/// registry is installed; otherwise just runs `f`.
pub fn time<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    if !is_active() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    record(name, start.elapsed().as_secs_f64());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lifecycle_and_inertness() {
        assert!(!is_active());
        record("ghost", 1.0); // no registry: dropped silently
        assert_eq!(stop(), ProfileReport::default());

        start();
        assert!(is_active());
        record("build", 2.0);
        record("grid", 5.0);
        record("build", 4.0);
        let report = stop();
        assert!(!is_active());
        assert_eq!(
            report.phases.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            vec!["build", "grid"],
            "phases keep first-recorded order"
        );
        let build = report.phase("build").unwrap();
        assert_eq!(build.count, 2);
        assert_eq!(build.min, 2.0);
        assert_eq!(build.max, 4.0);
        assert_eq!(build.total, 6.0);
        assert_eq!(build.mean(), 3.0);
        assert_eq!(report.phase("fallback"), None);
    }

    #[test]
    fn time_runs_the_closure_either_way() {
        assert_eq!(time("idle", || 7), 7);
        start();
        assert_eq!(time("busy", || 7), 7);
        let report = stop();
        let busy = report.phase("busy").unwrap();
        assert_eq!(busy.count, 1);
        assert!(busy.total >= 0.0);
    }

    #[test]
    fn stats_single_sample_degenerate() {
        let mut s = PhaseStats::default();
        assert_eq!(s.mean(), 0.0);
        s.record(3.5);
        assert_eq!(
            (s.count, s.min, s.max, s.total, s.mean()),
            (1, 3.5, 3.5, 3.5, 3.5)
        );
    }
}
