//! Deterministic, slot-indexed fault injection (DESIGN.md §13).
//!
//! The paper's protocols assume nodes fail only between phases; this
//! module models the *unannounced* failures of the dynamic setting — a
//! node that silently dies mid-phase ([`FaultEvent::CrashStop`]), a
//! receiver that goes deaf for a window
//! ([`FaultEvent::TransientDeafness`]), a link whose receptions start
//! dropping probabilistically ([`FaultEvent::ReceptionDrop`]), a
//! transmitter whose power degrades ([`FaultEvent::PowerDegrade`]) —
//! as a [`FaultPlan`]: a per-node schedule fixed *before* the run.
//!
//! # Determinism contract
//!
//! A plan is pure data plus pure functions of `(plan seed, node,
//! slot)`: reception-drop rolls are computed by hashing the slot index
//! into a per-node SplitMix64 stream (the same hierarchical
//! seed-splitting discipline as `sinr_bench::ensemble`), **not** by
//! drawing from any stateful RNG. No draw order exists to perturb, so
//! an armed plan yields byte-identical fault traces on every backend
//! and at every thread count — the engine applies every fault on the
//! driving thread (action collection and outcome post-processing),
//! never inside the sharded channel phase. An **empty** armed plan is
//! byte-identical to no plan at all (pinned by the engine's fault
//! gates).

use sinr_geom::NodeId;

/// One scheduled fault for one node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// The node halts at the start of slot `at`: it stops transmitting,
    /// listening and *observing* — its protocol state and RNG stream
    /// are frozen exactly as they were at the end of slot `at - 1`.
    CrashStop {
        /// First slot the node is dead in.
        at: u64,
    },
    /// The node decodes nothing during `from..until` (half-open): every
    /// reception it would have had resolves to
    /// [`SlotOutcome::Idle`](crate::SlotOutcome::Idle) instead.
    TransientDeafness {
        /// First deaf slot.
        from: u64,
        /// First slot hearing is restored (exclusive end).
        until: u64,
    },
    /// From slot `from` on, each reception the node would have had is
    /// independently dropped with probability `prob` (decided by a pure
    /// hash of `(plan seed, node, slot)` — see the module docs).
    ReceptionDrop {
        /// Per-slot drop probability in `[0, 1]`.
        prob: f64,
        /// First affected slot.
        from: u64,
    },
    /// From slot `from` on, every transmission power the node's
    /// protocol chooses is multiplied by `factor` (must be positive and
    /// finite; `< 1` models a degrading amplifier).
    PowerDegrade {
        /// Multiplicative power factor, `> 0` and finite.
        factor: f64,
        /// First affected slot.
        from: u64,
    },
}

/// Compiled per-node fault state: the latest pushed event per category
/// wins, except crash-stop where the *earliest* wins (a node cannot
/// die twice).
#[derive(Clone, Copy, Debug, PartialEq)]
struct NodeFaults {
    crash_at: Option<u64>,
    deaf_from: u64,
    deaf_until: u64,
    drop_prob: f64,
    drop_from: u64,
    degrade_factor: f64,
    degrade_from: u64,
}

impl NodeFaults {
    const NONE: NodeFaults = NodeFaults {
        crash_at: None,
        deaf_from: 0,
        deaf_until: 0,
        drop_prob: 0.0,
        drop_from: 0,
        degrade_factor: 1.0,
        degrade_from: 0,
    };

    fn is_none(&self) -> bool {
        *self == NodeFaults::NONE
    }
}

/// A deterministic, slot-indexed fault schedule for every node of one
/// engine (see the module docs for the determinism contract).
///
/// Build one with [`FaultPlan::new`] + [`push`](FaultPlan::push), or
/// draw a random mix with [`FaultPlan::random`], then arm it on an
/// engine via [`Engine::arm_faults`](crate::Engine::arm_faults).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    nodes: Vec<NodeFaults>,
    events: usize,
}

/// SplitMix64 finalizer-based stream splitting — the exact mixer
/// `sinr_bench::ensemble::stream_seed` uses, duplicated here (the sim
/// crate sits below bench in the dependency order) and pinned against
/// the same golden value so the two can never drift apart.
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a mixed 64-bit word to a uniform f64 in `[0, 1)` (top 53 bits).
pub fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Domain-separation tags so the drop-roll stream, the random-mix
/// draws and any future consumer of the plan seed never collide.
const TAG_DROP_ROLL: u64 = 0x5EED_0001;
const TAG_RANDOM_MIX: u64 = 0x5EED_0002;

impl FaultPlan {
    /// An empty plan (no faults) for `n` nodes. `seed` feeds only the
    /// reception-drop rolls and [`random`](FaultPlan::random) draws.
    pub fn new(n: usize, seed: u64) -> Self {
        FaultPlan {
            seed,
            nodes: vec![NodeFaults::NONE; n],
            events: 0,
        }
    }

    /// Schedules `event` for `node`. Within one category the latest
    /// push wins, except [`FaultEvent::CrashStop`] where the earliest
    /// `at` wins.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range, a drop probability is outside
    /// `[0, 1]`, a degrade factor is non-positive or non-finite, or a
    /// deafness window is empty (`until <= from`).
    pub fn push(&mut self, node: NodeId, event: FaultEvent) {
        let f = &mut self.nodes[node];
        match event {
            FaultEvent::CrashStop { at } => {
                f.crash_at = Some(f.crash_at.map_or(at, |prev| prev.min(at)));
            }
            FaultEvent::TransientDeafness { from, until } => {
                assert!(until > from, "empty deafness window {from}..{until}");
                f.deaf_from = from;
                f.deaf_until = until;
            }
            FaultEvent::ReceptionDrop { prob, from } => {
                assert!(
                    (0.0..=1.0).contains(&prob),
                    "drop probability {prob} outside [0, 1]"
                );
                f.drop_prob = prob;
                f.drop_from = from;
            }
            FaultEvent::PowerDegrade { factor, from } => {
                assert!(
                    factor.is_finite() && factor > 0.0,
                    "degrade factor {factor} must be positive and finite"
                );
                f.degrade_factor = factor;
                f.degrade_from = from;
            }
        }
        self.events += 1;
    }

    /// Draws a random fault mix: for each node, each category fires
    /// independently with its [`FaultMix`] probability, with onset
    /// slots uniform in `[0, horizon)`. Entirely determined by
    /// `(seed, mix)` — byte-identical everywhere.
    pub fn random(n: usize, seed: u64, mix: &FaultMix) -> Self {
        let mut plan = FaultPlan::new(n, seed);
        let horizon = mix.horizon.max(1);
        for node in 0..n {
            let node_stream = stream_seed(seed ^ TAG_RANDOM_MIX, node as u64);
            let draw = |k: u64| stream_seed(node_stream, k);
            if unit_f64(draw(0)) < mix.crash {
                let at = draw(1) % horizon;
                plan.push(node, FaultEvent::CrashStop { at });
            }
            if unit_f64(draw(2)) < mix.deafness {
                let from = draw(3) % horizon;
                let len = 1 + draw(4) % horizon;
                plan.push(
                    node,
                    FaultEvent::TransientDeafness {
                        from,
                        until: from + len,
                    },
                );
            }
            if unit_f64(draw(5)) < mix.drop {
                let prob = 0.1 + 0.8 * unit_f64(draw(6));
                let from = draw(7) % horizon;
                plan.push(node, FaultEvent::ReceptionDrop { prob, from });
            }
            if unit_f64(draw(8)) < mix.degrade {
                let factor = 0.2 + 0.6 * unit_f64(draw(9));
                let from = draw(10) % horizon;
                plan.push(node, FaultEvent::PowerDegrade { factor, from });
            }
        }
        plan
    }

    /// Number of nodes the plan covers (must match the engine's).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan schedules no fault at all. An armed empty plan
    /// is byte-identical to no plan.
    pub fn is_empty(&self) -> bool {
        self.nodes.iter().all(NodeFaults::is_none)
    }

    /// Total events pushed (including category overwrites).
    pub fn events(&self) -> usize {
        self.events
    }

    /// The plan seed (drop rolls and random draws derive from it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether `node` is dead in `slot`.
    #[inline]
    pub fn crashed(&self, node: NodeId, slot: u64) -> bool {
        matches!(self.nodes[node].crash_at, Some(at) if slot >= at)
    }

    /// Whether `slot` is the exact slot `node` dies in (trace boundary).
    #[inline]
    pub fn crash_boundary(&self, node: NodeId, slot: u64) -> bool {
        self.nodes[node].crash_at == Some(slot)
    }

    /// Whether `node` is deaf in `slot`.
    #[inline]
    pub fn deaf(&self, node: NodeId, slot: u64) -> bool {
        let f = &self.nodes[node];
        slot >= f.deaf_from && slot < f.deaf_until
    }

    /// Whether `slot` is the first slot of `node`'s deafness window
    /// (trace boundary).
    #[inline]
    pub fn deaf_boundary(&self, node: NodeId, slot: u64) -> bool {
        let f = &self.nodes[node];
        f.deaf_until > f.deaf_from && slot == f.deaf_from
    }

    /// Whether `slot` is the first slot of `node`'s power degrade
    /// (trace boundary).
    #[inline]
    pub fn degrade_boundary(&self, node: NodeId, slot: u64) -> bool {
        let f = &self.nodes[node];
        f.degrade_factor != 1.0 && slot == f.degrade_from
    }

    /// The multiplicative power factor for `node` in `slot` (1.0 when
    /// no degrade is active).
    #[inline]
    pub fn power_factor(&self, node: NodeId, slot: u64) -> f64 {
        let f = &self.nodes[node];
        if slot >= f.degrade_from {
            f.degrade_factor
        } else {
            1.0
        }
    }

    /// Whether a reception `node` would have had in `slot` is dropped:
    /// a pure hash roll, no RNG state (see the module docs). Always
    /// false while the drop is inactive or its probability is zero.
    #[inline]
    pub fn drops_reception(&self, node: NodeId, slot: u64) -> bool {
        let f = &self.nodes[node];
        if f.drop_prob <= 0.0 || slot < f.drop_from {
            return false;
        }
        let roll = stream_seed(stream_seed(self.seed ^ TAG_DROP_ROLL, node as u64), slot);
        unit_f64(roll) < f.drop_prob
    }

    /// Whether any node has a reception-affecting fault (deafness or
    /// drop) — lets the engine skip the outcome post-pass entirely.
    #[inline]
    pub fn any_reception_faults(&self) -> bool {
        self.nodes
            .iter()
            .any(|f| f.deaf_until > f.deaf_from || f.drop_prob > 0.0)
    }

    /// The slot `node` crashes at, if a crash is scheduled.
    pub fn crash_slot(&self, node: NodeId) -> Option<u64> {
        self.nodes[node].crash_at
    }

    /// The nodes with a crash scheduled strictly before `horizon`, in
    /// ascending id order — the ground-truth kill-set a detector is
    /// measured against.
    pub fn crashed_before(&self, horizon: u64) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&v| matches!(self.nodes[v].crash_at, Some(at) if at < horizon))
            .collect()
    }
}

/// Per-category firing probabilities for [`FaultPlan::random`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultMix {
    /// Probability a node crash-stops.
    pub crash: f64,
    /// Probability a node gets a deafness window.
    pub deafness: f64,
    /// Probability a node gets a reception-drop fault.
    pub drop: f64,
    /// Probability a node gets a power degrade.
    pub degrade: f64,
    /// Onset slots are uniform in `[0, horizon)`.
    pub horizon: u64,
}

impl Default for FaultMix {
    fn default() -> Self {
        FaultMix {
            crash: 0.05,
            deafness: 0.05,
            drop: 0.05,
            degrade: 0.05,
            horizon: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The golden pin shared with `sinr_bench::ensemble::stream_seed`:
    /// if either copy of the mixer drifts, one of the two pins breaks.
    #[test]
    fn stream_seed_matches_the_ensemble_golden_value() {
        assert_eq!(stream_seed(0, 0), 0xe220_a839_7b1d_cdaf);
        assert_ne!(stream_seed(0, 1), stream_seed(0, 2));
        assert_ne!(stream_seed(1, 0), stream_seed(2, 0));
    }

    #[test]
    fn empty_plan_reports_nothing() {
        let plan = FaultPlan::new(8, 42);
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 8);
        assert_eq!(plan.events(), 0);
        for node in 0..8 {
            for slot in 0..64 {
                assert!(!plan.crashed(node, slot));
                assert!(!plan.deaf(node, slot));
                assert!(!plan.drops_reception(node, slot));
                assert_eq!(plan.power_factor(node, slot), 1.0);
            }
        }
        assert!(!plan.any_reception_faults());
        assert!(plan.crashed_before(u64::MAX).is_empty());
    }

    #[test]
    fn crash_is_permanent_and_earliest_wins() {
        let mut plan = FaultPlan::new(3, 0);
        plan.push(1, FaultEvent::CrashStop { at: 10 });
        plan.push(1, FaultEvent::CrashStop { at: 20 });
        plan.push(1, FaultEvent::CrashStop { at: 15 });
        assert!(!plan.crashed(1, 9));
        assert!(plan.crashed(1, 10));
        assert!(plan.crashed(1, 1_000_000));
        assert!(plan.crash_boundary(1, 10));
        assert!(!plan.crash_boundary(1, 11));
        assert_eq!(plan.crash_slot(1), Some(10));
        assert_eq!(plan.crash_slot(0), None);
        assert_eq!(plan.crashed_before(10), Vec::<NodeId>::new());
        assert_eq!(plan.crashed_before(11), vec![1]);
    }

    #[test]
    fn deafness_window_is_half_open() {
        let mut plan = FaultPlan::new(2, 0);
        plan.push(0, FaultEvent::TransientDeafness { from: 5, until: 8 });
        assert!(!plan.deaf(0, 4));
        assert!(plan.deaf(0, 5));
        assert!(plan.deaf(0, 7));
        assert!(!plan.deaf(0, 8));
        assert!(!plan.deaf(1, 6));
        assert!(plan.deaf_boundary(0, 5));
        assert!(!plan.deaf_boundary(0, 6));
        assert!(!plan.deaf_boundary(1, 0), "empty window has no boundary");
        assert!(plan.any_reception_faults());
        assert!(!plan.is_empty());
    }

    #[test]
    fn power_degrade_activates_at_its_slot() {
        let mut plan = FaultPlan::new(2, 0);
        plan.push(
            1,
            FaultEvent::PowerDegrade {
                factor: 0.5,
                from: 3,
            },
        );
        assert_eq!(plan.power_factor(1, 2), 1.0);
        assert_eq!(plan.power_factor(1, 3), 0.5);
        assert_eq!(plan.power_factor(0, 3), 1.0);
        assert!(plan.degrade_boundary(1, 3));
        assert!(!plan.degrade_boundary(1, 4));
        assert!(!plan.degrade_boundary(0, 0), "no degrade, no boundary");
        // A degrade alone is not a reception fault.
        assert!(!plan.any_reception_faults());
    }

    #[test]
    fn drop_rolls_are_pure_functions_of_seed_node_slot() {
        let mut plan = FaultPlan::new(4, 7);
        plan.push(2, FaultEvent::ReceptionDrop { prob: 0.5, from: 0 });
        let rolls: Vec<bool> = (0..256).map(|s| plan.drops_reception(2, s)).collect();
        // Re-querying (any order) gives identical answers.
        for s in (0..256).rev() {
            assert_eq!(plan.drops_reception(2, s), rolls[s as usize]);
        }
        // Roughly half fire at prob 0.5 — the hash is not degenerate.
        let fired = rolls.iter().filter(|&&b| b).count();
        assert!((64..192).contains(&fired), "fired {fired}/256");
        // Other nodes and a different seed roll differently.
        assert!(!plan.drops_reception(1, 0) && !plan.drops_reception(3, 9));
        let mut other = FaultPlan::new(4, 8);
        other.push(2, FaultEvent::ReceptionDrop { prob: 0.5, from: 0 });
        let other_rolls: Vec<bool> = (0..256).map(|s| other.drops_reception(2, s)).collect();
        assert_ne!(rolls, other_rolls);
    }

    #[test]
    fn drop_respects_onset_and_zero_prob() {
        let mut plan = FaultPlan::new(1, 1);
        plan.push(
            0,
            FaultEvent::ReceptionDrop {
                prob: 1.0,
                from: 10,
            },
        );
        assert!(!plan.drops_reception(0, 9));
        assert!(plan.drops_reception(0, 10));
        plan.push(0, FaultEvent::ReceptionDrop { prob: 0.0, from: 0 });
        assert!(!plan.drops_reception(0, 10));
    }

    #[test]
    fn random_mix_is_reproducible_and_seed_sensitive() {
        let mix = FaultMix {
            crash: 0.3,
            deafness: 0.3,
            drop: 0.3,
            degrade: 0.3,
            horizon: 32,
        };
        let a = FaultPlan::random(100, 5, &mix);
        let b = FaultPlan::random(100, 5, &mix);
        assert_eq!(a, b);
        let c = FaultPlan::random(100, 6, &mix);
        assert_ne!(a, c);
        assert!(a.events() > 0, "a 0.3-rate mix over 100 nodes fires");
        // Zero rates draw nothing.
        let empty = FaultPlan::random(
            100,
            5,
            &FaultMix {
                crash: 0.0,
                deafness: 0.0,
                drop: 0.0,
                degrade: 0.0,
                horizon: 32,
            },
        );
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_drop_probability_panics() {
        FaultPlan::new(1, 0).push(0, FaultEvent::ReceptionDrop { prob: 1.5, from: 0 });
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn invalid_degrade_factor_panics() {
        FaultPlan::new(1, 0).push(
            0,
            FaultEvent::PowerDegrade {
                factor: 0.0,
                from: 0,
            },
        );
    }

    #[test]
    #[should_panic(expected = "empty deafness window")]
    fn empty_deafness_window_panics() {
        FaultPlan::new(1, 0).push(0, FaultEvent::TransientDeafness { from: 5, until: 5 });
    }
}
