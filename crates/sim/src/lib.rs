//! A deterministic slotted-time single-channel radio simulator with
//! SINR-accurate message delivery.
//!
//! The PODC 2012 model (§3): nodes have synchronized clocks and run in
//! slotted time; the only means of communication is the shared wireless
//! channel; a message from `u` is decoded at a non-transmitting `v` iff
//! the SINR constraint (Eqn 1) holds. This crate turns that model into
//! an executable substrate:
//!
//! - [`Protocol`] — per-node state machines choosing an [`Action`] each
//!   slot (transmit with a chosen power, listen, or sleep);
//! - [`Engine`] — advances slots, resolves deliveries via `sinr-phy`,
//!   hands each listener at most one decoded [`Reception`] (guaranteed
//!   unique for `β ≥ 1`), and reports measured SINR/affectance to the
//!   receiver (the measurement assumption of §8.2);
//! - deterministic per-node RNG streams derived from one seed.
//!
//! # Example
//!
//! ```
//! use sinr_geom::{gen, NodeId};
//! use sinr_phy::SinrParams;
//! use sinr_sim::{Action, Engine, Protocol, SlotOutcome};
//! use rand::rngs::StdRng;
//!
//! // Node 0 shouts once; everyone else listens.
//! struct Shout;
//! impl Protocol for Shout {
//!     type Msg = &'static str;
//!     fn begin_slot(&mut self, node: NodeId, slot: u64, _rng: &mut StdRng)
//!         -> Action<Self::Msg> {
//!         if node == 0 && slot == 0 {
//!             Action::Transmit { power: 1000.0, msg: "hello" }
//!         } else {
//!             Action::Listen
//!         }
//!     }
//!     fn end_slot(&mut self, _: NodeId, _: u64, _: SlotOutcome<Self::Msg>,
//!                 _: &mut StdRng) {}
//! }
//!
//! let params = SinrParams::default();
//! let inst = gen::line(3)?;
//! let mut engine = Engine::new(&params, &inst, |_| Shout, 7);
//! let report = engine.step();
//! assert_eq!(report.transmissions, 1);
//! assert!(report.receptions >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
pub mod faults;
pub mod pool;
#[cfg(feature = "profile")]
pub mod profile;
mod protocol;
#[cfg(feature = "serde")]
pub mod snapshot;
#[cfg(feature = "trace")]
pub mod trace;

pub use engine::{
    Engine, EngineBackend, EngineOptions, EngineStats, SlotReport, PARALLEL_MIN_NODES,
};
pub use faults::{FaultEvent, FaultMix, FaultPlan};
pub use protocol::{Action, Protocol, Reception, SlotOutcome};
