//! A persistent pool of scoped worker threads.
//!
//! This is the pooled-dispatch pattern the parallel engine backend
//! introduced (DESIGN.md §8.4), extracted so other batch workloads —
//! notably the multi-seed ensemble driver in `sinr-bench` — reuse the
//! same machinery instead of re-growing their own: per-worker job
//! channels, one shared result channel, and `catch_unwind` around every
//! job so a worker panic travels back to the dispatcher and resumes
//! there with its original payload instead of deadlocking a `recv`.
//!
//! The pool is *scoped*: [`with_pool`] spawns the workers, hands the
//! caller a [`PoolHandle`] for the duration of `body`, and joins every
//! worker before returning — so jobs and results may borrow from the
//! caller's stack frame. Built on the `crossbeam` compat shim (itself
//! `std::thread::scope`), which keeps the code upstream-API-valid.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;

/// Dispatch side of a running pool: send jobs to specific workers,
/// receive `(worker, result)` pairs in completion order.
///
/// Only exists inside the `body` closure of [`with_pool`]; dropping it
/// (or returning from `body`) closes the job channels, which is what
/// ends the workers' receive loops.
#[derive(Debug)]
pub struct PoolHandle<J, R> {
    job_txs: Vec<mpsc::Sender<J>>,
    result_rx: mpsc::Receiver<(usize, std::thread::Result<R>)>,
}

impl<J, R> PoolHandle<J, R> {
    /// Number of workers in the pool.
    pub fn threads(&self) -> usize {
        self.job_txs.len()
    }

    /// Queues `job` on worker `worker`'s channel.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range, or if the worker exited —
    /// which cannot happen while the handle is alive: workers only stop
    /// when the job channels close, and a panicking job is caught and
    /// reported through [`recv`](Self::recv) rather than killing the
    /// worker loop.
    pub fn send(&self, worker: usize, job: J) {
        self.job_txs[worker].send(job).expect("pool worker alive");
    }

    /// Receives the next completed job as `(worker index, result)`.
    ///
    /// Blocks until a worker finishes. If the job panicked, the payload
    /// is resumed *here*, on the dispatcher thread — callers that sent
    /// N jobs and recv N results therefore observe worker panics as
    /// their own, with the original message.
    ///
    /// # Panics
    ///
    /// Resumes the panic of a panicked job; also panics if every worker
    /// exited (impossible while the handle is alive, as for
    /// [`send`](Self::send)).
    pub fn recv(&self) -> (usize, R) {
        let (w, result) = self.result_rx.recv().expect("pool worker alive");
        match result {
            Ok(r) => (w, r),
            Err(payload) => resume_unwind(payload),
        }
    }
}

/// Runs `body` with a pool of `threads` persistent scoped workers.
///
/// Each worker `w` builds its private per-thread state once via
/// `make_scratch(w)` (e.g. a reusable query scratch buffer), then loops:
/// receive a job, run `worker(w, &mut scratch, job)` under
/// `catch_unwind`, send the outcome back. All workers are joined before
/// `with_pool` returns, and a panic anywhere — in a job, in
/// `make_scratch` (deferred to the first job), in `body` itself —
/// propagates out with its original payload.
///
/// Jobs are *addressed*: `body` chooses which worker runs which job via
/// [`PoolHandle::send`]. Static sharding sends one job to every worker
/// (the engine's per-slot broadcast); dynamic load balancing sends the
/// next job to whichever worker just reported a result (the ensemble
/// driver's self-scheduling loop).
pub fn with_pool<J, R, S, T>(
    threads: usize,
    make_scratch: impl Fn(usize) -> S + Sync,
    worker: impl Fn(usize, &mut S, J) -> R + Sync,
    body: impl FnOnce(&PoolHandle<J, R>) -> T,
) -> T
where
    J: Send,
    R: Send,
{
    assert!(threads > 0, "with_pool needs at least one worker");
    let out = crossbeam::scope(|s| {
        let (result_tx, result_rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
        let mut job_txs: Vec<mpsc::Sender<J>> = Vec::with_capacity(threads);
        for w in 0..threads {
            let (job_tx, job_rx) = mpsc::channel::<J>();
            job_txs.push(job_tx);
            let result_tx = result_tx.clone();
            let make_scratch = &make_scratch;
            let worker = &worker;
            s.spawn(move |_| {
                // Scratch is built lazily inside the first job's
                // catch_unwind: a panicking `make_scratch` then reports
                // through the result channel like any job panic, and
                // the worker loop stays alive — it must never die while
                // the job channels are open, or a dispatcher blocks in
                // `recv` / trips `send`'s "worker alive" invariant with
                // the original payload lost.
                let mut scratch: Option<S> = None;
                while let Ok(job) = job_rx.recv() {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let scratch = scratch.get_or_insert_with(|| make_scratch(w));
                        worker(w, scratch, job)
                    }));
                    if result_tx.send((w, result)).is_err() {
                        break; // the dispatcher is gone; nobody is listening
                    }
                }
            });
        }
        let handle = PoolHandle { job_txs, result_rx };
        body(&handle)
        // `handle` drops here, closing the job channels; the scope then
        // joins every worker before returning.
    });
    match out {
        Ok(t) => t,
        // Propagate with the original payload (a panicked job resumed
        // in `body`, or a panic of `body` itself), not a wrapper.
        Err(payload) => resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Self-scheduling map over the pool: results land in input order
    /// regardless of which worker ran what.
    #[test]
    fn dynamic_dispatch_preserves_order() {
        let jobs: Vec<u64> = (0..37).collect();
        let n = jobs.len();
        let results = with_pool(
            3,
            |_| (),
            |_, _, (i, x): (usize, u64)| (i, x * x),
            |pool| {
                let mut out: Vec<Option<u64>> = vec![None; n];
                let mut next = 0usize;
                let mut in_flight = 0usize;
                for w in 0..pool.threads().min(n) {
                    pool.send(w, (next, jobs[next]));
                    next += 1;
                    in_flight += 1;
                }
                while in_flight > 0 {
                    let (w, (i, r)) = pool.recv();
                    out[i] = Some(r);
                    in_flight -= 1;
                    if next < n {
                        pool.send(w, (next, jobs[next]));
                        next += 1;
                        in_flight += 1;
                    }
                }
                out
            },
        );
        let got: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..37).map(|x| x * x).collect::<Vec<u64>>());
    }

    /// Per-worker scratch is built once per thread and reused across
    /// jobs (the whole point of a persistent pool).
    #[test]
    fn scratch_persists_across_jobs() {
        let counts = with_pool(
            2,
            |_| 0u32,
            |w, seen, _job: ()| {
                *seen += 1;
                (w, *seen)
            },
            |pool| {
                for i in 0..10 {
                    pool.send(i % 2, ());
                }
                (0..10).map(|_| pool.recv().1).collect::<Vec<_>>()
            },
        );
        // Each worker saw 5 jobs; its scratch counted them up.
        let max_per_worker: Vec<u32> = (0..2)
            .map(|w| {
                counts
                    .iter()
                    .filter(|(cw, _)| *cw == w)
                    .map(|&(_, c)| c)
                    .max()
                    .unwrap()
            })
            .collect();
        assert_eq!(max_per_worker, vec![5, 5]);
    }

    /// A panicking job resumes on the dispatcher with its payload.
    #[test]
    #[should_panic(expected = "job 3 exploded")]
    fn job_panic_propagates_with_payload() {
        with_pool(
            2,
            |_| (),
            |_, _, j: usize| {
                if j == 3 {
                    panic!("job 3 exploded");
                }
                j
            },
            |pool| {
                for j in 0..6 {
                    pool.send(j % 2, j);
                }
                for _ in 0..6 {
                    pool.recv();
                }
            },
        );
    }

    /// A panicking `make_scratch` reports through the result channel
    /// like a job panic — the worker survives to field further jobs,
    /// so the dispatcher sees the original payload instead of a
    /// deadlocked `recv` or a dead job channel.
    #[test]
    #[should_panic(expected = "no scratch today")]
    fn make_scratch_panic_propagates_without_deadlock() {
        with_pool(
            2,
            |_| -> u32 { panic!("no scratch today") },
            |_, _, j: usize| j,
            |pool| {
                for j in 0..4 {
                    pool.send(j % 2, j);
                }
                for _ in 0..4 {
                    pool.recv();
                }
            },
        );
    }

    /// Workers borrow from the caller's stack (scoped threads).
    #[test]
    fn jobs_borrow_caller_data() {
        let data: Vec<u64> = (0..100).collect();
        let total = with_pool(
            4,
            |_| (),
            |_, _, i: usize| data[i],
            |pool| {
                for i in 0..data.len() {
                    pool.send(i % 4, i);
                }
                (0..data.len()).map(|_| pool.recv().1).sum::<u64>()
            },
        );
        assert_eq!(total, 4950);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        with_pool(0, |_| (), |_, _, (): ()| (), |_| ());
    }
}
