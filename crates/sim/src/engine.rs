//! The slotted simulation engine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sinr_geom::{Instance, NodeId};
use sinr_links::Link;
use sinr_phy::field::{decode_best_exact, FieldScratch, InterferenceField};
use sinr_phy::{feasibility, SinrParams};

use crate::protocol::{Action, Protocol, Reception, SlotOutcome};

/// How the engine resolves the channel each slot.
///
/// Both backends produce **bit-identical** slot outcomes — decode
/// decisions, decoded senders, and the reported SINR/affectance floats
/// — because the grid backend only takes a shortcut when the decision
/// is certified and always reports values from the canonical
/// naive-order sums (see `sinr_phy::field` and DESIGN.md §7). The
/// naive backend exists as the reference for parity testing and
/// benchmarking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineBackend {
    /// All-pairs channel resolution: `O(listeners × transmitters²)`
    /// per slot.
    Naive,
    /// Spatially-indexed resolution through one
    /// [`InterferenceField`] built per slot.
    #[default]
    Grid,
}

impl EngineBackend {
    /// Short label (`naive` / `grid`) for CLIs and tables.
    pub fn label(&self) -> &'static str {
        match self {
            EngineBackend::Naive => "naive",
            EngineBackend::Grid => "grid",
        }
    }
}

impl std::str::FromStr for EngineBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(EngineBackend::Naive),
            "grid" => Ok(EngineBackend::Grid),
            other => Err(format!("unknown engine backend `{other}` (naive|grid)")),
        }
    }
}

/// Summary of one simulated slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotReport {
    /// Slot index that was executed.
    pub slot: u64,
    /// Number of transmitting nodes.
    pub transmissions: usize,
    /// Number of nodes that decoded a message.
    pub receptions: usize,
    /// Number of nodes that listened without decoding anything.
    pub idle_listeners: usize,
}

/// Cumulative statistics across all executed slots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Slots executed so far.
    pub slots: u64,
    /// Total transmissions across all slots.
    pub transmissions: u64,
    /// Total successful receptions across all slots.
    pub receptions: u64,
}

/// The slotted-time SINR channel simulator.
///
/// Owns one [`Protocol`] value and one RNG stream per node; each call to
/// [`step`](Engine::step) advances global time by one slot:
///
/// 1. every node picks an [`Action`];
/// 2. the channel is resolved: a listener decodes the transmitter with
///    the highest SINR at its location if that SINR reaches `β`
///    (unique for `β ≥ 1`, `N > 0`); transmitters hear nothing
///    (half-duplex);
/// 3. every node observes its [`SlotOutcome`].
pub struct Engine<'a, P: Protocol> {
    params: &'a SinrParams,
    instance: &'a Instance,
    nodes: Vec<P>,
    rngs: Vec<StdRng>,
    slot: u64,
    stats: EngineStats,
    backend: EngineBackend,
    scratch: FieldScratch,
}

impl<'a, P: Protocol + std::fmt::Debug> std::fmt::Debug for Engine<'a, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("slot", &self.slot)
            .field("nodes", &self.nodes.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<'a, P: Protocol> Engine<'a, P> {
    /// Creates an engine with one protocol state per node, built by
    /// `make_node`, and per-node RNG streams derived from `seed`.
    ///
    /// Uses the default [`EngineBackend::Grid`] channel resolution; use
    /// [`with_backend`](Engine::with_backend) to select explicitly.
    pub fn new(
        params: &'a SinrParams,
        instance: &'a Instance,
        make_node: impl FnMut(NodeId) -> P,
        seed: u64,
    ) -> Self {
        Self::with_backend(params, instance, make_node, seed, EngineBackend::default())
    }

    /// [`new`](Engine::new) with an explicit channel-resolution backend.
    pub fn with_backend(
        params: &'a SinrParams,
        instance: &'a Instance,
        mut make_node: impl FnMut(NodeId) -> P,
        seed: u64,
        backend: EngineBackend,
    ) -> Self {
        let n = instance.len();
        let mut seeder = StdRng::seed_from_u64(seed);
        let nodes = (0..n).map(&mut make_node).collect();
        let rngs = (0..n)
            .map(|_| StdRng::seed_from_u64(seeder.gen()))
            .collect();
        Engine {
            params,
            instance,
            nodes,
            rngs,
            slot: 0,
            stats: EngineStats::default(),
            backend,
            scratch: FieldScratch::default(),
        }
    }

    /// The channel-resolution backend in use.
    #[inline]
    pub fn backend(&self) -> EngineBackend {
        self.backend
    }

    /// The next slot index to execute.
    #[inline]
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Cumulative statistics.
    #[inline]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The per-node protocol states.
    #[inline]
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Mutable access to the per-node protocol states (for extracting
    /// results after a run).
    #[inline]
    pub fn nodes_mut(&mut self) -> &mut [P] {
        &mut self.nodes
    }

    /// The simulated instance.
    #[inline]
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    /// Executes one slot and returns its report.
    ///
    /// # Panics
    ///
    /// Panics if a protocol transmits with a non-positive or non-finite
    /// power (a programming error in the protocol).
    pub fn step(&mut self) -> SlotReport {
        let slot = self.slot;
        let n = self.nodes.len();

        // Phase 1: collect actions.
        let mut actions: Vec<Action<P::Msg>> = Vec::with_capacity(n);
        for (id, node) in self.nodes.iter_mut().enumerate() {
            let a = node.begin_slot(id, slot, &mut self.rngs[id]);
            if let Action::Transmit { power, .. } = &a {
                assert!(
                    power.is_finite() && *power > 0.0,
                    "node {id} transmitted with invalid power {power} in slot {slot}"
                );
            }
            actions.push(a);
        }

        // Phase 2: resolve the channel. The grid backend batches the
        // slot's whole transmitter set into one interference field and
        // resolves every listener against it (with reusable scratch, so
        // nothing is allocated per receiver); decisions and reported
        // values are bit-identical to the naive path.
        let transmitters: Vec<(NodeId, f64)> = actions
            .iter()
            .enumerate()
            .filter_map(|(id, a)| match a {
                Action::Transmit { power, .. } => Some((id, *power)),
                _ => None,
            })
            .collect();
        let field = match self.backend {
            EngineBackend::Grid if !transmitters.is_empty() => Some(InterferenceField::build(
                self.params,
                self.instance,
                &transmitters,
            )),
            _ => None,
        };
        let mut scratch = std::mem::take(&mut self.scratch);

        let mut report = SlotReport {
            slot,
            transmissions: transmitters.len(),
            ..Default::default()
        };

        let mut outcomes: Vec<SlotOutcome<P::Msg>> = Vec::with_capacity(n);
        for (id, action) in actions.iter().enumerate() {
            let decode = |v: NodeId, scratch: &mut FieldScratch| match &field {
                Some(f) => f.decode_best_with(v, scratch),
                None => decode_best_exact(self.params, self.instance, v, &transmitters),
            };
            let outcome = match action {
                Action::Transmit { .. } => SlotOutcome::Transmitted,
                Action::Sleep => SlotOutcome::Slept,
                Action::Listen => match decode(id, &mut scratch) {
                    Some((from, power, sinr)) => {
                        let link = Link::new(from, id);
                        let affectance = feasibility::measured_affectance(
                            self.params,
                            self.instance,
                            link,
                            power,
                            &transmitters,
                        )
                        .unwrap_or(f64::NAN);
                        let msg = match &actions[from] {
                            Action::Transmit { msg, .. } => msg.clone(),
                            _ => unreachable!("decoded node is a transmitter"),
                        };
                        SlotOutcome::Received(Reception {
                            from,
                            msg,
                            distance: self.instance.distance(from, id),
                            sinr,
                            affectance,
                        })
                    }
                    None => SlotOutcome::Idle,
                },
            };
            outcomes.push(outcome);
        }
        drop(field);
        self.scratch = scratch;

        // Phase 3: report outcomes.
        for (id, outcome) in outcomes.into_iter().enumerate() {
            match &outcome {
                SlotOutcome::Received(_) => report.receptions += 1,
                SlotOutcome::Idle => report.idle_listeners += 1,
                _ => {}
            }
            self.nodes[id].end_slot(id, slot, outcome, &mut self.rngs[id]);
        }

        self.slot += 1;
        self.stats.slots += 1;
        self.stats.transmissions += report.transmissions as u64;
        self.stats.receptions += report.receptions as u64;
        report
    }

    /// Runs `slots` slots unconditionally.
    pub fn run(&mut self, slots: u64) {
        for _ in 0..slots {
            self.step();
        }
    }

    /// Runs until `done` returns true (checked after each slot) or
    /// `max_slots` have executed; returns the number of slots executed.
    pub fn run_until(&mut self, max_slots: u64, mut done: impl FnMut(&[P]) -> bool) -> u64 {
        let start = self.slot;
        while self.slot - start < max_slots {
            self.step();
            if done(&self.nodes) {
                break;
            }
        }
        self.slot - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geom::gen;

    /// Every node transmits unconditionally with the given power.
    #[derive(Debug)]
    struct AlwaysTx(f64);
    impl Protocol for AlwaysTx {
        type Msg = ();
        fn begin_slot(&mut self, _: NodeId, _: u64, _: &mut StdRng) -> Action<()> {
            Action::Transmit {
                power: self.0,
                msg: (),
            }
        }
        fn end_slot(&mut self, _: NodeId, _: u64, _: SlotOutcome<()>, _: &mut StdRng) {}
    }

    /// Node `tx` transmits every slot; others listen and count decodes.
    #[derive(Debug)]
    struct OneTx {
        tx: NodeId,
        power: f64,
        decoded: usize,
        last_sinr: f64,
    }
    impl Protocol for OneTx {
        type Msg = u64;
        fn begin_slot(&mut self, node: NodeId, slot: u64, _: &mut StdRng) -> Action<u64> {
            if node == self.tx {
                Action::Transmit {
                    power: self.power,
                    msg: slot,
                }
            } else {
                Action::Listen
            }
        }
        fn end_slot(&mut self, _: NodeId, _: u64, o: SlotOutcome<u64>, _: &mut StdRng) {
            if let SlotOutcome::Received(r) = o {
                self.decoded += 1;
                self.last_sinr = r.sinr;
            }
        }
    }

    #[test]
    fn lone_transmitter_reaches_everyone() {
        let params = SinrParams::default();
        let inst = gen::line(5).unwrap();
        let power = params.min_power_for_length(inst.delta()) * 10.0;
        let mut engine = Engine::new(
            &params,
            &inst,
            |_| OneTx {
                tx: 0,
                power,
                decoded: 0,
                last_sinr: 0.0,
            },
            1,
        );
        let report = engine.step();
        assert_eq!(report.transmissions, 1);
        assert_eq!(report.receptions, 4);
        for (id, node) in engine.nodes().iter().enumerate() {
            if id != 0 {
                assert_eq!(node.decoded, 1);
                assert!(node.last_sinr >= params.beta());
            }
        }
    }

    #[test]
    fn transmitters_hear_nothing() {
        let params = SinrParams::default();
        let inst = gen::line(2).unwrap();
        let mut engine = Engine::new(&params, &inst, |_| AlwaysTx(100.0), 2);
        let report = engine.step();
        assert_eq!(report.transmissions, 2);
        assert_eq!(report.receptions, 0);
    }

    #[test]
    fn interference_blocks_decoding() {
        let params = SinrParams::default();
        // Listener at the midpoint of two equal-power transmitters:
        // equal signal ⇒ SINR ≈ 1 < β = 2 ⇒ no decode.
        let inst = sinr_geom::Instance::new(vec![
            sinr_geom::Point::new(0.0, 0.0),
            sinr_geom::Point::new(2.0, 0.0),
            sinr_geom::Point::new(1.0, 0.0),
        ])
        .unwrap();
        #[derive(Debug)]
        struct Mid {
            got: bool,
        }
        impl Protocol for Mid {
            type Msg = ();
            fn begin_slot(&mut self, node: NodeId, _: u64, _: &mut StdRng) -> Action<()> {
                if node == 2 {
                    Action::Listen
                } else {
                    Action::Transmit {
                        power: 1000.0,
                        msg: (),
                    }
                }
            }
            fn end_slot(&mut self, _: NodeId, _: u64, o: SlotOutcome<()>, _: &mut StdRng) {
                if matches!(o, SlotOutcome::Received(_)) {
                    self.got = true;
                }
            }
        }
        let mut engine = Engine::new(&params, &inst, |_| Mid { got: false }, 3);
        engine.step();
        assert!(!engine.nodes()[2].got, "midpoint listener must be jammed");
    }

    #[test]
    fn sleeping_nodes_do_nothing() {
        let params = SinrParams::default();
        let inst = gen::line(3).unwrap();
        #[derive(Debug)]
        struct Sleepy;
        impl Protocol for Sleepy {
            type Msg = ();
            fn begin_slot(&mut self, _: NodeId, _: u64, _: &mut StdRng) -> Action<()> {
                Action::Sleep
            }
            fn end_slot(&mut self, _: NodeId, _: u64, o: SlotOutcome<()>, _: &mut StdRng) {
                assert_eq!(o, SlotOutcome::Slept);
            }
        }
        let mut engine = Engine::new(&params, &inst, |_| Sleepy, 4);
        let report = engine.step();
        assert_eq!(report.transmissions, 0);
        assert_eq!(report.receptions, 0);
        assert_eq!(report.idle_listeners, 0);
    }

    /// The two backends are observably identical: same reports, same
    /// protocol states, same Reception floats to the bit.
    #[test]
    fn backends_are_bit_identical() {
        let params = SinrParams::default();

        /// `(slot, from, distance bits, sinr bits, affectance bits)`.
        type ReceptionRecord = (u64, NodeId, u64, u64, u64);

        #[derive(Debug, Default)]
        struct Recorder {
            receptions: Vec<ReceptionRecord>,
        }
        impl Protocol for Recorder {
            type Msg = ();
            fn begin_slot(&mut self, _: NodeId, _: u64, rng: &mut StdRng) -> Action<()> {
                if rng.gen_bool(0.25) {
                    Action::Transmit {
                        power: 600.0,
                        msg: (),
                    }
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, _: NodeId, slot: u64, o: SlotOutcome<()>, _: &mut StdRng) {
                if let SlotOutcome::Received(r) = o {
                    self.receptions.push((
                        slot,
                        r.from,
                        r.distance.to_bits(),
                        r.sinr.to_bits(),
                        r.affectance.to_bits(),
                    ));
                }
            }
        }

        for seed in [1u64, 7, 42] {
            let inst = gen::uniform_square(80, 1.5, seed).unwrap();
            let run = |backend| {
                let mut e =
                    Engine::with_backend(&params, &inst, |_| Recorder::default(), seed, backend);
                let reports: Vec<SlotReport> = (0..12).map(|_| e.step()).collect();
                let states: Vec<Vec<ReceptionRecord>> =
                    e.nodes().iter().map(|n| n.receptions.clone()).collect();
                (reports, e.stats(), states)
            };
            let naive = run(EngineBackend::Naive);
            let grid = run(EngineBackend::Grid);
            assert_eq!(naive.0, grid.0, "seed {seed}: slot reports diverged");
            assert_eq!(naive.1, grid.1, "seed {seed}: stats diverged");
            assert_eq!(naive.2, grid.2, "seed {seed}: reception bits diverged");
        }
    }

    #[test]
    fn determinism_same_seed_same_stats() {
        let params = SinrParams::default();
        let inst = gen::uniform_square(30, 2.0, 5).unwrap();

        /// Random transmitter with p=1/2 per slot: exercises RNG streams.
        #[derive(Debug)]
        struct Coin {
            decodes: u64,
        }
        impl Protocol for Coin {
            type Msg = ();
            fn begin_slot(&mut self, _: NodeId, _: u64, rng: &mut StdRng) -> Action<()> {
                if rng.gen_bool(0.5) {
                    Action::Transmit {
                        power: 500.0,
                        msg: (),
                    }
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, _: NodeId, _: u64, o: SlotOutcome<()>, _: &mut StdRng) {
                if matches!(o, SlotOutcome::Received(_)) {
                    self.decodes += 1;
                }
            }
        }

        let run = |seed| {
            let mut e = Engine::new(&params, &inst, |_| Coin { decodes: 0 }, seed);
            e.run(20);
            (
                e.stats(),
                e.nodes().iter().map(|n| n.decodes).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).1, run(10).1);
    }

    #[test]
    fn run_until_stops_early() {
        let params = SinrParams::default();
        let inst = gen::line(4).unwrap();
        let power = params.min_power_for_length(inst.delta()) * 10.0;
        let mut engine = Engine::new(
            &params,
            &inst,
            |_| OneTx {
                tx: 0,
                power,
                decoded: 0,
                last_sinr: 0.0,
            },
            1,
        );
        let executed = engine.run_until(100, |nodes| nodes.iter().skip(1).all(|n| n.decoded >= 3));
        assert_eq!(executed, 3);
        assert_eq!(engine.slot(), 3);
    }

    #[test]
    fn reception_reports_distance_and_affectance() {
        let params = SinrParams::default();
        let inst = gen::line(3).unwrap();
        #[derive(Debug, Default)]
        struct Probe {
            rec: Option<Reception<()>>,
        }
        impl Protocol for Probe {
            type Msg = ();
            fn begin_slot(&mut self, node: NodeId, _: u64, _: &mut StdRng) -> Action<()> {
                if node == 0 {
                    Action::Transmit {
                        power: 1e4,
                        msg: (),
                    }
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, _: NodeId, _: u64, o: SlotOutcome<()>, _: &mut StdRng) {
                if let SlotOutcome::Received(r) = o {
                    self.rec = Some(r);
                }
            }
        }
        let mut engine = Engine::new(&params, &inst, |_| Probe::default(), 0);
        engine.step();
        let r = engine.nodes()[1]
            .rec
            .clone()
            .expect("node 1 decodes node 0");
        assert_eq!(r.from, 0);
        assert_eq!(r.distance, 1.0);
        // Sole transmitter: zero interference, zero affectance.
        assert!(r.affectance.abs() < 1e-12);
        assert!(r.sinr > params.beta());
    }

    #[test]
    #[should_panic(expected = "invalid power")]
    fn invalid_power_panics() {
        let params = SinrParams::default();
        let inst = gen::line(2).unwrap();
        let mut engine = Engine::new(&params, &inst, |_| AlwaysTx(-1.0), 0);
        engine.step();
    }
}
