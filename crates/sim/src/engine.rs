//! The slotted simulation engine.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sinr_geom::{Instance, NodeId};
use sinr_links::Link;
use sinr_phy::field::{
    decode_best_exact_with_model, FieldBuffers, FieldScratch, InterferenceField, PhaseTimes,
    QueryStats,
};
use sinr_phy::{feasibility, ChannelModel, SinrParams};

use crate::faults::FaultPlan;
use crate::pool::with_pool;
use crate::protocol::{Action, Protocol, Reception, SlotOutcome};

/// Segment timer for the per-slot profiling phases: each
/// [`lap`](PhaseClock::lap) records the time since the previous lap
/// under the given phase name and starts the next segment. Inert (no
/// `Instant` calls) when no profiling registry is active.
#[cfg(feature = "profile")]
struct PhaseClock(Option<std::time::Instant>);

#[cfg(feature = "profile")]
impl PhaseClock {
    fn start() -> Self {
        PhaseClock(if crate::profile::is_active() {
            Some(std::time::Instant::now())
        } else {
            None
        })
    }

    fn lap(&mut self, name: &'static str) {
        if let Some(t0) = self.0 {
            crate::profile::record(name, t0.elapsed().as_secs_f64());
            self.0 = Some(std::time::Instant::now());
        }
    }
}

/// Recycled per-slot buffers — the engine's slot arena: the action and
/// outcome vectors, the transmitter list, the interference-field
/// allocations ([`FieldBuffers`]), and, for the pooled loop, the
/// per-worker chunk buffers. Everything here is *capacity*, not state:
/// every slot drains and refills them, so steady-state slots allocate
/// nothing on the serial path (pinned by the allocation-gate test).
struct SlotArena<M> {
    actions: Vec<Action<M>>,
    transmitters: Vec<(NodeId, f64)>,
    outcomes: Vec<SlotOutcome<M>>,
    field_buffers: Option<FieldBuffers>,
    /// Pooled loop only: one outcome buffer per worker, cycled through
    /// the job channel so chunk capacity survives across slots.
    worker_outs: Vec<Vec<SlotOutcome<M>>>,
    /// Pooled loop only: the per-slot chunk merge table.
    chunks: Vec<Option<Vec<SlotOutcome<M>>>>,
}

impl<M> Default for SlotArena<M> {
    fn default() -> Self {
        SlotArena {
            actions: Vec::new(),
            transmitters: Vec::new(),
            outcomes: Vec::new(),
            field_buffers: None,
            worker_outs: Vec::new(),
            chunks: Vec::new(),
        }
    }
}

/// How the engine resolves the channel each slot.
///
/// Every backend produces **bit-identical** slot outcomes — decode
/// decisions, decoded senders, and the reported SINR/affectance floats.
/// The grid backend only takes a shortcut when the decision is
/// certified and always reports values from the canonical naive-order
/// sums (see `sinr_phy::field` and DESIGN.md §7); the parallel backend
/// runs the *same* per-listener resolution as the grid backend, merely
/// sharding independent listeners across scoped threads with an
/// ordered merge, so no float operation is reordered (DESIGN.md §8).
/// The naive backend exists as the reference for parity testing and
/// benchmarking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineBackend {
    /// All-pairs channel resolution: `O(listeners × transmitters²)`
    /// per slot.
    Naive,
    /// Spatially-indexed resolution through one
    /// [`InterferenceField`] built per slot.
    #[default]
    Grid,
    /// Grid resolution with each slot's channel phase sharded across
    /// this many pooled worker threads (`0` = one per available core).
    ///
    /// The pool lives inside the batch runners ([`Engine::run`],
    /// [`Engine::run_until`], [`Engine::run_reports`]) so its spawn
    /// cost amortizes over the whole run; a lone [`Engine::step`] call
    /// stays serial. Engines below [`PARALLEL_MIN_NODES`] nodes run
    /// serially regardless — channel round-trips would dominate.
    Parallel(usize),
}

/// Engines with fewer nodes than this run serially even under
/// [`EngineBackend::Parallel`] — per-slot job dispatch would dominate
/// the work.
pub const PARALLEL_MIN_NODES: usize = 64;

/// The engine-facing knobs every driver config shares: how the channel
/// phase is resolved ([`EngineBackend`]) and which propagation model it
/// resolves ([`ChannelModel`]). One struct instead of per-config copies,
/// so a new pipeline stage plumbs both with a single field.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EngineOptions {
    /// Channel-resolution backend (naive / grid / parallel).
    pub backend: EngineBackend,
    /// Propagation model (geometric power law or deterministic
    /// log-normal shadowing).
    pub channel: ChannelModel,
}

impl EngineOptions {
    /// Options with an explicit backend and the default Geometric
    /// channel — the drop-in replacement for a bare backend field.
    pub fn with_backend(backend: EngineBackend) -> Self {
        EngineOptions {
            backend,
            channel: ChannelModel::Geometric,
        }
    }

    /// Options with an explicit channel model on the default backend.
    pub fn with_channel(channel: ChannelModel) -> Self {
        EngineOptions {
            backend: EngineBackend::default(),
            channel,
        }
    }
}

impl From<EngineBackend> for EngineOptions {
    fn from(backend: EngineBackend) -> Self {
        EngineOptions::with_backend(backend)
    }
}

impl EngineBackend {
    /// Short label (`naive` / `grid` / `parallel`) for CLIs and tables.
    pub fn label(&self) -> &'static str {
        match self {
            EngineBackend::Naive => "naive",
            EngineBackend::Grid => "grid",
            EngineBackend::Parallel(_) => "parallel",
        }
    }

    /// The number of worker threads this backend resolves listeners
    /// with: 1 for the serial backends, the configured (or detected,
    /// for `Parallel(0)`) count otherwise.
    pub fn worker_threads(&self) -> usize {
        match self {
            EngineBackend::Naive | EngineBackend::Grid => 1,
            EngineBackend::Parallel(0) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            EngineBackend::Parallel(n) => *n,
        }
    }
}

impl std::str::FromStr for EngineBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(EngineBackend::Naive),
            "grid" => Ok(EngineBackend::Grid),
            "parallel" => Ok(EngineBackend::Parallel(0)),
            other => match other.strip_prefix("parallel:") {
                Some(n) => n
                    .parse()
                    .map(EngineBackend::Parallel)
                    .map_err(|e| format!("bad thread count in `{other}`: {e}")),
                None => Err(format!(
                    "unknown engine backend `{other}` (naive|grid|parallel[:N])"
                )),
            },
        }
    }
}

/// Summary of one simulated slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotReport {
    /// Slot index that was executed.
    pub slot: u64,
    /// Number of transmitting nodes.
    pub transmissions: usize,
    /// Number of nodes that decoded a message.
    pub receptions: usize,
    /// Number of nodes that listened without decoding anything.
    pub idle_listeners: usize,
}

/// Cumulative statistics across all executed slots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Slots executed so far.
    pub slots: u64,
    /// Total transmissions across all slots.
    pub transmissions: u64,
    /// Total successful receptions across all slots.
    pub receptions: u64,
}

/// The slotted-time SINR channel simulator.
///
/// Owns one [`Protocol`] value and one RNG stream per node; each call to
/// [`step`](Engine::step) advances global time by one slot:
///
/// 1. every node picks an [`Action`];
/// 2. the channel is resolved: a listener decodes the transmitter with
///    the highest SINR at its location if that SINR reaches `β`
///    (unique for `β ≥ 1`, `N > 0`); transmitters hear nothing
///    (half-duplex);
/// 3. every node observes its [`SlotOutcome`].
pub struct Engine<'a, P: Protocol> {
    params: &'a SinrParams,
    instance: &'a Instance,
    nodes: Vec<P>,
    rngs: Vec<StdRng>,
    slot: u64,
    stats: EngineStats,
    backend: EngineBackend,
    channel: ChannelModel,
    scratch: FieldScratch,
    arena: SlotArena<P::Msg>,
    field_stats: QueryStats,
    /// Armed fault schedule ([`Engine::arm_faults`]); `None` — the
    /// default — restores the exact pre-fault code paths.
    faults: Option<FaultPlan>,
}

impl<'a, P: Protocol + std::fmt::Debug> std::fmt::Debug for Engine<'a, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("slot", &self.slot)
            .field("nodes", &self.nodes.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<'a, P: Protocol> Engine<'a, P> {
    /// Creates an engine with one protocol state per node, built by
    /// `make_node`, and per-node RNG streams derived from `seed`.
    ///
    /// Uses the default [`EngineBackend::Grid`] channel resolution; use
    /// [`with_backend`](Engine::with_backend) to select explicitly.
    pub fn new(
        params: &'a SinrParams,
        instance: &'a Instance,
        make_node: impl FnMut(NodeId) -> P,
        seed: u64,
    ) -> Self {
        Self::with_backend(params, instance, make_node, seed, EngineBackend::default())
    }

    /// [`new`](Engine::new) with an explicit channel-resolution backend.
    pub fn with_backend(
        params: &'a SinrParams,
        instance: &'a Instance,
        make_node: impl FnMut(NodeId) -> P,
        seed: u64,
        backend: EngineBackend,
    ) -> Self {
        Self::with_options(
            params,
            instance,
            make_node,
            seed,
            EngineOptions::with_backend(backend),
        )
    }

    /// [`new`](Engine::new) with explicit [`EngineOptions`] — backend
    /// plus channel model. The Geometric channel is bit-identical to
    /// the pre-model engine on every backend.
    pub fn with_options(
        params: &'a SinrParams,
        instance: &'a Instance,
        mut make_node: impl FnMut(NodeId) -> P,
        seed: u64,
        options: EngineOptions,
    ) -> Self {
        let n = instance.len();
        let mut seeder = StdRng::seed_from_u64(seed);
        let nodes = (0..n).map(&mut make_node).collect();
        let rngs = (0..n)
            .map(|_| StdRng::seed_from_u64(seeder.gen()))
            .collect();
        Engine {
            params,
            instance,
            nodes,
            rngs,
            slot: 0,
            stats: EngineStats::default(),
            backend: options.backend,
            channel: options.channel,
            scratch: FieldScratch::default(),
            arena: SlotArena::default(),
            field_stats: QueryStats::default(),
            faults: None,
        }
    }

    /// Arms a deterministic [`FaultPlan`]: from the next slot on, the
    /// engine applies its crash/deafness/drop/degrade schedule at slot
    /// boundaries, entirely on the driving thread — so fault traces
    /// are byte-identical on every backend and at every thread count.
    /// An empty plan is byte-identical to no plan at all. Snapshots do
    /// not capture the plan (it is immutable input, like the instance);
    /// re-arm after [`restore`](Self::restore).
    ///
    /// # Panics
    ///
    /// Panics if the plan's node count disagrees with the instance.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        assert_eq!(
            plan.len(),
            self.instance.len(),
            "fault plan covers {} nodes, instance has {}",
            plan.len(),
            self.instance.len()
        );
        self.faults = Some(plan);
    }

    /// The armed fault plan, if any.
    #[inline]
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The channel-resolution backend in use.
    #[inline]
    pub fn backend(&self) -> EngineBackend {
        self.backend
    }

    /// The propagation model in use.
    #[inline]
    pub fn channel(&self) -> ChannelModel {
        self.channel
    }

    /// The next slot index to execute.
    #[inline]
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Cumulative statistics.
    #[inline]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Accumulated decode-path decision counters
    /// ([`QueryStats`](sinr_phy::field::QueryStats)) across every slot
    /// this engine executed — worker counters from the pooled loop are
    /// merged in. The profiling layer and the scaling experiments read
    /// these to report certified-vs-fallback ratios.
    #[inline]
    pub fn field_stats(&self) -> QueryStats {
        self.field_stats
    }

    /// The per-node protocol states.
    #[inline]
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Mutable access to the per-node protocol states (for extracting
    /// results after a run).
    #[inline]
    pub fn nodes_mut(&mut self) -> &mut [P] {
        &mut self.nodes
    }

    /// The simulated instance.
    #[inline]
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    /// Executes one slot and returns its report.
    ///
    /// `step` is always serial — even under
    /// [`EngineBackend::Parallel`], whose worker pool exists only
    /// inside the batch runners ([`run`](Self::run),
    /// [`run_until`](Self::run_until), [`run_reports`](Self::run_reports)),
    /// where its spawn cost amortizes across slots. Outcomes are
    /// byte-identical either way: the pooled loop shards the very same
    /// per-node operation sequence ([`SlotCtx::outcome_of`]) across
    /// threads and merges in node order (DESIGN.md §8).
    ///
    /// # Panics
    ///
    /// Panics if a protocol transmits with a non-positive or non-finite
    /// power (a programming error in the protocol).
    pub fn step(&mut self) -> SlotReport {
        let slot = self.slot;
        let n = self.nodes.len();
        #[cfg(feature = "profile")]
        let mut clock = PhaseClock::start();

        // Phase 1: collect actions into the recycled arena buffer.
        let mut actions = std::mem::take(&mut self.arena.actions);
        actions.clear();
        actions.reserve(n);
        self.collect_actions(slot, &mut actions);
        #[cfg(feature = "profile")]
        clock.lap("build");

        // Phase 2: resolve the channel.
        let transmitters = std::mem::take(&mut self.arena.transmitters);
        let buffers = self.arena.field_buffers.take().unwrap_or_default();
        let ctx = SlotCtx::build(
            self.params,
            self.instance,
            (self.backend, self.channel),
            slot,
            actions,
            (transmitters, buffers),
            (P::MEASURES_SINR, P::MEASURES_AFFECTANCE),
        );
        #[cfg(feature = "profile")]
        clock.lap("grid");
        let mut scratch = std::mem::take(&mut self.scratch);
        #[cfg(feature = "profile")]
        scratch.enable_timing(crate::profile::is_active());
        scratch.skip_canonical_sinr(!P::MEASURES_SINR);
        let mut outcomes = std::mem::take(&mut self.arena.outcomes);
        outcomes.clear();
        outcomes.reserve(n);
        for id in 0..n {
            outcomes.push(ctx.outcome_of(id, &mut scratch));
        }
        let stats = std::mem::take(&mut scratch.stats);
        let times = std::mem::take(&mut scratch.times);
        self.scratch = scratch;
        #[cfg(feature = "profile")]
        clock.lap("resolve");
        self.absorb_field_stats(stats, times);

        // Phase 3: report outcomes, then return every buffer to the
        // arena so the next slot allocates nothing.
        let report = self.finish_slot(&ctx, &mut outcomes);
        let (actions, transmitters, buffers) = ctx.recycle();
        self.arena.actions = actions;
        self.arena.transmitters = transmitters;
        self.arena.outcomes = outcomes;
        self.arena.field_buffers = Some(buffers);
        #[cfg(feature = "profile")]
        clock.lap("merge");
        report
    }

    /// Phase 1, shared by the serial and pooled loops: every live node
    /// picks its action. With a fault plan armed, crashed nodes sleep
    /// with their protocol state and RNG stream frozen (no
    /// `begin_slot` call, no draw), and active power degrades scale
    /// the chosen transmit power *before* the channel context is
    /// built — so every backend resolves the same faulted slot.
    fn collect_actions(&mut self, slot: u64, actions: &mut Vec<Action<P::Msg>>) {
        let Some(plan) = &self.faults else {
            for (id, (node, rng)) in self.nodes.iter_mut().zip(self.rngs.iter_mut()).enumerate() {
                actions.push(node.begin_slot(id, slot, rng));
            }
            return;
        };
        for (id, (node, rng)) in self.nodes.iter_mut().zip(self.rngs.iter_mut()).enumerate() {
            if plan.crashed(id, slot) {
                #[cfg(feature = "trace")]
                if plan.crash_boundary(id, slot) && crate::trace::is_active() {
                    crate::trace::emit(crate::trace::TraceEvent::FaultInjected {
                        slot,
                        node: id,
                        kind: "crash-stop",
                    });
                }
                actions.push(Action::Sleep);
                continue;
            }
            #[cfg(feature = "trace")]
            if crate::trace::is_active() {
                if plan.deaf_boundary(id, slot) {
                    crate::trace::emit(crate::trace::TraceEvent::FaultInjected {
                        slot,
                        node: id,
                        kind: "deafness",
                    });
                }
                if plan.degrade_boundary(id, slot) {
                    crate::trace::emit(crate::trace::TraceEvent::FaultInjected {
                        slot,
                        node: id,
                        kind: "power-degrade",
                    });
                }
            }
            let mut action = node.begin_slot(id, slot, rng);
            if let Action::Transmit { power, .. } = &mut action {
                let factor = plan.power_factor(id, slot);
                if factor != 1.0 {
                    *power *= factor;
                }
            }
            actions.push(action);
        }
    }

    /// Merges one slot's decode-path counters into the cumulative
    /// [`field_stats`](Self::field_stats) and, when a profiling
    /// registry is active, records the phase times and decision counts
    /// it captured.
    fn absorb_field_stats(&mut self, stats: QueryStats, times: PhaseTimes) {
        #[cfg(feature = "profile")]
        if crate::profile::is_active() {
            crate::profile::record("near-field", times.near_field.as_secs_f64());
            crate::profile::record("far-field-cert", times.far_field_cert.as_secs_f64());
            crate::profile::record("fallback", times.fallback.as_secs_f64());
            crate::profile::record("queries", stats.queries as f64);
            crate::profile::record("certified", stats.certified as f64);
            crate::profile::record("fallbacks", stats.fallbacks as f64);
            crate::profile::record("rings", stats.rings as f64);
        }
        #[cfg(not(feature = "profile"))]
        let _ = &times;
        self.field_stats.merge(&stats);
    }

    /// Phase 3 plus slot bookkeeping, shared by the serial and pooled
    /// loops.
    fn finish_slot(
        &mut self,
        ctx: &SlotCtx<'a, P::Msg>,
        outcomes: &mut Vec<SlotOutcome<P::Msg>>,
    ) -> SlotReport {
        let slot = self.slot;
        // Reception faults land here, before outcomes are counted,
        // digested or reported: a deaf or dropping listener's decode
        // resolves to `Idle` on the driving thread, identically on
        // every backend (the workers resolved the physical channel;
        // whether the *node* hears it is the plan's call).
        if let Some(plan) = &self.faults {
            if plan.any_reception_faults() {
                for (id, outcome) in outcomes.iter_mut().enumerate() {
                    if matches!(outcome, SlotOutcome::Received(_))
                        && (plan.deaf(id, slot) || plan.drops_reception(id, slot))
                    {
                        #[cfg(feature = "trace")]
                        if crate::trace::is_active() {
                            crate::trace::emit(crate::trace::TraceEvent::FaultInjected {
                                slot,
                                node: id,
                                kind: "reception-drop",
                            });
                        }
                        *outcome = SlotOutcome::Idle;
                    }
                }
            }
        }
        let mut report = SlotReport {
            slot,
            transmissions: ctx.transmitters.len(),
            ..Default::default()
        };
        for outcome in outcomes.iter() {
            match outcome {
                SlotOutcome::Received(_) => report.receptions += 1,
                SlotOutcome::Idle => report.idle_listeners += 1,
                _ => {}
            }
        }
        // Strictly observational: everything recorded here was computed
        // above regardless, so the traced and untraced runs are
        // byte-identical (the trace gates pin this).
        #[cfg(feature = "trace")]
        if crate::trace::is_active() {
            use crate::snapshot::Fnv1a;
            use crate::trace::TraceEvent;
            for &(node, power) in &ctx.transmitters {
                crate::trace::emit(TraceEvent::Transmit {
                    slot,
                    node,
                    power: power.to_bits(),
                });
            }
            let mut fnv = Fnv1a::default();
            for (node, outcome) in outcomes.iter().enumerate() {
                match outcome {
                    SlotOutcome::Received(r) => {
                        crate::trace::emit(TraceEvent::Receive {
                            slot,
                            node,
                            from: r.from,
                            sinr: r.sinr.to_bits(),
                            affectance: r.affectance.to_bits(),
                        });
                        fnv.write_u64(1);
                        fnv.write_u64(r.from as u64);
                        fnv.write_u64(r.distance.to_bits());
                        fnv.write_u64(r.sinr.to_bits());
                        fnv.write_u64(r.affectance.to_bits());
                    }
                    SlotOutcome::Idle => fnv.write_u64(2),
                    SlotOutcome::Transmitted => fnv.write_u64(3),
                    SlotOutcome::Slept => fnv.write_u64(4),
                }
            }
            crate::trace::emit(TraceEvent::SlotDigest {
                slot,
                transmissions: report.transmissions as u32,
                receptions: report.receptions as u32,
                idle: report.idle_listeners as u32,
                outcomes_fnv: fnv.finish(),
            });
        }
        for (id, outcome) in outcomes.drain(..).enumerate() {
            // Crashed nodes observe nothing: protocol state and RNG
            // stream stay frozen at their pre-crash values.
            if let Some(plan) = &self.faults {
                if plan.crashed(id, slot) {
                    continue;
                }
            }
            self.nodes[id].end_slot(id, slot, outcome, &mut self.rngs[id]);
        }
        self.slot += 1;
        self.stats.slots += 1;
        self.stats.transmissions += report.transmissions as u64;
        self.stats.receptions += report.receptions as u64;
        report
    }

    /// Runs `slots` slots unconditionally.
    pub fn run(&mut self, slots: u64) {
        self.run_loop(slots, &mut |_| false, &mut |_| {});
    }

    /// Runs until `done` returns true (checked after each slot) or
    /// `max_slots` have executed; returns the number of slots executed.
    pub fn run_until(&mut self, max_slots: u64, mut done: impl FnMut(&[P]) -> bool) -> u64 {
        self.run_loop(max_slots, &mut done, &mut |_| {})
    }

    /// Runs `slots` slots and collects every [`SlotReport`], through
    /// the same (pooled, for [`EngineBackend::Parallel`]) loop as
    /// [`run`](Self::run) — the per-slot instrumentation hook of the
    /// scaling experiments.
    pub fn run_reports(&mut self, slots: u64) -> Vec<SlotReport> {
        let mut reports = Vec::with_capacity(slots as usize);
        self.run_loop(slots, &mut |_| false, &mut |r| reports.push(r));
        reports
    }

    /// The shared batch loop. Serial backends (and small engines) step
    /// one slot at a time; the parallel backend keeps a
    /// [`with_pool`](crate::pool::with_pool) worker pool alive across
    /// the whole run, broadcasting each slot's immutable [`SlotCtx`]
    /// to every worker and merging the outcome chunks in node order.
    /// Protocol state and RNG streams never leave this thread, so the
    /// observable behavior — every float bit included — is the serial
    /// loop's. A worker panic travels back through the pool's result
    /// channel and resumes here with its original payload (a panicking
    /// protocol `Clone` fails the run loudly instead of deadlocking
    /// the dispatcher).
    fn run_loop(
        &mut self,
        max_slots: u64,
        done: &mut dyn FnMut(&[P]) -> bool,
        on_report: &mut dyn FnMut(SlotReport),
    ) -> u64 {
        let n = self.nodes.len();
        let threads = self.backend.worker_threads().min(n.max(1));
        let start = self.slot;
        if threads <= 1 || n < PARALLEL_MIN_NODES {
            while self.slot - start < max_slots {
                let report = self.step();
                on_report(report);
                if done(&self.nodes) {
                    break;
                }
            }
            return self.slot - start;
        }

        let params = self.params;
        let instance = self.instance;
        let backend = self.backend;
        let channel = self.channel;
        let chunk = n.div_ceil(threads);
        // Workers time their own decode phases and return the counters
        // with each chunk; the driving thread merges and records them,
        // so a profiled parallel run reports CPU time across the pool.
        #[cfg(feature = "profile")]
        let profiling = crate::profile::is_active();
        #[cfg(not(feature = "profile"))]
        let profiling = false;
        with_pool(
            threads,
            move |_| {
                let mut scratch = FieldScratch::default();
                scratch.enable_timing(profiling);
                scratch.skip_canonical_sinr(!P::MEASURES_SINR);
                scratch
            },
            |w, scratch, (ctx, mut out): SlotJob<'a, P::Msg>| {
                let base = w * chunk;
                let len = chunk.min(n.saturating_sub(base));
                out.clear();
                out.reserve(len);
                for id in base..base + len {
                    out.push(ctx.outcome_of(id, scratch));
                }
                let stats = std::mem::take(&mut scratch.stats);
                let times = std::mem::take(&mut scratch.times);
                (out, stats, times)
            },
            |pool| {
                while self.slot - start < max_slots {
                    #[cfg(feature = "profile")]
                    let mut clock = PhaseClock::start();
                    let slot = self.slot;
                    let mut actions = std::mem::take(&mut self.arena.actions);
                    actions.clear();
                    actions.reserve(n);
                    self.collect_actions(slot, &mut actions);
                    #[cfg(feature = "profile")]
                    clock.lap("build");
                    let transmitters = std::mem::take(&mut self.arena.transmitters);
                    let buffers = self.arena.field_buffers.take().unwrap_or_default();
                    let ctx = Arc::new(SlotCtx::build(
                        params,
                        instance,
                        (backend, channel),
                        slot,
                        actions,
                        (transmitters, buffers),
                        (P::MEASURES_SINR, P::MEASURES_AFFECTANCE),
                    ));
                    #[cfg(feature = "profile")]
                    clock.lap("grid");
                    let mut worker_outs = std::mem::take(&mut self.arena.worker_outs);
                    worker_outs.resize_with(threads, Vec::new);
                    for (w, out) in worker_outs.drain(..).enumerate() {
                        pool.send(w, (Arc::clone(&ctx), out));
                    }
                    let mut chunks = std::mem::take(&mut self.arena.chunks);
                    chunks.clear();
                    chunks.resize_with(threads, || None);
                    let mut slot_stats = QueryStats::default();
                    let mut slot_times = PhaseTimes::default();
                    for _ in 0..threads {
                        let (w, (out, stats, times)) = pool.recv();
                        slot_stats.merge(&stats);
                        slot_times.merge(&times);
                        chunks[w] = Some(out);
                    }
                    let mut outcomes = std::mem::take(&mut self.arena.outcomes);
                    outcomes.clear();
                    outcomes.reserve(n);
                    for c in chunks.iter_mut() {
                        let mut out = c.take().expect("every worker reports each slot");
                        // `append` drains `out` but keeps its capacity
                        // for the next slot's job.
                        outcomes.append(&mut out);
                        worker_outs.push(out);
                    }
                    #[cfg(feature = "profile")]
                    clock.lap("resolve");
                    self.absorb_field_stats(slot_stats, slot_times);
                    let report = self.finish_slot(&ctx, &mut outcomes);
                    self.arena.outcomes = outcomes;
                    self.arena.worker_outs = worker_outs;
                    self.arena.chunks = chunks;
                    // Every worker has returned its chunk, so this is
                    // the last Arc — recover the slot buffers. If a
                    // clone somehow lingers, skip recycling; the next
                    // slot re-allocates and correctness is unaffected.
                    if let Ok(ctx) = Arc::try_unwrap(ctx) {
                        let (actions, transmitters, buffers) = ctx.recycle();
                        self.arena.actions = actions;
                        self.arena.transmitters = transmitters;
                        self.arena.field_buffers = Some(buffers);
                    }
                    #[cfg(feature = "profile")]
                    clock.lap("merge");
                    on_report(report);
                    if done(&self.nodes) {
                        break;
                    }
                }
            },
        );
        self.slot - start
    }
}

#[cfg(feature = "serde")]
impl<'a, P: Protocol> Engine<'a, P> {
    /// Captures the engine's complete mutable state — next slot,
    /// statistics, every protocol state and every RNG stream — at the
    /// current slot boundary (feature `serde`).
    ///
    /// Restoring the snapshot with [`restore`](Self::restore) and the
    /// same immutable inputs resumes a run whose remaining slots are
    /// bit-identical to the uninterrupted original.
    pub fn snapshot(&self) -> crate::snapshot::EngineSnapshot
    where
        P: serde::Serialize,
    {
        crate::snapshot::EngineSnapshot {
            slot: self.slot,
            stats: self.stats,
            nodes: self.nodes.iter().map(serde::Serialize::to_value).collect(),
            rngs: self.rngs.iter().map(serde::Serialize::to_value).collect(),
        }
    }

    /// Reconstructs an engine from a snapshot plus the run's immutable
    /// inputs (feature `serde`). The backend need not match the
    /// original's: by the determinism contract every backend produces
    /// the same bytes, so a snapshot taken under `Grid` replays
    /// identically under `Parallel` — a property the trace gates use to
    /// cross-check backends from a common mid-run state.
    ///
    /// # Errors
    ///
    /// Fails if any node or RNG value does not deserialize, or if the
    /// snapshot's node count disagrees with `instance`.
    pub fn restore(
        params: &'a SinrParams,
        instance: &'a Instance,
        snapshot: &crate::snapshot::EngineSnapshot,
        backend: EngineBackend,
    ) -> Result<Self, serde::Error>
    where
        P: serde::de::DeserializeOwned,
    {
        Self::restore_with_options(
            params,
            instance,
            snapshot,
            EngineOptions::with_backend(backend),
        )
    }

    /// [`restore`](Self::restore) with explicit [`EngineOptions`]. The
    /// channel model, like the backend, is immutable input: a snapshot
    /// replays bit-identically only under the model it was taken with.
    pub fn restore_with_options(
        params: &'a SinrParams,
        instance: &'a Instance,
        snapshot: &crate::snapshot::EngineSnapshot,
        options: EngineOptions,
    ) -> Result<Self, serde::Error>
    where
        P: serde::de::DeserializeOwned,
    {
        if snapshot.nodes.len() != instance.len() || snapshot.rngs.len() != instance.len() {
            return Err(serde::Error::custom(format!(
                "snapshot holds {} nodes / {} RNG streams, instance has {}",
                snapshot.nodes.len(),
                snapshot.rngs.len(),
                instance.len()
            )));
        }
        let nodes = snapshot
            .nodes
            .iter()
            .map(P::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let rngs = snapshot
            .rngs
            .iter()
            .map(<StdRng as serde::Deserialize>::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Engine {
            params,
            instance,
            nodes,
            rngs,
            slot: snapshot.slot,
            stats: snapshot.stats,
            backend: options.backend,
            channel: options.channel,
            scratch: FieldScratch::default(),
            arena: SlotArena::default(),
            field_stats: QueryStats::default(),
            faults: None,
        })
    }
}

/// One pooled job: the shared slot context plus the recycled output
/// vector the worker fills for its chunk.
type SlotJob<'a, M> = (Arc<SlotCtx<'a, M>>, Vec<SlotOutcome<M>>);

/// One slot's immutable channel context: every node's action, the
/// transmitter set in canonical (node-id) order, and — for the grid
/// backends — the slot's [`InterferenceField`]. The pooled loop shares
/// it read-only across workers via [`Arc`]; [`SlotCtx::outcome_of`] is
/// the *single* per-node resolution sequence both the serial and the
/// pooled loop execute, which is what makes their outputs
/// byte-identical by construction.
struct SlotCtx<'a, M> {
    params: &'a SinrParams,
    instance: &'a Instance,
    channel: ChannelModel,
    actions: Vec<Action<M>>,
    transmitters: Vec<(NodeId, f64)>,
    field: Option<InterferenceField<'a>>,
    /// The recycled field allocations when no field was built this slot
    /// (naive backend, or nobody transmitted) — carried through so
    /// [`recycle`](Self::recycle) always hands capacity back.
    spare: Option<FieldBuffers>,
    /// [`Protocol::MEASURES_SINR`] of the driving protocol: when false,
    /// receptions report `NaN` SINR on *every* backend (the naive and
    /// fallback paths compute it as a byproduct; discarding it here
    /// keeps the backends byte-identical to the certificate-only grid
    /// path).
    measure_sinr: bool,
    /// [`Protocol::MEASURES_AFFECTANCE`] of the driving protocol: when
    /// false, receptions skip the per-decode canonical affectance sum
    /// and report `NaN`.
    measure_affectance: bool,
}

impl<'a, M: Clone + Send + Sync> SlotCtx<'a, M> {
    /// Validates the actions and derives the slot's channel state. The
    /// `transmitters` vector and `buffers` come from the engine's
    /// [`SlotArena`] — their *contents* are stale garbage from the
    /// previous slot; only their capacity matters.
    ///
    /// # Panics
    ///
    /// Panics if a node transmitted with a non-positive or non-finite
    /// power (a programming error in the protocol).
    fn build(
        params: &'a SinrParams,
        instance: &'a Instance,
        (backend, channel): (EngineBackend, ChannelModel),
        slot: u64,
        actions: Vec<Action<M>>,
        (mut transmitters, buffers): (Vec<(NodeId, f64)>, FieldBuffers),
        (measure_sinr, measure_affectance): (bool, bool),
    ) -> Self {
        for (id, a) in actions.iter().enumerate() {
            if let Action::Transmit { power, .. } = a {
                assert!(
                    power.is_finite() && *power > 0.0,
                    "node {id} transmitted with invalid power {power} in slot {slot}"
                );
            }
        }
        transmitters.clear();
        transmitters.extend(actions.iter().enumerate().filter_map(|(id, a)| match a {
            Action::Transmit { power, .. } => Some((id, *power)),
            _ => None,
        }));
        let (field, spare) = match backend {
            EngineBackend::Naive => (None, Some(buffers)),
            _ if transmitters.is_empty() => (None, Some(buffers)),
            _ => (
                Some(InterferenceField::build_with_model(
                    params,
                    channel,
                    instance,
                    &transmitters,
                    buffers,
                )),
                None,
            ),
        };
        SlotCtx {
            params,
            instance,
            channel,
            actions,
            transmitters,
            field,
            spare,
            measure_sinr,
            measure_affectance,
        }
    }

    /// Dismantles the context, recovering every recyclable allocation
    /// for the next slot's [`build`](Self::build).
    fn recycle(self) -> (Vec<Action<M>>, Vec<(NodeId, f64)>, FieldBuffers) {
        let buffers = match self.field {
            Some(f) => f.into_buffers(),
            None => self.spare.unwrap_or_default(),
        };
        (self.actions, self.transmitters, buffers)
    }

    /// Resolves one node's outcome for this slot.
    fn outcome_of(&self, id: NodeId, scratch: &mut FieldScratch) -> SlotOutcome<M> {
        match &self.actions[id] {
            Action::Transmit { .. } => SlotOutcome::Transmitted,
            Action::Sleep => SlotOutcome::Slept,
            Action::Listen => {
                let decoded = match &self.field {
                    Some(f) => f.decode_best_with(id, scratch),
                    None => decode_best_exact_with_model(
                        self.params,
                        self.channel,
                        self.instance,
                        id,
                        &self.transmitters,
                    ),
                };
                match decoded {
                    Some((from, power, sinr)) => {
                        // The canonical per-reception recompute is an
                        // exact naive sum — `O(transmitters)` per
                        // decode, the dominant cost of a dense slot —
                        // so it only runs for protocols that read the
                        // field; its time belongs to the `fallback`
                        // phase.
                        let affectance = if self.measure_affectance {
                            let link = Link::new(from, id);
                            scratch
                                .time_fallback(|| {
                                    feasibility::measured_affectance_with(
                                        self.params,
                                        self.instance,
                                        self.channel,
                                        link,
                                        power,
                                        &self.transmitters,
                                    )
                                })
                                .unwrap_or(f64::NAN)
                        } else {
                            f64::NAN
                        };
                        let msg = match &self.actions[from] {
                            Action::Transmit { msg, .. } => msg.clone(),
                            _ => unreachable!("decoded node is a transmitter"),
                        };
                        SlotOutcome::Received(Reception {
                            from,
                            msg,
                            distance: self.instance.distance(from, id),
                            // NaN-ed uniformly when unmeasured: the
                            // naive and fallback decodes yield the
                            // exact value as a byproduct, but reporting
                            // it only there would break backend parity.
                            sinr: if self.measure_sinr { sinr } else { f64::NAN },
                            affectance,
                        })
                    }
                    None => SlotOutcome::Idle,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geom::gen;

    /// Every node transmits unconditionally with the given power.
    #[derive(Debug)]
    struct AlwaysTx(f64);
    impl Protocol for AlwaysTx {
        type Msg = ();
        fn begin_slot(&mut self, _: NodeId, _: u64, _: &mut StdRng) -> Action<()> {
            Action::Transmit {
                power: self.0,
                msg: (),
            }
        }
        fn end_slot(&mut self, _: NodeId, _: u64, _: SlotOutcome<()>, _: &mut StdRng) {}
    }

    /// Node `tx` transmits every slot; others listen and count decodes.
    #[derive(Debug)]
    struct OneTx {
        tx: NodeId,
        power: f64,
        decoded: usize,
        last_sinr: f64,
    }
    impl Protocol for OneTx {
        type Msg = u64;
        fn begin_slot(&mut self, node: NodeId, slot: u64, _: &mut StdRng) -> Action<u64> {
            if node == self.tx {
                Action::Transmit {
                    power: self.power,
                    msg: slot,
                }
            } else {
                Action::Listen
            }
        }
        fn end_slot(&mut self, _: NodeId, _: u64, o: SlotOutcome<u64>, _: &mut StdRng) {
            if let SlotOutcome::Received(r) = o {
                self.decoded += 1;
                self.last_sinr = r.sinr;
            }
        }
    }

    #[test]
    fn lone_transmitter_reaches_everyone() {
        let params = SinrParams::default();
        let inst = gen::line(5).unwrap();
        let power = params.min_power_for_length(inst.delta()) * 10.0;
        let mut engine = Engine::new(
            &params,
            &inst,
            |_| OneTx {
                tx: 0,
                power,
                decoded: 0,
                last_sinr: 0.0,
            },
            1,
        );
        let report = engine.step();
        assert_eq!(report.transmissions, 1);
        assert_eq!(report.receptions, 4);
        for (id, node) in engine.nodes().iter().enumerate() {
            if id != 0 {
                assert_eq!(node.decoded, 1);
                assert!(node.last_sinr >= params.beta());
            }
        }
    }

    #[test]
    fn transmitters_hear_nothing() {
        let params = SinrParams::default();
        let inst = gen::line(2).unwrap();
        let mut engine = Engine::new(&params, &inst, |_| AlwaysTx(100.0), 2);
        let report = engine.step();
        assert_eq!(report.transmissions, 2);
        assert_eq!(report.receptions, 0);
    }

    #[test]
    fn interference_blocks_decoding() {
        let params = SinrParams::default();
        // Listener at the midpoint of two equal-power transmitters:
        // equal signal ⇒ SINR ≈ 1 < β = 2 ⇒ no decode.
        let inst = sinr_geom::Instance::new(vec![
            sinr_geom::Point::new(0.0, 0.0),
            sinr_geom::Point::new(2.0, 0.0),
            sinr_geom::Point::new(1.0, 0.0),
        ])
        .unwrap();
        #[derive(Debug)]
        struct Mid {
            got: bool,
        }
        impl Protocol for Mid {
            type Msg = ();
            fn begin_slot(&mut self, node: NodeId, _: u64, _: &mut StdRng) -> Action<()> {
                if node == 2 {
                    Action::Listen
                } else {
                    Action::Transmit {
                        power: 1000.0,
                        msg: (),
                    }
                }
            }
            fn end_slot(&mut self, _: NodeId, _: u64, o: SlotOutcome<()>, _: &mut StdRng) {
                if matches!(o, SlotOutcome::Received(_)) {
                    self.got = true;
                }
            }
        }
        let mut engine = Engine::new(&params, &inst, |_| Mid { got: false }, 3);
        engine.step();
        assert!(!engine.nodes()[2].got, "midpoint listener must be jammed");
    }

    #[test]
    fn sleeping_nodes_do_nothing() {
        let params = SinrParams::default();
        let inst = gen::line(3).unwrap();
        #[derive(Debug)]
        struct Sleepy;
        impl Protocol for Sleepy {
            type Msg = ();
            fn begin_slot(&mut self, _: NodeId, _: u64, _: &mut StdRng) -> Action<()> {
                Action::Sleep
            }
            fn end_slot(&mut self, _: NodeId, _: u64, o: SlotOutcome<()>, _: &mut StdRng) {
                assert_eq!(o, SlotOutcome::Slept);
            }
        }
        let mut engine = Engine::new(&params, &inst, |_| Sleepy, 4);
        let report = engine.step();
        assert_eq!(report.transmissions, 0);
        assert_eq!(report.receptions, 0);
        assert_eq!(report.idle_listeners, 0);
    }

    /// The two backends are observably identical: same reports, same
    /// protocol states, same Reception floats to the bit.
    #[test]
    fn backends_are_bit_identical() {
        let params = SinrParams::default();

        /// `(slot, from, distance bits, sinr bits, affectance bits)`.
        type ReceptionRecord = (u64, NodeId, u64, u64, u64);

        #[derive(Debug, Default)]
        struct Recorder {
            receptions: Vec<ReceptionRecord>,
        }
        impl Protocol for Recorder {
            type Msg = ();
            fn begin_slot(&mut self, _: NodeId, _: u64, rng: &mut StdRng) -> Action<()> {
                if rng.gen_bool(0.25) {
                    Action::Transmit {
                        power: 600.0,
                        msg: (),
                    }
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, _: NodeId, slot: u64, o: SlotOutcome<()>, _: &mut StdRng) {
                if let SlotOutcome::Received(r) = o {
                    self.receptions.push((
                        slot,
                        r.from,
                        r.distance.to_bits(),
                        r.sinr.to_bits(),
                        r.affectance.to_bits(),
                    ));
                }
            }
        }

        // 80 nodes sit above PARALLEL_MIN_NODES and `run_reports` uses
        // the batch loop, so the parallel backends genuinely exercise
        // the worker pool here (when more than one core exists).
        for seed in [1u64, 7, 42] {
            let inst = gen::uniform_square(80, 1.5, seed).unwrap();
            let run = |backend| {
                let mut e =
                    Engine::with_backend(&params, &inst, |_| Recorder::default(), seed, backend);
                let reports = e.run_reports(12);
                let states: Vec<Vec<ReceptionRecord>> =
                    e.nodes().iter().map(|n| n.receptions.clone()).collect();
                (reports, e.stats(), states)
            };
            let naive = run(EngineBackend::Naive);
            for backend in [
                EngineBackend::Grid,
                EngineBackend::Parallel(1),
                EngineBackend::Parallel(2),
                EngineBackend::Parallel(4),
                EngineBackend::Parallel(0),
            ] {
                let other = run(backend);
                assert_eq!(naive.0, other.0, "seed {seed} {backend:?}: slot reports");
                assert_eq!(naive.1, other.1, "seed {seed} {backend:?}: stats");
                assert_eq!(naive.2, other.2, "seed {seed} {backend:?}: reception bits");
            }
        }
    }

    /// Fair-coin transmitter for the counter/profile tests below.
    #[derive(Debug)]
    struct CoinTx;
    impl Protocol for CoinTx {
        type Msg = ();
        fn begin_slot(&mut self, _: NodeId, _: u64, rng: &mut StdRng) -> Action<()> {
            if rng.gen_bool(0.3) {
                Action::Transmit {
                    power: 600.0,
                    msg: (),
                }
            } else {
                Action::Listen
            }
        }
        fn end_slot(&mut self, _: NodeId, _: u64, _: SlotOutcome<()>, _: &mut StdRng) {}
    }

    /// The decode-path counters accumulate across slots, satisfy the
    /// classification invariant, and agree between the serial and
    /// pooled grid loops (same decisions, per the bit-parity contract).
    #[test]
    fn field_stats_accumulate_and_agree_across_loops() {
        let params = SinrParams::default();
        let inst = gen::uniform_square(80, 1.5, 3).unwrap();
        let run = |backend| {
            let mut e = Engine::with_backend(&params, &inst, |_| CoinTx, 3, backend);
            e.run(10);
            e.field_stats()
        };
        let naive = run(EngineBackend::Naive);
        assert_eq!(
            naive,
            QueryStats::default(),
            "the naive backend never queries a field"
        );
        let grid = run(EngineBackend::Grid);
        assert!(grid.queries > 0, "grid loop answers decode queries");
        assert_eq!(
            grid.queries,
            grid.small_exact + grid.certified + grid.fallbacks,
            "every query is classified exactly once"
        );
        let pooled = run(EngineBackend::Parallel(2));
        assert_eq!(grid, pooled, "worker counters merge to the serial totals");
    }

    /// A profiled run records every engine phase plus the drained field
    /// phases, once per slot, on both loops; the counter phases tie out
    /// against [`Engine::field_stats`].
    #[cfg(feature = "profile")]
    #[test]
    fn profiled_run_records_slot_phases() {
        let params = SinrParams::default();
        let inst = gen::uniform_square(80, 1.5, 4).unwrap();
        for backend in [EngineBackend::Grid, EngineBackend::Parallel(2)] {
            crate::profile::start();
            let mut e = Engine::with_backend(&params, &inst, |_| CoinTx, 4, backend);
            e.run(6);
            let report = crate::profile::stop();
            for phase in [
                "build",
                "grid",
                "resolve",
                "merge",
                "near-field",
                "far-field-cert",
                "fallback",
                "queries",
                "certified",
                "fallbacks",
                "rings",
            ] {
                let stats = report
                    .phase(phase)
                    .unwrap_or_else(|| panic!("{backend:?} records phase {phase}"));
                assert_eq!(stats.count, 6, "{backend:?} {phase}: one sample per slot");
            }
            assert_eq!(
                report.phase("queries").unwrap().total,
                e.field_stats().queries as f64,
                "{backend:?}: profiled query count matches the engine counters"
            );
        }
    }

    #[test]
    fn backend_labels_and_parsing() {
        assert_eq!("naive".parse(), Ok(EngineBackend::Naive));
        assert_eq!("grid".parse(), Ok(EngineBackend::Grid));
        assert_eq!("parallel".parse(), Ok(EngineBackend::Parallel(0)));
        assert_eq!("parallel:3".parse(), Ok(EngineBackend::Parallel(3)));
        assert!("parallel:x".parse::<EngineBackend>().is_err());
        assert!("threads".parse::<EngineBackend>().is_err());
        assert_eq!(EngineBackend::Parallel(7).label(), "parallel");
        assert_eq!(EngineBackend::Parallel(7).worker_threads(), 7);
        assert_eq!(EngineBackend::Grid.worker_threads(), 1);
        assert!(EngineBackend::Parallel(0).worker_threads() >= 1);
    }

    #[test]
    fn determinism_same_seed_same_stats() {
        let params = SinrParams::default();
        let inst = gen::uniform_square(30, 2.0, 5).unwrap();

        /// Random transmitter with p=1/2 per slot: exercises RNG streams.
        #[derive(Debug)]
        struct Coin {
            decodes: u64,
        }
        impl Protocol for Coin {
            type Msg = ();
            fn begin_slot(&mut self, _: NodeId, _: u64, rng: &mut StdRng) -> Action<()> {
                if rng.gen_bool(0.5) {
                    Action::Transmit {
                        power: 500.0,
                        msg: (),
                    }
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, _: NodeId, _: u64, o: SlotOutcome<()>, _: &mut StdRng) {
                if matches!(o, SlotOutcome::Received(_)) {
                    self.decodes += 1;
                }
            }
        }

        let run = |seed| {
            let mut e = Engine::new(&params, &inst, |_| Coin { decodes: 0 }, seed);
            e.run(20);
            (
                e.stats(),
                e.nodes().iter().map(|n| n.decodes).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).1, run(10).1);
    }

    #[test]
    fn run_until_stops_early() {
        let params = SinrParams::default();
        let inst = gen::line(4).unwrap();
        let power = params.min_power_for_length(inst.delta()) * 10.0;
        let mut engine = Engine::new(
            &params,
            &inst,
            |_| OneTx {
                tx: 0,
                power,
                decoded: 0,
                last_sinr: 0.0,
            },
            1,
        );
        let executed = engine.run_until(100, |nodes| nodes.iter().skip(1).all(|n| n.decoded >= 3));
        assert_eq!(executed, 3);
        assert_eq!(engine.slot(), 3);
    }

    #[test]
    fn reception_reports_distance_and_affectance() {
        let params = SinrParams::default();
        let inst = gen::line(3).unwrap();
        #[derive(Debug, Default)]
        struct Probe {
            rec: Option<Reception<()>>,
        }
        impl Protocol for Probe {
            type Msg = ();
            fn begin_slot(&mut self, node: NodeId, _: u64, _: &mut StdRng) -> Action<()> {
                if node == 0 {
                    Action::Transmit {
                        power: 1e4,
                        msg: (),
                    }
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, _: NodeId, _: u64, o: SlotOutcome<()>, _: &mut StdRng) {
                if let SlotOutcome::Received(r) = o {
                    self.rec = Some(r);
                }
            }
        }
        let mut engine = Engine::new(&params, &inst, |_| Probe::default(), 0);
        engine.step();
        let r = engine.nodes()[1]
            .rec
            .clone()
            .expect("node 1 decodes node 0");
        assert_eq!(r.from, 0);
        assert_eq!(r.distance, 1.0);
        // Sole transmitter: zero interference, zero affectance.
        assert!(r.affectance.abs() < 1e-12);
        assert!(r.sinr > params.beta());
    }

    /// A protocol that declares both per-reception instruments unused
    /// gets `NaN` there and *identical bits everywhere else*: same
    /// decode winners, same distances, on every backend.
    #[test]
    fn instrument_opt_out_skips_only_the_instruments() {
        #[derive(Debug, Default)]
        struct Deaf {
            rec: Option<Reception<()>>,
        }
        impl Protocol for Deaf {
            type Msg = ();
            const MEASURES_AFFECTANCE: bool = false;
            const MEASURES_SINR: bool = false;
            fn begin_slot(&mut self, node: NodeId, _: u64, rng: &mut StdRng) -> Action<()> {
                if node % 3 == 0 && rng.gen_bool(0.9) {
                    Action::Transmit {
                        power: 1e4,
                        msg: (),
                    }
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, _: NodeId, _: u64, o: SlotOutcome<()>, _: &mut StdRng) {
                if let SlotOutcome::Received(r) = o {
                    self.rec = Some(r);
                }
            }
        }
        // Measuring twin: same actions (same RNG draws), instrument on.
        #[derive(Debug, Default)]
        struct Keen {
            rec: Option<Reception<()>>,
        }
        impl Protocol for Keen {
            type Msg = ();
            fn begin_slot(&mut self, node: NodeId, _: u64, rng: &mut StdRng) -> Action<()> {
                if node % 3 == 0 && rng.gen_bool(0.9) {
                    Action::Transmit {
                        power: 1e4,
                        msg: (),
                    }
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, _: NodeId, _: u64, o: SlotOutcome<()>, _: &mut StdRng) {
                if let SlotOutcome::Received(r) = o {
                    self.rec = Some(r);
                }
            }
        }
        let params = SinrParams::default();
        let inst = gen::uniform_square(64, 2.0, 9).unwrap();
        let mut per_backend: Vec<Vec<Option<(NodeId, u64)>>> = Vec::new();
        for backend in [
            EngineBackend::Naive,
            EngineBackend::Grid,
            EngineBackend::Parallel(2),
        ] {
            let mut deaf = Engine::with_backend(&params, &inst, |_| Deaf::default(), 7, backend);
            let mut keen = Engine::with_backend(&params, &inst, |_| Keen::default(), 7, backend);
            deaf.run(4);
            keen.run(4);
            per_backend.push(
                deaf.nodes()
                    .iter()
                    .map(|n| n.rec.as_ref().map(|r| (r.from, r.distance.to_bits())))
                    .collect(),
            );
            let mut receptions = 0usize;
            for (d, k) in deaf.nodes().iter().zip(keen.nodes().iter()) {
                match (&d.rec, &k.rec) {
                    (Some(d), Some(k)) => {
                        receptions += 1;
                        assert_eq!(d.from, k.from);
                        assert_eq!(d.distance.to_bits(), k.distance.to_bits());
                        assert!(d.sinr.is_nan(), "opt-out must report NaN SINR");
                        assert!(d.affectance.is_nan(), "opt-out must report NaN affectance");
                        assert!(k.sinr.is_finite(), "measuring twin reports SINR");
                        assert!(
                            k.affectance.is_finite(),
                            "measuring twin reports affectance"
                        );
                    }
                    (None, None) => {}
                    other => panic!("decode sets diverged: {other:?}"),
                }
            }
            assert!(receptions > 0, "workload produced no receptions");
        }
        // Certificate-decided decodes (grid) match the exact naive
        // winners even with the canonical recompute skipped.
        assert_eq!(per_backend[0], per_backend[1], "naive vs grid winners");
        assert_eq!(per_backend[1], per_backend[2], "grid vs parallel winners");
    }

    /// Coin-flip recorder used by the fault gates below: every
    /// observable (actions drawn from the RNG, reception bits, the
    /// number of `begin_slot` calls) is recorded so freezes and
    /// suppressions are visible.
    #[derive(Debug, Default, Clone, PartialEq)]
    struct FaultProbe {
        begins: u64,
        log: Vec<(u64, NodeId, u64)>,
        idles: u64,
    }
    impl Protocol for FaultProbe {
        type Msg = ();
        fn begin_slot(&mut self, _: NodeId, _: u64, rng: &mut StdRng) -> Action<()> {
            self.begins += 1;
            if rng.gen_bool(0.3) {
                Action::Transmit {
                    power: 900.0,
                    msg: (),
                }
            } else {
                Action::Listen
            }
        }
        fn end_slot(&mut self, _: NodeId, slot: u64, o: SlotOutcome<()>, _: &mut StdRng) {
            match o {
                SlotOutcome::Received(r) => self.log.push((slot, r.from, r.sinr.to_bits())),
                SlotOutcome::Idle => self.idles += 1,
                _ => {}
            }
        }
    }

    fn fault_probe_run(
        inst: &Instance,
        seed: u64,
        backend: EngineBackend,
        plan: Option<crate::faults::FaultPlan>,
    ) -> (Vec<SlotReport>, EngineStats, Vec<FaultProbe>) {
        let params = SinrParams::default();
        let mut e = Engine::with_backend(&params, inst, |_| FaultProbe::default(), seed, backend);
        if let Some(plan) = plan {
            e.arm_faults(plan);
        }
        let reports = e.run_reports(12);
        (reports, e.stats(), e.nodes().to_vec())
    }

    /// An armed **empty** plan takes the faulted code path but must
    /// change nothing: same reports, states and reception bits as no
    /// plan at all, on every backend.
    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_plan() {
        let inst = gen::uniform_square(80, 1.5, 21).unwrap();
        for backend in [
            EngineBackend::Naive,
            EngineBackend::Grid,
            EngineBackend::Parallel(2),
        ] {
            let bare = fault_probe_run(&inst, 5, backend, None);
            let empty = fault_probe_run(
                &inst,
                5,
                backend,
                Some(crate::faults::FaultPlan::new(inst.len(), 123)),
            );
            assert_eq!(bare, empty, "{backend:?}: empty plan must be inert");
        }
    }

    /// The fault-determinism parity gate (the Deaf-vs-Keen pattern of
    /// the instrument gates): one random fault mix, identical bytes on
    /// naive / grid / parallel at several thread counts.
    #[test]
    fn fault_plan_is_bit_identical_across_backends() {
        use crate::faults::{FaultMix, FaultPlan};
        let inst = gen::uniform_square(80, 1.5, 22).unwrap();
        let plan = FaultPlan::random(
            inst.len(),
            0xFA_017,
            &FaultMix {
                crash: 0.1,
                deafness: 0.15,
                drop: 0.15,
                degrade: 0.1,
                horizon: 12,
            },
        );
        assert!(!plan.is_empty(), "the mix must actually schedule faults");
        let naive = fault_probe_run(&inst, 6, EngineBackend::Naive, Some(plan.clone()));
        for backend in [
            EngineBackend::Grid,
            EngineBackend::Parallel(1),
            EngineBackend::Parallel(2),
            EngineBackend::Parallel(4),
        ] {
            let other = fault_probe_run(&inst, 6, backend, Some(plan.clone()));
            assert_eq!(naive, other, "{backend:?}: faulted run diverged");
        }
    }

    /// A crash-stop freezes the node: `begin_slot` stops being called
    /// (RNG stream frozen), outcomes stop being observed, and the
    /// node no longer transmits.
    #[test]
    fn crash_stop_freezes_protocol_state_and_rng() {
        use crate::faults::{FaultEvent, FaultPlan};
        let params = SinrParams::default();
        let inst = gen::line(4).unwrap();
        let mut plan = FaultPlan::new(4, 0);
        plan.push(1, FaultEvent::CrashStop { at: 3 });
        let mut e = Engine::new(&params, &inst, |_| FaultProbe::default(), 9);
        e.arm_faults(plan);
        e.run(10);
        assert_eq!(e.nodes()[1].begins, 3, "crashed after 3 begin_slot calls");
        assert_eq!(e.nodes()[0].begins, 10);
        assert!(
            e.nodes()[1].log.iter().all(|&(slot, _, _)| slot < 3),
            "no receptions observed after the crash"
        );
    }

    /// Deafness and reception drops convert would-be receptions into
    /// `Idle` during exactly their windows.
    #[test]
    fn deafness_and_drop_suppress_receptions_in_their_windows() {
        use crate::faults::{FaultEvent, FaultPlan};

        /// Node 0 shouts every slot; listeners log decode slots.
        #[derive(Debug, Default)]
        struct Logger {
            decoded: Vec<u64>,
        }
        impl Protocol for Logger {
            type Msg = ();
            fn begin_slot(&mut self, node: NodeId, _: u64, _: &mut StdRng) -> Action<()> {
                if node == 0 {
                    Action::Transmit {
                        power: 1e4,
                        msg: (),
                    }
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, _: NodeId, slot: u64, o: SlotOutcome<()>, _: &mut StdRng) {
                if matches!(o, SlotOutcome::Received(_)) {
                    self.decoded.push(slot);
                }
            }
        }

        let params = SinrParams::default();
        let inst = gen::line(3).unwrap();
        let mut plan = FaultPlan::new(3, 0);
        plan.push(1, FaultEvent::TransientDeafness { from: 2, until: 4 });
        plan.push(2, FaultEvent::ReceptionDrop { prob: 1.0, from: 5 });
        let mut e = Engine::new(&params, &inst, |_| Logger::default(), 3);
        e.arm_faults(plan);
        e.run(8);
        assert_eq!(e.nodes()[1].decoded, vec![0, 1, 4, 5, 6, 7], "deaf 2..4");
        assert_eq!(e.nodes()[2].decoded, vec![0, 1, 2, 3, 4], "drops from 5");
    }

    /// A (near-total) power degrade silences a transmitter from its
    /// onset slot: the listener stops decoding it.
    #[test]
    fn power_degrade_scales_the_chosen_transmit_power() {
        use crate::faults::{FaultEvent, FaultPlan};
        let params = SinrParams::default();
        let inst = gen::line(2).unwrap();
        let power = params.min_power_for_length(inst.delta()) * 4.0;
        let mut plan = FaultPlan::new(2, 0);
        plan.push(
            0,
            FaultEvent::PowerDegrade {
                factor: 1e-9,
                from: 3,
            },
        );
        let mut e = Engine::new(
            &params,
            &inst,
            |_| OneTx {
                tx: 0,
                power,
                decoded: 0,
                last_sinr: 0.0,
            },
            1,
        );
        e.arm_faults(plan);
        e.run(8);
        assert_eq!(e.nodes()[1].decoded, 3, "decodes stop at the degrade onset");
    }

    #[test]
    #[should_panic(expected = "fault plan covers")]
    fn mismatched_fault_plan_is_rejected() {
        let params = SinrParams::default();
        let inst = gen::line(3).unwrap();
        let mut e = Engine::new(&params, &inst, |_| AlwaysTx(1.0), 0);
        e.arm_faults(crate::faults::FaultPlan::new(5, 0));
    }

    #[test]
    #[should_panic(expected = "invalid power")]
    fn invalid_power_panics() {
        let params = SinrParams::default();
        let inst = gen::line(2).unwrap();
        let mut engine = Engine::new(&params, &inst, |_| AlwaysTx(-1.0), 0);
        engine.step();
    }

    /// The pooled loop preserves panic payloads instead of wrapping
    /// (or worse, deadlocking on) them: the engine's own invalid-power
    /// panic surfaces verbatim from a parallel run.
    #[test]
    #[should_panic(expected = "invalid power")]
    fn invalid_power_panics_in_parallel_run() {
        let params = SinrParams::default();
        let inst = gen::uniform_square(80, 1.5, 1).unwrap();
        let mut engine = Engine::with_backend(
            &params,
            &inst,
            |_| AlwaysTx(-1.0),
            0,
            EngineBackend::Parallel(2),
        );
        engine.run(1);
    }

    /// Snapshot mid-run, keep running the original, restore the
    /// snapshot into a fresh engine (under a *different* backend), and
    /// the two tails must agree bit-for-bit.
    #[cfg(feature = "serde")]
    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        use serde::{Deserialize, Error, Serialize, Value};

        /// Coin-flip transmitter recording reception bits — with
        /// manual serde so it can ride a snapshot.
        #[derive(Debug, Clone, PartialEq)]
        struct Flip {
            log: Vec<(u64, NodeId, u64)>,
        }
        impl Protocol for Flip {
            type Msg = ();
            fn begin_slot(&mut self, _: NodeId, _: u64, rng: &mut StdRng) -> Action<()> {
                if rng.gen_bool(0.3) {
                    Action::Transmit {
                        power: 700.0,
                        msg: (),
                    }
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, _: NodeId, slot: u64, o: SlotOutcome<()>, _: &mut StdRng) {
                if let SlotOutcome::Received(r) = o {
                    self.log.push((slot, r.from, r.sinr.to_bits()));
                }
            }
        }
        impl Serialize for Flip {
            fn to_value(&self) -> Value {
                self.log.to_value()
            }
        }
        impl Deserialize for Flip {
            fn from_value(value: &Value) -> Result<Self, Error> {
                Ok(Flip {
                    log: Deserialize::from_value(value)?,
                })
            }
        }

        let params = SinrParams::default();
        let inst = gen::uniform_square(40, 1.5, 11).unwrap();
        let fresh =
            |backend| Engine::with_backend(&params, &inst, |_| Flip { log: vec![] }, 9, backend);

        let mut original = fresh(EngineBackend::Grid);
        original.run(6);
        let snap = original.snapshot();
        original.run(10);

        // The snapshot round-trips through the Value data model.
        let snap = crate::snapshot::EngineSnapshot::from_value(&serde::Serialize::to_value(&snap))
            .unwrap();
        let mut resumed: Engine<'_, Flip> =
            Engine::restore(&params, &inst, &snap, EngineBackend::Naive).unwrap();
        assert_eq!(resumed.slot(), 6);
        resumed.run(10);

        assert_eq!(original.slot(), resumed.slot());
        assert_eq!(original.stats(), resumed.stats());
        assert_eq!(original.nodes().to_vec(), resumed.nodes().to_vec());

        // Wrong instance size is rejected.
        let small = gen::line(3).unwrap();
        assert!(Engine::<Flip>::restore(&params, &small, &snap, EngineBackend::Grid).is_err());
    }

    /// With a recorder installed, the engine emits per-slot transmit /
    /// receive events plus a digest — and the run's outputs are the
    /// same as an untraced run's.
    #[cfg(feature = "trace")]
    #[test]
    fn traced_run_emits_events_without_changing_outputs() {
        use crate::trace::{self, TraceEvent};

        let params = SinrParams::default();
        let inst = gen::line(5).unwrap();
        let power = params.min_power_for_length(inst.delta()) * 10.0;
        let build = |seed| {
            Engine::new(
                &params,
                &inst,
                |_| OneTx {
                    tx: 0,
                    power,
                    decoded: 0,
                    last_sinr: 0.0,
                },
                seed,
            )
        };

        let mut untraced = build(1);
        let plain = untraced.run_reports(3);

        trace::start(1 << 12);
        let mut traced = build(1);
        let reports = traced.run_reports(3);
        let log = trace::stop();

        assert_eq!(plain, reports, "tracing must not change outputs");
        assert_eq!(log.dropped, 0);
        let transmits = log
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Transmit { node: 0, .. }))
            .count();
        assert_eq!(transmits, 3, "node 0 transmits every slot");
        let digests: Vec<_> = log
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::SlotDigest {
                    slot, receptions, ..
                } => Some((*slot, *receptions)),
                _ => None,
            })
            .collect();
        assert_eq!(digests, vec![(0, 4), (1, 4), (2, 4)]);
        assert!(log.events.iter().any(|e| matches!(
            e,
            TraceEvent::Receive {
                slot: 0,
                from: 0,
                ..
            }
        )));
    }

    /// A panic on a *worker* thread (here: a message whose `Clone`
    /// panics while a reception is materialized) must propagate out of
    /// the pooled loop with its payload — not hang the dispatcher.
    #[test]
    #[should_panic(expected = "poison msg cloned")]
    fn worker_panic_propagates_from_parallel_run() {
        #[derive(Debug)]
        struct Poison;
        impl Clone for Poison {
            fn clone(&self) -> Self {
                panic!("poison msg cloned");
            }
        }

        #[derive(Debug)]
        struct Shout;
        impl Protocol for Shout {
            type Msg = Poison;
            fn begin_slot(&mut self, node: NodeId, _: u64, _: &mut StdRng) -> Action<Poison> {
                if node == 0 {
                    Action::Transmit {
                        power: 1e9,
                        msg: Poison,
                    }
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, _: NodeId, _: u64, _: SlotOutcome<Poison>, _: &mut StdRng) {}
        }

        let params = SinrParams::default();
        let inst = gen::uniform_square(80, 1.5, 2).unwrap();
        let mut engine =
            Engine::with_backend(&params, &inst, |_| Shout, 0, EngineBackend::Parallel(2));
        engine.run(1);
    }
}
