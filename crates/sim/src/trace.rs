//! Feature-gated structured event log with first-divergence reporting
//! (DESIGN.md §11).
//!
//! The determinism gates promise byte-identical runs across backends,
//! thread counts and repetitions — but when a gate fails, a bare
//! fingerprint mismatch says nothing about *which slot, which node,
//! which field* first diverged. This module turns any run into a
//! stream of typed [`TraceEvent`]s (slot outcomes from the engine,
//! probe decisions from the selectors, re-pack classifications and
//! batch boundaries from the dynamic layers) recorded into a
//! fixed-capacity ring buffer, and [`first_divergence`] compares two
//! such streams field by field.
//!
//! # Zero cost when disabled, observational when enabled
//!
//! The whole module (and every emission site in the engine and the
//! connectivity crate) sits behind the `trace` cargo feature; a build
//! without it contains no trace code at all. With the feature compiled
//! in, emission goes through a thread-local recorder that is inert
//! until [`start`] installs a buffer — and recording only *observes*
//! values the run computed anyway, so fingerprints stay byte-identical
//! either way (the `trace-gates` CI step enforces both claims).
//!
//! The recorder is thread-local on purpose: every emission site runs on
//! the thread that owns the trial (the engine's pooled backend shards
//! *channel resolution* only; protocol state, RNG draws and
//! `finish_slot` never leave the driving thread), so concurrent trials
//! in an ensemble each get their own buffer without locking.

use std::cell::RefCell;
use std::fmt;

/// Float fields travel as IEEE-754 bit patterns (`f64::to_bits`): the
/// point of the log is *bit*-level divergence, and `NaN != NaN` would
/// make honest float comparison lie.
pub type F64Bits = u64;

/// One recorded observation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node transmitted this slot (engine, per transmitter).
    Transmit {
        /// Slot index.
        slot: u64,
        /// The transmitting node.
        node: usize,
        /// Transmission power bits.
        power: F64Bits,
    },
    /// A node decoded a message this slot (engine, per reception).
    Receive {
        /// Slot index.
        slot: u64,
        /// The decoding listener.
        node: usize,
        /// The decoded sender.
        from: usize,
        /// Achieved SINR bits.
        sinr: F64Bits,
        /// Measured affectance bits.
        affectance: F64Bits,
    },
    /// Per-slot roll-up emitted by the engine after every slot: counts
    /// plus an FNV-1a digest of the full outcome stream, so a
    /// divergence is caught at slot granularity even when its
    /// per-event records were dropped by the ring buffer.
    SlotDigest {
        /// Slot index.
        slot: u64,
        /// Transmitting nodes this slot.
        transmissions: u32,
        /// Nodes that decoded a message.
        receptions: u32,
        /// Listeners that decoded nothing.
        idle: u32,
        /// FNV-1a digest over every node's outcome (kind, sender,
        /// reception floats) in node order.
        outcomes_fnv: u64,
    },
    /// A selector probe decision: whether `sender → receiver` was
    /// admitted by the measured-affectance threshold (core::selector).
    Probe {
        /// Probing sender.
        sender: usize,
        /// Probed receiver.
        receiver: usize,
        /// Whether the probe passed the threshold.
        admitted: bool,
    },
    /// Re-pack classification of one tree link, keyed by its sender
    /// (core::repack): fresh links re-run the packing probes, dirty
    /// links relocate, clean links keep their slot grouping.
    RepackClass {
        /// The link's sender (child endpoint).
        node: usize,
        /// The classification.
        class: RepackClass,
    },
    /// A dynamic-phase batch boundary (core::repair / join / tvc).
    Batch {
        /// Phase label (`"repair"`, `"join"`, `"tvc-iteration"`).
        phase: &'static str,
        /// Iteration / batch index within the phase.
        index: u64,
        /// Batch size (failed nodes, joiners, active roots…).
        size: usize,
    },
    /// A fault from an armed [`FaultPlan`](crate::FaultPlan) acted on a
    /// node (sim::faults): a crash/deafness/degrade activation boundary
    /// or one suppressed reception.
    FaultInjected {
        /// Slot index.
        slot: u64,
        /// The faulted node.
        node: usize,
        /// Fault kind label (`"crash-stop"`, `"deafness"`,
        /// `"power-degrade"`, `"reception-drop"`).
        kind: &'static str,
    },
    /// A detector child locally declared its parent suspect after
    /// missing its timeout threshold (core::detect).
    FailureSuspected {
        /// Slot (within the detection run) the declaration happened in.
        slot: u64,
        /// The declaring child.
        node: usize,
        /// The suspected parent.
        suspect: usize,
        /// Consecutive expected receptions missed at declaration time.
        misses: u32,
    },
    /// One detect→repair→repack recovery batch of the service loop
    /// finished (bench::serve).
    RecoveryComplete {
        /// Batch index within the service run.
        index: u64,
        /// Failure events recovered in this batch.
        batch: usize,
        /// Simulated slots the detection phase used.
        detection_slots: u64,
        /// Simulated slots the repair/repack phase used.
        repair_slots: u64,
    },
}

/// The three re-pack classes of DESIGN.md §10.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepackClass {
    /// No prior slot (or no prior power): must be packed from scratch.
    Fresh,
    /// In the upward closure of a fresh link: relocates.
    Dirty,
    /// Keeps its previous slot grouping untouched.
    Clean,
}

impl fmt::Display for RepackClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RepackClass::Fresh => "fresh",
            RepackClass::Dirty => "dirty",
            RepackClass::Clean => "clean",
        })
    }
}

impl TraceEvent {
    /// The event kind as a short label (divergence reports).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Transmit { .. } => "transmit",
            TraceEvent::Receive { .. } => "receive",
            TraceEvent::SlotDigest { .. } => "slot-digest",
            TraceEvent::Probe { .. } => "probe",
            TraceEvent::RepackClass { .. } => "repack-class",
            TraceEvent::Batch { .. } => "batch",
            TraceEvent::FaultInjected { .. } => "fault-injected",
            TraceEvent::FailureSuspected { .. } => "failure-suspected",
            TraceEvent::RecoveryComplete { .. } => "recovery-complete",
        }
    }

    /// The slot this event belongs to, where one is defined.
    pub fn slot(&self) -> Option<u64> {
        match self {
            TraceEvent::Transmit { slot, .. }
            | TraceEvent::Receive { slot, .. }
            | TraceEvent::SlotDigest { slot, .. }
            | TraceEvent::FaultInjected { slot, .. }
            | TraceEvent::FailureSuspected { slot, .. } => Some(*slot),
            _ => None,
        }
    }

    /// The node this event is about, where one is defined.
    pub fn node(&self) -> Option<usize> {
        match self {
            TraceEvent::Transmit { node, .. }
            | TraceEvent::Receive { node, .. }
            | TraceEvent::RepackClass { node, .. }
            | TraceEvent::FaultInjected { node, .. }
            | TraceEvent::FailureSuspected { node, .. } => Some(*node),
            _ => None,
        }
    }

    /// `(field name, rendered value)` pairs, for field-level diffing.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        match self {
            TraceEvent::Transmit { slot, node, power } => vec![
                ("slot", slot.to_string()),
                ("node", node.to_string()),
                ("power", render_bits(*power)),
            ],
            TraceEvent::Receive {
                slot,
                node,
                from,
                sinr,
                affectance,
            } => vec![
                ("slot", slot.to_string()),
                ("node", node.to_string()),
                ("from", from.to_string()),
                ("sinr", render_bits(*sinr)),
                ("affectance", render_bits(*affectance)),
            ],
            TraceEvent::SlotDigest {
                slot,
                transmissions,
                receptions,
                idle,
                outcomes_fnv,
            } => vec![
                ("slot", slot.to_string()),
                ("transmissions", transmissions.to_string()),
                ("receptions", receptions.to_string()),
                ("idle", idle.to_string()),
                ("outcomes_fnv", format!("{outcomes_fnv:#018x}")),
            ],
            TraceEvent::Probe {
                sender,
                receiver,
                admitted,
            } => vec![
                ("sender", sender.to_string()),
                ("receiver", receiver.to_string()),
                ("admitted", admitted.to_string()),
            ],
            TraceEvent::RepackClass { node, class } => {
                vec![("node", node.to_string()), ("class", class.to_string())]
            }
            TraceEvent::Batch { phase, index, size } => vec![
                ("phase", phase.to_string()),
                ("index", index.to_string()),
                ("size", size.to_string()),
            ],
            TraceEvent::FaultInjected { slot, node, kind } => vec![
                ("slot", slot.to_string()),
                ("node", node.to_string()),
                ("fault", kind.to_string()),
            ],
            TraceEvent::FailureSuspected {
                slot,
                node,
                suspect,
                misses,
            } => vec![
                ("slot", slot.to_string()),
                ("node", node.to_string()),
                ("suspect", suspect.to_string()),
                ("misses", misses.to_string()),
            ],
            TraceEvent::RecoveryComplete {
                index,
                batch,
                detection_slots,
                repair_slots,
            } => vec![
                ("index", index.to_string()),
                ("batch", batch.to_string()),
                ("detection_slots", detection_slots.to_string()),
                ("repair_slots", repair_slots.to_string()),
            ],
        }
    }
}

fn render_bits(bits: F64Bits) -> String {
    format!("{} ({bits:#018x})", f64::from_bits(bits))
}

/// A finished recording: the (possibly truncated) event stream plus how
/// many early events the ring buffer evicted to stay within capacity.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceLog {
    /// The recorded events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events evicted from the front of the ring buffer.
    pub dropped: u64,
}

/// Fixed-capacity event recorder: on overflow the *oldest* event is
/// evicted (and counted), so the log always holds the most recent
/// window — the part that matters when a long run fails late.
#[derive(Debug)]
struct Recorder {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Default ring-buffer capacity: roomy enough for every event of the
/// experiment-sized runs while bounding memory on pathological ones.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// Installs a recorder with the given ring-buffer capacity on this
/// thread, replacing (and discarding) any previous one.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn start(capacity: usize) {
    assert!(capacity > 0, "trace ring buffer needs capacity");
    RECORDER.with(|r| {
        *r.borrow_mut() = Some(Recorder {
            events: std::collections::VecDeque::with_capacity(capacity.min(1 << 12)),
            capacity,
            dropped: 0,
        });
    });
}

/// Uninstalls this thread's recorder and returns what it captured.
/// Returns an empty log if no recorder was installed.
pub fn stop() -> TraceLog {
    RECORDER.with(|r| match r.borrow_mut().take() {
        Some(rec) => TraceLog {
            events: rec.events.into(),
            dropped: rec.dropped,
        },
        None => TraceLog::default(),
    })
}

/// Whether a recorder is installed on this thread. Emission sites may
/// check this before building an event to skip argument construction.
pub fn is_active() -> bool {
    RECORDER.with(|r| r.borrow().is_some())
}

/// Records one event into this thread's recorder; a no-op without one.
pub fn emit(event: TraceEvent) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            if rec.events.len() == rec.capacity {
                rec.events.pop_front();
                rec.dropped += 1;
            }
            rec.events.push_back(event);
        }
    });
}

/// The first difference between two event streams.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// Index into both event streams where they first differ (relative
    /// to the recorded window, i.e. after any ring-buffer drops).
    pub index: usize,
    /// The slot of the diverging event, if it carries one.
    pub slot: Option<u64>,
    /// The node of the diverging event, if it carries one.
    pub node: Option<usize>,
    /// The event kind (left side; `"<end of log>"` when one stream is
    /// a strict prefix of the other).
    pub kind: &'static str,
    /// The first differing field, or `"kind"`/`"length"` for
    /// structural differences.
    pub field: &'static str,
    /// Rendered left-hand value.
    pub left: String,
    /// Rendered right-hand value.
    pub right: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "first divergence at event #{}", self.index)?;
        if let Some(slot) = self.slot {
            write!(f, ", slot {slot}")?;
        }
        if let Some(node) = self.node {
            write!(f, ", node {node}")?;
        }
        write!(
            f,
            ": {} event, field `{}`: {} != {}",
            self.kind, self.field, self.left, self.right
        )
    }
}

/// Compares two recordings event by event and reports the first
/// difference at field granularity, or `None` when the streams agree.
///
/// Comparison starts at the beginning of each *recorded window*; if
/// either side dropped events the caller should treat an agreement as
/// "no divergence within the retained window" (the drop counts are on
/// the logs).
pub fn first_divergence(left: &TraceLog, right: &TraceLog) -> Option<Divergence> {
    for (index, pair) in left.events.iter().zip(right.events.iter()).enumerate() {
        let (l, r) = pair;
        if l == r {
            continue;
        }
        if l.kind() != r.kind() {
            return Some(Divergence {
                index,
                slot: l.slot().or(r.slot()),
                node: l.node().or(r.node()),
                kind: l.kind(),
                field: "kind",
                left: l.kind().to_string(),
                right: r.kind().to_string(),
            });
        }
        let (lf, rf) = (l.fields(), r.fields());
        let (field, lv, rv) = lf
            .into_iter()
            .zip(rf)
            .find(|(a, b)| a.1 != b.1)
            .map(|((name, lv), (_, rv))| (name, lv, rv))
            .expect("unequal events of one kind differ in some field");
        return Some(Divergence {
            index,
            slot: l.slot(),
            node: l.node(),
            kind: l.kind(),
            field,
            left: lv,
            right: rv,
        });
    }
    if left.events.len() != right.events.len() {
        let index = left.events.len().min(right.events.len());
        let longer = if left.events.len() > right.events.len() {
            &left.events[index]
        } else {
            &right.events[index]
        };
        return Some(Divergence {
            index,
            slot: longer.slot(),
            node: longer.node(),
            kind: "<end of log>",
            field: "length",
            left: left.events.len().to_string(),
            right: right.events.len().to_string(),
        });
    }
    None
}

pub use crate::snapshot::Fnv1a;

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(slot: u64, node: usize, power: f64) -> TraceEvent {
        TraceEvent::Transmit {
            slot,
            node,
            power: power.to_bits(),
        }
    }

    #[test]
    fn recorder_lifecycle_and_inertness() {
        assert!(!is_active());
        emit(tx(0, 0, 1.0)); // no recorder: dropped silently
        assert_eq!(stop(), TraceLog::default());

        start(16);
        assert!(is_active());
        emit(tx(0, 1, 2.0));
        emit(tx(1, 2, 3.0));
        let log = stop();
        assert!(!is_active());
        assert_eq!(log.dropped, 0);
        assert_eq!(log.events, vec![tx(0, 1, 2.0), tx(1, 2, 3.0)]);
    }

    #[test]
    fn ring_buffer_keeps_the_newest_window() {
        start(4);
        for i in 0..10u64 {
            emit(tx(i, 0, 1.0));
        }
        let log = stop();
        assert_eq!(log.dropped, 6);
        assert_eq!(
            log.events,
            (6..10).map(|i| tx(i, 0, 1.0)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn identical_streams_do_not_diverge() {
        let log = TraceLog {
            events: vec![tx(0, 1, 2.0), tx(1, 2, 3.0)],
            dropped: 0,
        };
        assert_eq!(first_divergence(&log, &log.clone()), None);
    }

    #[test]
    fn field_level_divergence_names_slot_node_and_field() {
        let a = TraceLog {
            events: vec![tx(0, 1, 2.0), tx(5, 3, 2.0), tx(6, 1, 2.0)],
            dropped: 0,
        };
        let mut b = a.clone();
        b.events[1] = tx(5, 3, 2.5);
        let d = first_divergence(&a, &b).expect("streams differ");
        assert_eq!(d.index, 1);
        assert_eq!(d.slot, Some(5));
        assert_eq!(d.node, Some(3));
        assert_eq!(d.kind, "transmit");
        assert_eq!(d.field, "power");
        assert!(d.left.contains('2') && d.right.contains("2.5"));
        let shown = d.to_string();
        assert!(
            shown.contains("slot 5") && shown.contains("node 3"),
            "{shown}"
        );
    }

    #[test]
    fn kind_and_length_divergences() {
        let a = TraceLog {
            events: vec![tx(0, 1, 2.0)],
            dropped: 0,
        };
        let b = TraceLog {
            events: vec![TraceEvent::Batch {
                phase: "repair",
                index: 0,
                size: 3,
            }],
            dropped: 0,
        };
        let d = first_divergence(&a, &b).unwrap();
        assert_eq!(d.field, "kind");

        let c = TraceLog {
            events: vec![tx(0, 1, 2.0), tx(1, 1, 2.0)],
            dropped: 0,
        };
        let d = first_divergence(&a, &c).unwrap();
        assert_eq!(d.field, "length");
        assert_eq!(d.index, 1);
        assert_eq!(d.slot, Some(1));
    }

    #[test]
    fn nan_floats_compare_by_bits() {
        let a = TraceLog {
            events: vec![TraceEvent::Receive {
                slot: 0,
                node: 1,
                from: 2,
                sinr: 1.0f64.to_bits(),
                affectance: f64::NAN.to_bits(),
            }],
            dropped: 0,
        };
        // Same NaN bits: no divergence, unlike `==` on floats.
        assert_eq!(first_divergence(&a, &a.clone()), None);
    }

    #[test]
    fn fnv_is_order_sensitive() {
        let mut a = Fnv1a::default();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a::default();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn events_carry_kind_slot_node_metadata() {
        let probe = TraceEvent::Probe {
            sender: 3,
            receiver: 4,
            admitted: false,
        };
        assert_eq!(probe.kind(), "probe");
        assert_eq!(probe.slot(), None);
        assert_eq!(probe.node(), None);

        let class = TraceEvent::RepackClass {
            node: 9,
            class: RepackClass::Dirty,
        };
        assert_eq!(class.node(), Some(9));
        assert_eq!(
            class.fields(),
            vec![("node", "9".to_string()), ("class", "dirty".to_string())]
        );

        let digest = TraceEvent::SlotDigest {
            slot: 11,
            transmissions: 2,
            receptions: 1,
            idle: 3,
            outcomes_fnv: 0xabcd,
        };
        assert_eq!(digest.slot(), Some(11));
        assert_eq!(digest.kind(), "slot-digest");
    }

    #[test]
    fn robustness_events_carry_metadata() {
        let fault = TraceEvent::FaultInjected {
            slot: 7,
            node: 3,
            kind: "crash-stop",
        };
        assert_eq!(fault.kind(), "fault-injected");
        assert_eq!(fault.slot(), Some(7));
        assert_eq!(fault.node(), Some(3));
        assert_eq!(
            fault.fields(),
            vec![
                ("slot", "7".to_string()),
                ("node", "3".to_string()),
                ("fault", "crash-stop".to_string()),
            ]
        );

        let suspect = TraceEvent::FailureSuspected {
            slot: 12,
            node: 4,
            suspect: 2,
            misses: 3,
        };
        assert_eq!(suspect.kind(), "failure-suspected");
        assert_eq!(suspect.slot(), Some(12));
        assert_eq!(suspect.node(), Some(4));

        let done = TraceEvent::RecoveryComplete {
            index: 1,
            batch: 2,
            detection_slots: 96,
            repair_slots: 30,
        };
        assert_eq!(done.kind(), "recovery-complete");
        assert_eq!(done.slot(), None);
        assert_eq!(done.node(), None);

        // A fault-kind mismatch diverges at field granularity.
        let a = TraceLog {
            events: vec![fault.clone()],
            dropped: 0,
        };
        let b = TraceLog {
            events: vec![TraceEvent::FaultInjected {
                slot: 7,
                node: 3,
                kind: "deafness",
            }],
            dropped: 0,
        };
        let d = first_divergence(&a, &b).unwrap();
        assert_eq!(d.kind, "fault-injected");
        assert_eq!(d.field, "fault");
        assert_eq!(d.slot, Some(7));
    }
}
