//! The per-node protocol interface.

use rand::rngs::StdRng;
use sinr_geom::NodeId;

/// What a node does in one slot.
#[derive(Clone, Debug, PartialEq)]
pub enum Action<M> {
    /// Transmit `msg` with the given power (must be positive and finite).
    Transmit {
        /// Transmission power.
        power: f64,
        /// The message payload.
        msg: M,
    },
    /// Listen for one decodable message.
    Listen,
    /// Do nothing this slot (inactive nodes).
    Sleep,
}

/// A successfully decoded message, as seen by the receiver.
///
/// Besides the payload, the receiver learns the sender's identity and —
/// because messages carry the sender's location in the paper's model —
/// the distance. The measured SINR and affectance implement the
/// measurement assumption of §8.2.
#[derive(Clone, Debug, PartialEq)]
pub struct Reception<M> {
    /// The sender.
    pub from: NodeId,
    /// The decoded payload.
    pub msg: M,
    /// Distance to the sender.
    pub distance: f64,
    /// Achieved SINR at the receiver, or `NaN` if unmeasured
    /// ([`Protocol::MEASURES_SINR`] is `false`).
    pub sinr: f64,
    /// Total thresholded affectance of the *other* transmitters on the
    /// implied link, or `NaN` if undefined (sender below noise floor)
    /// or unmeasured ([`Protocol::MEASURES_AFFECTANCE`] is `false`).
    pub affectance: f64,
}

/// What happened to a node during a slot.
#[derive(Clone, Debug, PartialEq)]
pub enum SlotOutcome<M> {
    /// The node transmitted (no feedback; acknowledgments are a
    /// protocol-level concern, as in the paper).
    Transmitted,
    /// The node listened and decoded a message.
    Received(Reception<M>),
    /// The node listened and decoded nothing.
    Idle,
    /// The node slept.
    Slept,
}

/// A per-node state machine driven by the [`Engine`](crate::Engine).
///
/// One value of the implementing type exists per node; the engine calls
/// [`begin_slot`](Protocol::begin_slot) on every node, resolves the
/// channel, then calls [`end_slot`](Protocol::end_slot) with each node's
/// outcome. The `rng` argument is the node's private deterministic
/// stream — protocols must draw randomness only from it so whole runs
/// are reproducible from the engine seed.
///
/// Payloads must be `Send + Sync` because the engine's
/// [`Parallel`](crate::EngineBackend::Parallel) backend shares a slot's
/// action set read-only with its worker pool and merges the resolved
/// outcomes back; protocol state itself never leaves the engine's
/// thread, so outcomes are byte-identical at any thread count.
pub trait Protocol {
    /// The message payload type.
    type Msg: Clone + Send + Sync;

    /// Whether the engine measures [`Reception::affectance`] for this
    /// protocol's receptions.
    ///
    /// Measured affectance is the §8.2 instrument: an exact
    /// `O(transmitters)` canonical-order sum per decoded reception,
    /// recomputed naively so the reported f64 is bit-identical on
    /// every backend. That makes it the single most expensive part of
    /// a dense slot — and protocols that never read the field pay for
    /// it anyway. Opting out (`false`) sets
    /// [`Reception::affectance`] — and its bits in the `trace` slot
    /// digest — to `f64::NAN`; every other observable (decode winners,
    /// SINR, distances, reports, RNG streams) is unchanged. Defaults
    /// to `true` so measurement stays on unless a protocol explicitly
    /// declares it unused.
    const MEASURES_AFFECTANCE: bool = true;

    /// Whether the engine reports [`Reception::sinr`] for this
    /// protocol's receptions.
    ///
    /// Like the affectance instrument, the reported SINR is pinned to
    /// the canonical naive-order sum — and on the indexed backends
    /// that means an `O(transmitters)` exact recompute per certified
    /// decode, *after* the certificate already settled who decodes.
    /// Protocols that never read the field can opt out (`false`):
    /// decode winners, distances, reports and RNG streams are
    /// unchanged on every backend (winner identity comes from the
    /// certificate, not the reported value), while
    /// [`Reception::sinr`] — and its bits in the `trace` slot digest —
    /// is `f64::NAN`. Defaults to `true`.
    const MEASURES_SINR: bool = true;

    /// Chooses this node's action for slot `slot`.
    fn begin_slot(&mut self, node: NodeId, slot: u64, rng: &mut StdRng) -> Action<Self::Msg>;

    /// Observes the outcome of slot `slot`.
    fn end_slot(
        &mut self,
        node: NodeId,
        slot: u64,
        outcome: SlotOutcome<Self::Msg>,
        rng: &mut StdRng,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_equality() {
        let a: Action<u8> = Action::Transmit { power: 1.0, msg: 3 };
        assert_eq!(a, Action::Transmit { power: 1.0, msg: 3 });
        assert_ne!(a, Action::Listen);
        assert_ne!(Action::<u8>::Listen, Action::Sleep);
    }

    #[test]
    fn outcome_carries_reception() {
        let r = Reception {
            from: 1,
            msg: "x",
            distance: 2.0,
            sinr: 5.0,
            affectance: 0.2,
        };
        let o = SlotOutcome::Received(r.clone());
        match o {
            SlotOutcome::Received(got) => assert_eq!(got, r),
            _ => panic!("wrong variant"),
        }
    }
}
