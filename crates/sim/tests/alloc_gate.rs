//! Allocation gate for the per-slot hot path (DESIGN.md §12).
//!
//! The engine owns a `SlotArena` of recycled buffers — action and
//! outcome vectors, the transmitter list, the interference field's
//! `FieldBuffers` — so after a warm-up slot has sized every buffer, a
//! steady-state slot on the serial grid path performs **zero** heap
//! allocations. This test pins that with a counting global allocator:
//! it is the hook that keeps "arena-recycled" an enforced property
//! instead of a comment.
//!
//! Debug builds are exempted from the zero bound (but still bounded):
//! `InterferenceField::build_with` runs a `debug_assert!` that collects
//! the sender ids into a `HashSet` to reject duplicates, which
//! allocates a few times per slot by design. Release builds compile
//! that check out, and the release gate is the one CI's tier-1 job
//! enforces (`cargo test --release`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use sinr_geom::{gen, NodeId};
use sinr_phy::SinrParams;
use sinr_sim::{Action, Engine, EngineBackend, Protocol, SlotOutcome};

/// Counts every allocation and reallocation; frees are not counted —
/// the gate is about acquiring memory in the steady state.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Deterministic rotating transmitter pattern with a unit message: the
/// transmitter set changes every slot (so the grid genuinely rebuilds)
/// without touching the RNG or allocating in the protocol itself.
#[derive(Debug)]
struct Rotor;

impl Protocol for Rotor {
    type Msg = ();

    fn begin_slot(&mut self, node: NodeId, slot: u64, _: &mut StdRng) -> Action<()> {
        if (node + slot as usize) % 5 == 0 {
            Action::Transmit {
                power: 600.0,
                msg: (),
            }
        } else {
            Action::Listen
        }
    }

    fn end_slot(&mut self, _: NodeId, _: u64, _: SlotOutcome<()>, _: &mut StdRng) {}
}

#[test]
fn steady_state_slots_do_not_allocate() {
    let params = SinrParams::default();
    let inst = gen::uniform_square(256, 1.5, 11).unwrap();
    let mut engine = Engine::with_backend(&params, &inst, |_| Rotor, 11, EngineBackend::Grid);

    // Warm-up: size every arena buffer. The rotation period is 5, so 5
    // slots see every transmitter-set size the pattern produces.
    engine.run(5);

    let before = ALLOCS.load(Ordering::Relaxed);
    let slots = 20;
    engine.run(slots);
    let delta = ALLOCS.load(Ordering::Relaxed) - before;

    if cfg!(debug_assertions) {
        // The duplicate-sender debug_assert builds a HashSet per field
        // build; allow it a generous handful of allocations per slot.
        let budget = slots * 16;
        assert!(
            delta <= budget,
            "debug steady state allocated {delta} times in {slots} slots (budget {budget})"
        );
    } else {
        assert_eq!(
            delta, 0,
            "release steady state allocated {delta} times in {slots} slots; \
             a per-slot buffer escaped the SlotArena"
        );
    }
}
