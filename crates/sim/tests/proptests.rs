//! Property-based tests for the slotted radio simulator.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use sinr_geom::{gen, NodeId};
use sinr_phy::SinrParams;
use sinr_sim::{Action, Engine, Protocol, SlotOutcome};

/// Transmit with probability `p`, else listen; count events.
#[derive(Debug)]
struct RandomTalker {
    p: f64,
    power: f64,
    sent: u64,
    received: u64,
    idle: u64,
}

impl Protocol for RandomTalker {
    type Msg = u64;
    fn begin_slot(&mut self, node: NodeId, slot: u64, rng: &mut StdRng) -> Action<u64> {
        if rng.gen_bool(self.p) {
            Action::Transmit {
                power: self.power,
                msg: slot * 1000 + node as u64,
            }
        } else {
            Action::Listen
        }
    }
    fn end_slot(&mut self, _: NodeId, _: u64, o: SlotOutcome<u64>, _: &mut StdRng) {
        match o {
            SlotOutcome::Transmitted => self.sent += 1,
            SlotOutcome::Received(_) => self.received += 1,
            SlotOutcome::Idle => self.idle += 1,
            SlotOutcome::Slept => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Conservation: per slot, transmitters + receivers + idle listeners
    /// = n, and engine stats aggregate the slot reports exactly.
    #[test]
    fn slot_accounting(seed in 0u64..5_000, n in 2usize..30, p in 0.05f64..0.9) {
        let params = SinrParams::default();
        let inst = gen::uniform_square(n, 2.0, seed).unwrap();
        let power = params.min_power_for_length(inst.delta()) * 4.0;
        let mut engine = Engine::new(
            &params,
            &inst,
            |_| RandomTalker { p, power, sent: 0, received: 0, idle: 0 },
            seed,
        );
        let mut tx_total = 0u64;
        let mut rx_total = 0u64;
        for _ in 0..15 {
            let r = engine.step();
            prop_assert_eq!(r.transmissions + r.receptions + r.idle_listeners, n);
            tx_total += r.transmissions as u64;
            rx_total += r.receptions as u64;
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.transmissions, tx_total);
        prop_assert_eq!(stats.receptions, rx_total);
        prop_assert_eq!(stats.slots, 15);
        let node_sent: u64 = engine.nodes().iter().map(|t| t.sent).sum();
        let node_recv: u64 = engine.nodes().iter().map(|t| t.received).sum();
        prop_assert_eq!(node_sent, tx_total);
        prop_assert_eq!(node_recv, rx_total);
    }

    /// β ≥ 1 decode uniqueness: receivers decode at most one message,
    /// and the decoded payload always matches an actual transmitter's.
    #[test]
    fn decode_uniqueness_and_integrity(seed in 0u64..5_000, n in 3usize..24) {
        #[derive(Debug, Default)]
        struct Audit {
            decoded_from: Vec<(u64, NodeId, u64)>, // (slot, sender, payload)
        }
        impl Protocol for Audit {
            type Msg = u64;
            fn begin_slot(&mut self, node: NodeId, _: u64, rng: &mut StdRng) -> Action<u64> {
                if rng.gen_bool(0.4) {
                    Action::Transmit { power: 1e4, msg: node as u64 }
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, _: NodeId, slot: u64, o: SlotOutcome<u64>, _: &mut StdRng) {
                if let SlotOutcome::Received(r) = o {
                    self.decoded_from.push((slot, r.from, r.msg));
                }
            }
        }
        let params = SinrParams::default();
        let inst = gen::uniform_square(n, 2.0, seed).unwrap();
        let mut engine = Engine::new(&params, &inst, |_| Audit::default(), seed);
        engine.run(10);
        for node in engine.nodes() {
            // Payload integrity: msg == sender id by construction.
            for &(_, from, msg) in &node.decoded_from {
                prop_assert_eq!(msg, from as u64);
            }
            // At most one decode per slot per node.
            let mut slots: Vec<u64> = node.decoded_from.iter().map(|e| e.0).collect();
            slots.sort_unstable();
            slots.dedup();
            prop_assert_eq!(slots.len(), node.decoded_from.len());
        }
    }

    /// Reported SINR at receivers is always ≥ β and the reported
    /// distance matches the instance geometry.
    #[test]
    fn reception_metadata_correct(seed in 0u64..5_000, n in 2usize..20) {
        #[derive(Debug, Default)]
        struct Meta {
            checks: Vec<(NodeId, f64, f64)>, // (from, distance, sinr)
        }
        impl Protocol for Meta {
            type Msg = ();
            fn begin_slot(&mut self, node: NodeId, _: u64, rng: &mut StdRng) -> Action<()> {
                if node == 0 || rng.gen_bool(0.2) {
                    Action::Transmit { power: 5e3, msg: () }
                } else {
                    Action::Listen
                }
            }
            fn end_slot(&mut self, _: NodeId, _: u64, o: SlotOutcome<()>, _: &mut StdRng) {
                if let SlotOutcome::Received(r) = o {
                    self.checks.push((r.from, r.distance, r.sinr));
                }
            }
        }
        let params = SinrParams::default();
        let inst = gen::uniform_square(n, 2.0, seed).unwrap();
        let mut engine = Engine::new(&params, &inst, |_| Meta::default(), seed);
        engine.run(8);
        for (id, node) in engine.nodes().iter().enumerate() {
            for &(from, distance, sinr) in &node.checks {
                prop_assert!(sinr >= params.beta());
                prop_assert!((distance - inst.distance(from, id)).abs() < 1e-12);
            }
        }
    }
}
