//! Uniform-grid spatial indexes.
//!
//! Two structures live here:
//!
//! - [`GridIndex`] — an immutable index over *all* nodes of an
//!   [`Instance`], for range queries and nearest-neighbor searches;
//! - [`WeightedCellGrid`] — a mutable bucket grid over an arbitrary
//!   subset of nodes with a per-cell aggregate weight, the substrate of
//!   the interference field in `sinr-phy` (cell-aggregate transmit
//!   power, ring-ordered cell enumeration for certified far-field
//!   bounds).

use std::collections::HashMap;

use crate::{Instance, NodeId, Point};

/// Integer key of a grid cell: `(⌊x/cell⌋, ⌊y/cell⌋)`.
pub type CellKey = (i64, i64);

/// A uniform grid over the nodes of an [`Instance`], supporting fast
/// range (ball) queries.
///
/// The simulator uses it to prune interference sums and the `Init`
/// analysis tooling uses it for annulus counting. Cells are square with a
/// caller-chosen side length; nodes are bucketed by `floor(coord / cell)`.
///
/// # Example
///
/// ```
/// use sinr_geom::{gen, GridIndex};
///
/// let inst = gen::uniform_square(128, 2.0, 7)?;
/// let grid = GridIndex::build(&inst, 4.0);
/// let center = inst.position(0);
/// let mut near = grid.nodes_within(center, 10.0);
/// near.sort_unstable();
/// let mut brute = inst.nodes_in_ball(center, 10.0);
/// brute.sort_unstable();
/// assert_eq!(near, brute);
/// # Ok::<(), sinr_geom::GeomError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GridIndex {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<NodeId>>,
    positions: Vec<Point>,
    /// Bounding rectangle of occupied cell keys; range queries are
    /// clamped to it so an arbitrarily large radius never scans more
    /// cells than exist.
    key_min: (i64, i64),
    key_max: (i64, i64),
}

impl GridIndex {
    /// Builds an index with square cells of side `cell_size`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn build(instance: &Instance, cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be positive and finite, got {cell_size}"
        );
        let mut cells: HashMap<(i64, i64), Vec<NodeId>> = HashMap::new();
        let mut key_min = (i64::MAX, i64::MAX);
        let mut key_max = (i64::MIN, i64::MIN);
        for (id, p) in instance.iter() {
            let k = Self::key(p, cell_size);
            key_min = (key_min.0.min(k.0), key_min.1.min(k.1));
            key_max = (key_max.0.max(k.0), key_max.1.max(k.1));
            cells.entry(k).or_default().push(id);
        }
        GridIndex {
            cell: cell_size,
            cells,
            positions: instance.points().to_vec(),
            key_min,
            key_max,
        }
    }

    #[inline]
    fn key(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Cell side length.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// All nodes within the closed ball of `radius` around `center`.
    ///
    /// Allocates a fresh `Vec` per call, so it is intended for tests and
    /// one-shot diagnostics only; library code on a hot path (anything
    /// calling from inside a per-node or per-slot loop) must use
    /// [`for_each_within`](GridIndex::for_each_within) or
    /// [`for_each_cell_within`](GridIndex::for_each_cell_within) instead.
    pub fn nodes_within(&self, center: Point, radius: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, |id| out.push(id));
        out
    }

    /// Calls `f` for each node within the closed ball, without allocating.
    ///
    /// The cell scan is clamped to the occupied-cell bounding rectangle,
    /// so the cost is `O(min(query area, occupied area) / cell² +
    /// matches)` — a huge radius degrades gracefully to a full scan of
    /// the existing cells rather than of the query rectangle.
    pub fn for_each_within<F: FnMut(NodeId)>(&self, center: Point, radius: f64, mut f: F) {
        let r2 = radius * radius;
        self.for_each_cell_within(center, radius, |_, bucket| {
            for &id in bucket {
                if self.positions[id].distance_sq(center) <= r2 {
                    f(id);
                }
            }
        });
    }

    /// Calls `f` once per occupied cell whose key rectangle intersects
    /// the axis-aligned bounding box of the query ball, passing the cell
    /// key and its bucket.
    ///
    /// This is the cell-aggregate primitive: the bucket may contain
    /// nodes slightly *outside* the ball (corner cells), but every node
    /// *inside* the ball is guaranteed to be in some visited bucket.
    /// Callers doing exact work must filter by distance themselves;
    /// callers deriving bounds may use the bucket wholesale.
    pub fn for_each_cell_within<F: FnMut(CellKey, &[NodeId])>(
        &self,
        center: Point,
        radius: f64,
        mut f: F,
    ) {
        if radius.is_nan() || radius < 0.0 || self.cells.is_empty() {
            return;
        }
        let (qx0, qy0) = Self::key(Point::new(center.x - radius, center.y - radius), self.cell);
        let (qx1, qy1) = Self::key(Point::new(center.x + radius, center.y + radius), self.cell);
        let (cx0, cy0) = (qx0.max(self.key_min.0), qy0.max(self.key_min.1));
        let (cx1, cy1) = (qx1.min(self.key_max.0), qy1.min(self.key_max.1));
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(bucket) = self.cells.get(&(cx, cy)) {
                    f((cx, cy), bucket);
                }
            }
        }
    }

    /// Count of nodes within the closed ball (no allocation).
    pub fn count_within(&self, center: Point, radius: f64) -> usize {
        let mut n = 0;
        self.for_each_within(center, radius, |_| n += 1);
        n
    }

    /// The nearest other node to `u`, or `None` for a 1-node instance.
    ///
    /// Runs an expanding-ring search, so it is fast when the grid cell is
    /// on the order of the typical nearest-neighbor distance.
    pub fn nearest_neighbor(&self, u: NodeId) -> Option<(NodeId, f64)> {
        if self.positions.len() < 2 {
            return None;
        }
        let center = self.positions[u];
        let mut radius = self.cell;
        loop {
            let mut best: Option<(NodeId, f64)> = None;
            self.for_each_within(center, radius, |id| {
                if id != u {
                    let d = self.positions[id].distance(center);
                    if best.map_or(true, |(_, bd)| d < bd) {
                        best = Some((id, d));
                    }
                }
            });
            // A candidate found strictly inside the ring is provably the
            // global nearest once radius exceeds its distance.
            if let Some((id, d)) = best {
                if d <= radius {
                    return Some((id, d));
                }
            }
            radius *= 2.0;
            // Diameter bound: every node is within this radius eventually.
            if radius > 4.0 * self.diameter_upper_bound() {
                return best;
            }
        }
    }

    fn diameter_upper_bound(&self) -> f64 {
        // Conservative: diagonal of the bounding box of stored positions.
        let bb = crate::Aabb::from_points(self.positions.iter().copied())
            .expect("index holds at least one point");
        bb.diagonal().max(self.cell)
    }
}

/// A read-only view of one occupied [`WeightedCellGrid`] cell: the
/// cached aggregate weight plus the member columns as parallel slices
/// (structure-of-arrays), in insertion order.
///
/// The slice accessors are the hot-loop interface: a ring
/// accumulation walks `ws()`/`xs()`/`ys()` as contiguous `f64` runs
/// with no pointer chasing. [`members`](CellView::members) re-zips
/// them for callers that want tuples.
#[derive(Clone, Copy, Debug)]
pub struct CellView<'a> {
    weight: f64,
    ids: &'a [NodeId],
    xs: &'a [f64],
    ys: &'a [f64],
    ws: &'a [f64],
}

impl<'a> CellView<'a> {
    /// The aggregate weight of the cell (sum of member weights, in
    /// insertion order).
    #[inline]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Number of members in this cell.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the cell is empty (never true for visited cells).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Member node ids, in insertion order.
    #[inline]
    pub fn ids(&self) -> &'a [NodeId] {
        self.ids
    }

    /// Member x coordinates, parallel to [`ids`](CellView::ids).
    #[inline]
    pub fn xs(&self) -> &'a [f64] {
        self.xs
    }

    /// Member y coordinates, parallel to [`ids`](CellView::ids).
    #[inline]
    pub fn ys(&self) -> &'a [f64] {
        self.ys
    }

    /// Member weights, parallel to [`ids`](CellView::ids).
    #[inline]
    pub fn ws(&self) -> &'a [f64] {
        self.ws
    }

    /// The `(node, position, weight)` members, re-zipped from the
    /// parallel columns.
    pub fn members(&self) -> impl Iterator<Item = (NodeId, Point, f64)> + 'a {
        let (ids, xs, ys, ws) = (self.ids, self.xs, self.ys, self.ws);
        (0..ids.len()).map(move |i| (ids[i], Point::new(xs[i], ys[i]), ws[i]))
    }
}

/// Largest cell-index magnitude the dense layout accepts: `2^31` keeps
/// every index exactly representable as `f64`, makes the `as i64` cast
/// lossless, and lets rectangle extents multiply without overflow.
const MAX_CELL_INDEX: f64 = (1i64 << 31) as f64;

/// Debug-build ceiling on the dense cell-table area. The interference
/// field clamps its cell size to `span / MAX_CELLS_PER_AXIS`, which
/// bounds the table at ~67×67 regardless of n; anything within a few
/// orders of magnitude of this limit means a degenerate cell size for
/// the coordinate range (the dense table would dwarf the member set).
const MAX_DENSE_CELLS: u128 = 1 << 24;

/// A mutable bucket grid over weighted points, with per-cell aggregate
/// weights and ring-ordered cell enumeration.
///
/// This is the spatial substrate of `sinr-phy`'s interference field: a
/// slot's transmitters are inserted with their transmit power as the
/// weight; per-cell aggregates then bound the far-field interference of
/// every cell not yet enumerated (`remaining weight × gain(min
/// distance)`), which is what lets the field certify SINR decisions
/// from a near-field prefix.
///
/// # Layout
///
/// Storage is structure-of-arrays: members live in four parallel flat
/// `Vec`s (`ids`/`xs`/`ys`/`ws`) grouped by cell, indexed by a
/// CSR-style `cell_start` table over a *dense* column-major cell
/// rectangle (the bounding rectangle of occupied keys). Queries do no
/// hashing: a cell is one index computation and one contiguous slice.
/// A second set of insertion-ordered staging arrays is the mutation
/// source of truth; [`rebuild`](WeightedCellGrid::rebuild) scatters it
/// into the CSR layout with a stable counting sort, so within-cell
/// member order is exactly insertion order — the iteration-order
/// contract every accumulated float in `sinr-phy` depends on.
///
/// [`rebuild`](WeightedCellGrid::rebuild) is the intended bulk
/// constructor (one pass to stage, one scatter — linear, and it reuses
/// every buffer across calls). [`insert`](WeightedCellGrid::insert) /
/// [`remove`](WeightedCellGrid::remove) keep the incremental API for
/// small edits and tests, at `O(n + cells)` per call (each re-scatters
/// the index).
///
/// Cell-key bounds grow monotonically: removals never shrink the
/// scanned rectangle (a stale superset only costs empty probes, never
/// correctness).
#[derive(Clone, Debug)]
pub struct WeightedCellGrid {
    cell: f64,
    total_weight: f64,
    key_min: CellKey,
    key_max: CellKey,
    /// Dense cell-table extents: `cols` along x, `rows` along y.
    /// Column-major linearization (`x` major, `y` minor) so the
    /// rectangular near-scan's inner loop walks contiguous cells.
    cols: usize,
    rows: usize,
    /// Insertion-ordered staging columns (mutation source of truth).
    stage_ids: Vec<NodeId>,
    stage_xs: Vec<f64>,
    stage_ys: Vec<f64>,
    stage_ws: Vec<f64>,
    /// CSR index: member range of linear cell `c` is
    /// `cell_start[c] .. cell_start[c + 1]`.
    cell_start: Vec<u32>,
    cell_weight: Vec<f64>,
    occupied: usize,
    /// Cell-grouped member columns (scatter of the staging arrays).
    ids: Vec<NodeId>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    ws: Vec<f64>,
    /// Scatter cursors (scratch kept for reuse).
    cursor: Vec<u32>,
}

impl WeightedCellGrid {
    /// Creates an empty grid with square cells of side `cell_size`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be positive and finite, got {cell_size}"
        );
        WeightedCellGrid {
            cell: cell_size,
            total_weight: 0.0,
            key_min: (i64::MAX, i64::MAX),
            key_max: (i64::MIN, i64::MIN),
            cols: 0,
            rows: 0,
            stage_ids: Vec::new(),
            stage_xs: Vec::new(),
            stage_ys: Vec::new(),
            stage_ws: Vec::new(),
            cell_start: Vec::new(),
            cell_weight: Vec::new(),
            occupied: 0,
            ids: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            ws: Vec::new(),
            cursor: Vec::new(),
        }
    }

    /// Cell side length.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of members currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.stage_ids.len()
    }

    /// Whether the grid is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stage_ids.is_empty()
    }

    /// Number of non-empty cells.
    #[inline]
    pub fn occupied_cells(&self) -> usize {
        self.occupied
    }

    /// Sum of all member weights. Insertions accumulate (addition of
    /// non-negative weights only); removals re-aggregate from scratch
    /// (never by subtraction, which would not round-trip the float).
    /// Either way it carries only summation rounding — callers using it
    /// as a bound must still apply their own guard factor.
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// The cell key containing point `p`.
    ///
    /// Debug builds assert the index magnitude stays below `2^31` —
    /// beyond that the `f64 → i64` cast would quantize or saturate,
    /// which means the cell size is degenerate for the coordinate
    /// range.
    #[inline]
    pub fn key_of(&self, p: Point) -> CellKey {
        let kx = (p.x / self.cell).floor();
        let ky = (p.y / self.cell).floor();
        debug_assert!(
            kx.abs() < MAX_CELL_INDEX && ky.abs() < MAX_CELL_INDEX,
            "cell index overflow: point ({}, {}) with cell size {} needs index ({kx}, {ky})",
            p.x,
            p.y,
            self.cell
        );
        (kx as i64, ky as i64)
    }

    /// Linear (column-major) index of an in-rectangle cell key.
    #[inline]
    fn lin(&self, k: CellKey) -> usize {
        (k.0 - self.key_min.0) as usize * self.rows + (k.1 - self.key_min.1) as usize
    }

    #[inline]
    fn in_rect(&self, k: CellKey) -> bool {
        k.0 >= self.key_min.0
            && k.0 <= self.key_max.0
            && k.1 >= self.key_min.1
            && k.1 <= self.key_max.1
    }

    /// The member range of linear cell `c`.
    #[inline]
    fn seg(&self, c: usize) -> (usize, usize) {
        (self.cell_start[c] as usize, self.cell_start[c + 1] as usize)
    }

    /// Re-derives the dense cell table and CSR arrays from the staging
    /// columns: grow the key rectangle over all staged keys, count,
    /// prefix-sum, then stable-scatter — within-cell member order is
    /// global insertion order restricted to the cell, and each cell's
    /// aggregate weight accumulates in that same order (bit-compatible
    /// with a sequence of incremental inserts).
    fn reindex(&mut self) {
        for i in 0..self.stage_ids.len() {
            let k = self.key_of(Point::new(self.stage_xs[i], self.stage_ys[i]));
            self.key_min = (self.key_min.0.min(k.0), self.key_min.1.min(k.1));
            self.key_max = (self.key_max.0.max(k.0), self.key_max.1.max(k.1));
        }
        if self.key_min.0 > self.key_max.0 {
            // Nothing ever inserted: keep the zero-extent empty table.
            self.cols = 0;
            self.rows = 0;
            self.cell_start.clear();
            self.cell_start.push(0);
            self.cell_weight.clear();
            self.occupied = 0;
            return;
        }
        let cols = (self.key_max.0 - self.key_min.0 + 1) as u128;
        let rows = (self.key_max.1 - self.key_min.1 + 1) as u128;
        debug_assert!(
            cols * rows <= MAX_DENSE_CELLS,
            "degenerate cell size: {} members span a {cols}×{rows} cell rectangle \
             (cell {}, key rect {:?}..={:?}); the dense layout caps at {MAX_DENSE_CELLS} cells",
            self.stage_ids.len(),
            self.cell,
            self.key_min,
            self.key_max
        );
        self.cols = cols as usize;
        self.rows = rows as usize;
        let ncells = self.cols * self.rows;
        let n = self.stage_ids.len();
        debug_assert!(
            n < u32::MAX as usize,
            "member count overflows the u32 CSR index"
        );

        self.cell_start.clear();
        self.cell_start.resize(ncells + 1, 0);
        for i in 0..n {
            let c = self.lin(self.key_of(Point::new(self.stage_xs[i], self.stage_ys[i])));
            self.cell_start[c + 1] += 1;
        }
        self.occupied = 0;
        for c in 0..ncells {
            if self.cell_start[c + 1] > 0 {
                self.occupied += 1;
            }
            self.cell_start[c + 1] += self.cell_start[c];
        }

        self.cursor.clear();
        self.cursor.extend_from_slice(&self.cell_start[..ncells]);
        self.cell_weight.clear();
        self.cell_weight.resize(ncells, 0.0);
        self.ids.clear();
        self.ids.resize(n, 0);
        self.xs.clear();
        self.xs.resize(n, 0.0);
        self.ys.clear();
        self.ys.resize(n, 0.0);
        self.ws.clear();
        self.ws.resize(n, 0.0);
        for i in 0..n {
            let (x, y, w) = (self.stage_xs[i], self.stage_ys[i], self.stage_ws[i]);
            let c = self.lin(self.key_of(Point::new(x, y)));
            let dst = self.cursor[c] as usize;
            self.cursor[c] += 1;
            self.ids[dst] = self.stage_ids[i];
            self.xs[dst] = x;
            self.ys[dst] = y;
            self.ws[dst] = w;
            self.cell_weight[c] += w;
        }
    }

    /// Clears the grid and re-keys it to a new cell size, keeping every
    /// buffer's capacity — the per-slot reuse entry point of the
    /// interference field's scratch arena.
    pub fn reset(&mut self, cell_size: f64) {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be positive and finite, got {cell_size}"
        );
        self.cell = cell_size;
        self.total_weight = 0.0;
        self.key_min = (i64::MAX, i64::MAX);
        self.key_max = (i64::MIN, i64::MIN);
        self.cols = 0;
        self.rows = 0;
        self.stage_ids.clear();
        self.stage_xs.clear();
        self.stage_ys.clear();
        self.stage_ws.clear();
        self.cell_start.clear();
        self.cell_start.push(0);
        self.cell_weight.clear();
        self.occupied = 0;
        self.ids.clear();
        self.xs.clear();
        self.ys.clear();
        self.ws.clear();
    }

    /// Bulk-builds the grid contents in one linear pass: stages every
    /// member in iteration order, then scatters once. Equivalent to
    /// (and bit-compatible with) a loop of
    /// [`insert`](WeightedCellGrid::insert) calls, without the per-call
    /// re-scatter. Appends to any existing members.
    pub fn rebuild<I: IntoIterator<Item = (NodeId, Point, f64)>>(&mut self, members: I) {
        for (id, p, w) in members {
            self.stage_ids.push(id);
            self.stage_xs.push(p.x);
            self.stage_ys.push(p.y);
            self.stage_ws.push(w);
            self.total_weight += w;
        }
        self.reindex();
    }

    /// Inserts a member, keeping the query index fresh. The aggregate
    /// accumulates by addition, bit-compatible with the bulk path; the
    /// re-scatter makes a single insert `O(n + cells)` — batch inserts
    /// through [`rebuild`](WeightedCellGrid::rebuild) on hot paths.
    pub fn insert(&mut self, id: NodeId, p: Point, weight: f64) {
        self.rebuild(std::iter::once((id, p, weight)));
    }

    /// Removes the most recently inserted member with this id in the
    /// cell containing `p`; returns whether one was found.
    /// `O(n + cells)` (re-scatters the index).
    pub fn remove(&mut self, id: NodeId, p: Point) -> bool {
        let k = self.key_of(p);
        if !self.in_rect(k) {
            return false;
        }
        let Some(pos) = (0..self.stage_ids.len()).rev().find(|&i| {
            self.stage_ids[i] == id
                && self.key_of(Point::new(self.stage_xs[i], self.stage_ys[i])) == k
        }) else {
            return false;
        };
        self.stage_ids.remove(pos);
        self.stage_xs.remove(pos);
        self.stage_ys.remove(pos);
        self.stage_ws.remove(pos);
        self.reindex();
        // Re-aggregate (never subtract) in deterministic linear cell
        // order; the old bucket layout summed in hash-map order, which
        // is why callers must treat this as "exact up to summation
        // rounding", never as a bit-pinned quantity.
        self.total_weight = self.cell_weight.iter().sum();
        true
    }

    /// Calls `f` for every member of every cell whose rectangle
    /// intersects the bounding box of the ball around `center` — a
    /// superset of the members within `radius`; callers needing the
    /// exact ball must filter by distance themselves.
    pub fn for_each_member_near<F: FnMut(NodeId, Point, f64)>(
        &self,
        center: Point,
        radius: f64,
        mut f: F,
    ) {
        if radius.is_nan() || radius < 0.0 || self.is_empty() {
            return;
        }
        let lo = self.key_of(Point::new(center.x - radius, center.y - radius));
        let hi = self.key_of(Point::new(center.x + radius, center.y + radius));
        let (cx0, cy0) = (lo.0.max(self.key_min.0), lo.1.max(self.key_min.1));
        let (cx1, cy1) = (hi.0.min(self.key_max.0), hi.1.min(self.key_max.1));
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                let (lo, hi) = self.seg(self.lin((cx, cy)));
                for i in lo..hi {
                    f(self.ids[i], Point::new(self.xs[i], self.ys[i]), self.ws[i]);
                }
            }
        }
    }

    /// Visits every occupied cell at Chebyshev ring `ring` around the
    /// cell containing `center` (ring 0 is the center cell itself),
    /// clamped to the occupied-key rectangle. Returns the number of
    /// occupied cells visited.
    ///
    /// Together with [`max_ring_from`](WeightedCellGrid::max_ring_from)
    /// this enumerates every occupied cell exactly once, in
    /// nondecreasing order of a *distance lower bound*: once ring `r`
    /// has been visited, every unvisited member lies at distance
    /// `> (r · cell)` from any point inside the center cell — the
    /// certified far-field cutoff the interference field relies on.
    pub fn for_each_ring_cell<F: FnMut(CellView<'_>)>(
        &self,
        center: Point,
        ring: i64,
        mut f: F,
    ) -> usize {
        if self.is_empty() || ring < 0 {
            return 0;
        }
        let (cx, cy) = self.key_of(center);
        let mut visited = 0;
        let mut visit = |k: CellKey| {
            if !self.in_rect(k) {
                return 0;
            }
            let c = self.lin(k);
            let (lo, hi) = self.seg(c);
            if lo == hi {
                return 0;
            }
            f(CellView {
                weight: self.cell_weight[c],
                ids: &self.ids[lo..hi],
                xs: &self.xs[lo..hi],
                ys: &self.ys[lo..hi],
                ws: &self.ws[lo..hi],
            });
            1
        };
        if ring == 0 {
            return visit((cx, cy));
        }
        // Top and bottom rows of the ring square, full width.
        for x in (cx - ring)..=(cx + ring) {
            visited += visit((x, cy - ring));
            visited += visit((x, cy + ring));
        }
        // Left and right columns, excluding the corners already done.
        for y in (cy - ring + 1)..=(cy + ring - 1) {
            visited += visit((cx - ring, y));
            visited += visit((cx + ring, y));
        }
        visited
    }

    /// The largest ring index around `center` that can contain an
    /// occupied cell (Chebyshev distance from the center key to the
    /// farthest corner of the occupied-key rectangle).
    pub fn max_ring_from(&self, center: Point) -> i64 {
        if self.is_empty() {
            return -1;
        }
        let (cx, cy) = self.key_of(center);
        let dx = (cx - self.key_min.0).abs().max((self.key_max.0 - cx).abs());
        let dy = (cy - self.key_min.1).abs().max((self.key_max.1 - cy).abs());
        dx.max(dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    #[should_panic(expected = "cell_size must be positive")]
    fn rejects_zero_cell() {
        let inst = Instance::new(vec![Point::ORIGIN]).unwrap();
        let _ = GridIndex::build(&inst, 0.0);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        for seed in 0..5u64 {
            let inst = gen::uniform_square(200, 1.5, seed).unwrap();
            let grid = GridIndex::build(&inst, 3.0);
            for q in 0..10 {
                let center = inst.position(q * 17 % inst.len());
                for radius in [0.5, 2.0, 10.0, 1e6] {
                    let mut a = grid.nodes_within(center, radius);
                    let mut b = inst.nodes_in_ball(center, radius);
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "seed {seed} radius {radius}");
                }
            }
        }
    }

    #[test]
    fn negative_radius_is_empty() {
        let inst = gen::uniform_square(10, 2.0, 1).unwrap();
        let grid = GridIndex::build(&inst, 1.0);
        assert!(grid.nodes_within(Point::ORIGIN, -1.0).is_empty());
    }

    #[test]
    fn nearest_neighbor_matches_brute_force() {
        let inst = gen::uniform_square(100, 2.0, 3).unwrap();
        let grid = GridIndex::build(&inst, 2.0);
        for u in 0..inst.len() {
            let (nn, d) = grid.nearest_neighbor(u).unwrap();
            let mut best = (usize::MAX, f64::INFINITY);
            for v in 0..inst.len() {
                if v != u {
                    let dv = inst.distance(u, v);
                    if dv < best.1 {
                        best = (v, dv);
                    }
                }
            }
            assert_eq!(nn, best.0, "node {u}");
            assert!((d - best.1).abs() < 1e-12);
        }
    }

    #[test]
    fn nearest_neighbor_single_node() {
        let inst = Instance::new(vec![Point::ORIGIN]).unwrap();
        let grid = GridIndex::build(&inst, 1.0);
        assert!(grid.nearest_neighbor(0).is_none());
    }

    #[test]
    fn count_matches_len() {
        let inst = gen::uniform_square(64, 2.0, 9).unwrap();
        let grid = GridIndex::build(&inst, 5.0);
        let c = inst.position(5);
        assert_eq!(grid.count_within(c, 7.5), grid.nodes_within(c, 7.5).len());
    }

    #[test]
    fn cell_iteration_covers_ball() {
        let inst = gen::uniform_square(150, 1.5, 4).unwrap();
        let grid = GridIndex::build(&inst, 2.5);
        let center = inst.position(3);
        for radius in [0.5, 3.0, 12.0] {
            let mut via_cells = Vec::new();
            grid.for_each_cell_within(center, radius, |_, bucket| {
                via_cells.extend(
                    bucket
                        .iter()
                        .copied()
                        .filter(|&id| inst.position(id).distance(center) <= radius),
                );
            });
            via_cells.sort_unstable();
            let mut brute = inst.nodes_in_ball(center, radius);
            brute.sort_unstable();
            assert_eq!(via_cells, brute, "radius {radius}");
        }
    }

    #[test]
    fn weighted_grid_aggregates_and_removal() {
        let mut g = WeightedCellGrid::new(1.0);
        assert!(g.is_empty());
        g.insert(0, Point::new(0.5, 0.5), 2.0);
        g.insert(1, Point::new(0.6, 0.4), 3.0);
        g.insert(2, Point::new(5.5, 0.5), 7.0);
        assert_eq!(g.len(), 3);
        assert_eq!(g.occupied_cells(), 2);
        assert!((g.total_weight() - 12.0).abs() < 1e-12);

        assert!(g.remove(1, Point::new(0.6, 0.4)));
        assert!(!g.remove(1, Point::new(0.6, 0.4)), "already gone");
        assert_eq!(g.len(), 2);
        assert!((g.total_weight() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_grid_near_is_superset_of_ball() {
        let inst = gen::uniform_square(100, 1.5, 11).unwrap();
        let mut g = WeightedCellGrid::new(2.0);
        for (id, p) in inst.iter() {
            g.insert(id, p, 1.0);
        }
        let center = inst.position(0);
        for radius in [1.0, 4.0, 9.0] {
            let mut near = Vec::new();
            g.for_each_member_near(center, radius, |id, _, _| near.push(id));
            for id in inst.nodes_in_ball(center, radius) {
                assert!(near.contains(&id), "node {id} within {radius} missed");
            }
        }
    }

    #[test]
    fn ring_enumeration_visits_every_cell_once_with_distance_bound() {
        let inst = gen::uniform_square(120, 1.5, 6).unwrap();
        let cell = 1.7;
        let mut g = WeightedCellGrid::new(cell);
        for (id, p) in inst.iter() {
            g.insert(id, p, 1.0);
        }
        let center = inst.position(7);
        let mut seen = 0usize;
        let mut member_total = 0usize;
        for ring in 0..=g.max_ring_from(center) {
            let mut ring_members = Vec::new();
            seen += g.for_each_ring_cell(center, ring, |cell| {
                ring_members.extend(cell.members());
            });
            member_total += ring_members.len();
            // The certified bound: members first reachable at ring r+1 or
            // later are farther than (r · cell) from the center point.
            for &(_, p, _) in &ring_members {
                assert!(
                    p.distance(center) >= ((ring - 1).max(0) as f64) * cell - 1e-12,
                    "ring {ring} member too close: {}",
                    p.distance(center)
                );
            }
        }
        assert_eq!(seen, g.occupied_cells());
        assert_eq!(member_total, g.len());
    }

    /// The bulk path and a loop of incremental inserts must agree on
    /// every observable: member order per cell, per-cell aggregate
    /// bits, total-weight bits, occupied counts.
    #[test]
    fn weighted_grid_rebuild_matches_insert_loop() {
        let inst = gen::uniform_square(150, 1.5, 13).unwrap();
        let members: Vec<(NodeId, Point, f64)> = inst
            .iter()
            .map(|(id, p)| (id, p, 1.0 + (id as f64) * 0.37))
            .collect();

        let mut bulk = WeightedCellGrid::new(1.9);
        bulk.rebuild(members.iter().copied());
        let mut incremental = WeightedCellGrid::new(1.9);
        for &(id, p, w) in &members {
            incremental.insert(id, p, w);
        }

        assert_eq!(bulk.len(), incremental.len());
        assert_eq!(bulk.occupied_cells(), incremental.occupied_cells());
        assert_eq!(
            bulk.total_weight().to_bits(),
            incremental.total_weight().to_bits()
        );
        let center = inst.position(0);
        for ring in 0..=bulk.max_ring_from(center) {
            let mut a = Vec::new();
            let mut b = Vec::new();
            bulk.for_each_ring_cell(center, ring, |c| {
                a.push((c.weight().to_bits(), c.members().collect::<Vec<_>>()));
            });
            incremental.for_each_ring_cell(center, ring, |c| {
                b.push((c.weight().to_bits(), c.members().collect::<Vec<_>>()));
            });
            assert_eq!(a, b, "ring {ring}");
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        bulk.for_each_member_near(center, 5.0, |id, p, w| a.push((id, p, w.to_bits())));
        incremental.for_each_member_near(center, 5.0, |id, p, w| b.push((id, p, w.to_bits())));
        assert_eq!(a, b);
    }

    /// Reuse via `reset` must behave exactly like a freshly built grid
    /// (no stale rectangle, counts, or aggregates leaking through).
    #[test]
    fn weighted_grid_reset_reuses_cleanly() {
        let mut g = WeightedCellGrid::new(1.0);
        g.insert(0, Point::new(100.5, -40.5), 2.0);
        g.insert(1, Point::new(103.5, -42.5), 4.0);
        g.reset(2.5);
        assert!(g.is_empty());
        assert_eq!(g.occupied_cells(), 0);
        assert_eq!(g.total_weight(), 0.0);
        assert_eq!(g.max_ring_from(Point::ORIGIN), -1);
        assert_eq!(g.cell_size(), 2.5);

        let inst = gen::uniform_square(80, 1.5, 21).unwrap();
        g.rebuild(inst.iter().map(|(id, p)| (id, p, 1.0)));
        let mut fresh = WeightedCellGrid::new(2.5);
        fresh.rebuild(inst.iter().map(|(id, p)| (id, p, 1.0)));
        assert_eq!(g.len(), fresh.len());
        assert_eq!(g.occupied_cells(), fresh.occupied_cells());
        assert_eq!(g.total_weight().to_bits(), fresh.total_weight().to_bits());
        let center = inst.position(9);
        assert_eq!(g.max_ring_from(center), fresh.max_ring_from(center));
    }

    /// Satellite: the degenerate-cell guard. Two members one unit apart
    /// with a tiny cell size produce a key rectangle of ~10¹⁸ cells —
    /// the debug assert must fire *before* the dense table allocates.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "degenerate cell size")]
    fn weighted_grid_rejects_degenerate_cell_rectangle() {
        let mut g = WeightedCellGrid::new(1e-9);
        g.insert(0, Point::ORIGIN, 1.0);
        g.insert(1, Point::new(1.0, 1.0), 1.0);
    }

    /// Satellite: cell-index overflow guard at the cast boundary. A
    /// coordinate-to-cell ratio beyond 2³¹ would quantize in the
    /// `f64 → i64` cast; the debug assert in `key_of` names it.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cell index overflow")]
    fn weighted_grid_rejects_cell_index_overflow() {
        let g = WeightedCellGrid::new(1e-9);
        let _ = g.key_of(Point::new(1e25, 0.0));
    }

    /// Just inside both guards nothing fires and queries stay sane.
    #[test]
    fn weighted_grid_guard_boundary_is_accepted() {
        let mut g = WeightedCellGrid::new(1.0);
        // Key ~2³¹ − 2: inside the index guard; single occupied cell
        // keeps the rectangle dense-table small.
        let far = Point::new((1u64 << 31) as f64 - 2.0, 0.0);
        g.insert(0, far, 1.0);
        assert_eq!(g.len(), 1);
        let mut seen = Vec::new();
        g.for_each_member_near(far, 0.5, |id, _, _| seen.push(id));
        assert_eq!(seen, vec![0]);
    }
}
