//! Uniform-grid spatial indexes.
//!
//! Two structures live here:
//!
//! - [`GridIndex`] — an immutable index over *all* nodes of an
//!   [`Instance`], for range queries and nearest-neighbor searches;
//! - [`WeightedCellGrid`] — a mutable bucket grid over an arbitrary
//!   subset of nodes with a per-cell aggregate weight, the substrate of
//!   the interference field in `sinr-phy` (cell-aggregate transmit
//!   power, ring-ordered cell enumeration for certified far-field
//!   bounds).

use std::collections::HashMap;

use crate::{Instance, NodeId, Point};

/// Integer key of a grid cell: `(⌊x/cell⌋, ⌊y/cell⌋)`.
pub type CellKey = (i64, i64);

/// A uniform grid over the nodes of an [`Instance`], supporting fast
/// range (ball) queries.
///
/// The simulator uses it to prune interference sums and the `Init`
/// analysis tooling uses it for annulus counting. Cells are square with a
/// caller-chosen side length; nodes are bucketed by `floor(coord / cell)`.
///
/// # Example
///
/// ```
/// use sinr_geom::{gen, GridIndex};
///
/// let inst = gen::uniform_square(128, 2.0, 7)?;
/// let grid = GridIndex::build(&inst, 4.0);
/// let center = inst.position(0);
/// let mut near = grid.nodes_within(center, 10.0);
/// near.sort_unstable();
/// let mut brute = inst.nodes_in_ball(center, 10.0);
/// brute.sort_unstable();
/// assert_eq!(near, brute);
/// # Ok::<(), sinr_geom::GeomError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GridIndex {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<NodeId>>,
    positions: Vec<Point>,
    /// Bounding rectangle of occupied cell keys; range queries are
    /// clamped to it so an arbitrarily large radius never scans more
    /// cells than exist.
    key_min: (i64, i64),
    key_max: (i64, i64),
}

impl GridIndex {
    /// Builds an index with square cells of side `cell_size`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn build(instance: &Instance, cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be positive and finite, got {cell_size}"
        );
        let mut cells: HashMap<(i64, i64), Vec<NodeId>> = HashMap::new();
        let mut key_min = (i64::MAX, i64::MAX);
        let mut key_max = (i64::MIN, i64::MIN);
        for (id, p) in instance.iter() {
            let k = Self::key(p, cell_size);
            key_min = (key_min.0.min(k.0), key_min.1.min(k.1));
            key_max = (key_max.0.max(k.0), key_max.1.max(k.1));
            cells.entry(k).or_default().push(id);
        }
        GridIndex {
            cell: cell_size,
            cells,
            positions: instance.points().to_vec(),
            key_min,
            key_max,
        }
    }

    #[inline]
    fn key(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Cell side length.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// All nodes within the closed ball of `radius` around `center`.
    ///
    /// Allocates a fresh `Vec` per call, so it is intended for tests and
    /// one-shot diagnostics only; library code on a hot path (anything
    /// calling from inside a per-node or per-slot loop) must use
    /// [`for_each_within`](GridIndex::for_each_within) or
    /// [`for_each_cell_within`](GridIndex::for_each_cell_within) instead.
    pub fn nodes_within(&self, center: Point, radius: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, |id| out.push(id));
        out
    }

    /// Calls `f` for each node within the closed ball, without allocating.
    ///
    /// The cell scan is clamped to the occupied-cell bounding rectangle,
    /// so the cost is `O(min(query area, occupied area) / cell² +
    /// matches)` — a huge radius degrades gracefully to a full scan of
    /// the existing cells rather than of the query rectangle.
    pub fn for_each_within<F: FnMut(NodeId)>(&self, center: Point, radius: f64, mut f: F) {
        let r2 = radius * radius;
        self.for_each_cell_within(center, radius, |_, bucket| {
            for &id in bucket {
                if self.positions[id].distance_sq(center) <= r2 {
                    f(id);
                }
            }
        });
    }

    /// Calls `f` once per occupied cell whose key rectangle intersects
    /// the axis-aligned bounding box of the query ball, passing the cell
    /// key and its bucket.
    ///
    /// This is the cell-aggregate primitive: the bucket may contain
    /// nodes slightly *outside* the ball (corner cells), but every node
    /// *inside* the ball is guaranteed to be in some visited bucket.
    /// Callers doing exact work must filter by distance themselves;
    /// callers deriving bounds may use the bucket wholesale.
    pub fn for_each_cell_within<F: FnMut(CellKey, &[NodeId])>(
        &self,
        center: Point,
        radius: f64,
        mut f: F,
    ) {
        if radius.is_nan() || radius < 0.0 || self.cells.is_empty() {
            return;
        }
        let (qx0, qy0) = Self::key(Point::new(center.x - radius, center.y - radius), self.cell);
        let (qx1, qy1) = Self::key(Point::new(center.x + radius, center.y + radius), self.cell);
        let (cx0, cy0) = (qx0.max(self.key_min.0), qy0.max(self.key_min.1));
        let (cx1, cy1) = (qx1.min(self.key_max.0), qy1.min(self.key_max.1));
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(bucket) = self.cells.get(&(cx, cy)) {
                    f((cx, cy), bucket);
                }
            }
        }
    }

    /// Count of nodes within the closed ball (no allocation).
    pub fn count_within(&self, center: Point, radius: f64) -> usize {
        let mut n = 0;
        self.for_each_within(center, radius, |_| n += 1);
        n
    }

    /// The nearest other node to `u`, or `None` for a 1-node instance.
    ///
    /// Runs an expanding-ring search, so it is fast when the grid cell is
    /// on the order of the typical nearest-neighbor distance.
    pub fn nearest_neighbor(&self, u: NodeId) -> Option<(NodeId, f64)> {
        if self.positions.len() < 2 {
            return None;
        }
        let center = self.positions[u];
        let mut radius = self.cell;
        loop {
            let mut best: Option<(NodeId, f64)> = None;
            self.for_each_within(center, radius, |id| {
                if id != u {
                    let d = self.positions[id].distance(center);
                    if best.map_or(true, |(_, bd)| d < bd) {
                        best = Some((id, d));
                    }
                }
            });
            // A candidate found strictly inside the ring is provably the
            // global nearest once radius exceeds its distance.
            if let Some((id, d)) = best {
                if d <= radius {
                    return Some((id, d));
                }
            }
            radius *= 2.0;
            // Diameter bound: every node is within this radius eventually.
            if radius > 4.0 * self.diameter_upper_bound() {
                return best;
            }
        }
    }

    fn diameter_upper_bound(&self) -> f64 {
        // Conservative: diagonal of the bounding box of stored positions.
        let bb = crate::Aabb::from_points(self.positions.iter().copied())
            .expect("index holds at least one point");
        bb.diagonal().max(self.cell)
    }
}

/// One bucket of a [`WeightedCellGrid`]: members with their positions
/// and weights, plus the cached aggregate weight.
#[derive(Clone, Debug, Default)]
pub struct CellBucket {
    members: Vec<(NodeId, Point, f64)>,
    weight: f64,
}

impl CellBucket {
    /// The `(node, position, weight)` members of this cell.
    #[inline]
    pub fn members(&self) -> &[(NodeId, Point, f64)] {
        &self.members
    }

    /// The aggregate weight of the cell (sum of member weights).
    #[inline]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    fn recompute(&mut self) {
        self.weight = self.members.iter().map(|&(_, _, w)| w).sum();
    }
}

/// A mutable bucket grid over weighted points, with per-cell aggregate
/// weights and ring-ordered cell enumeration.
///
/// This is the spatial substrate of `sinr-phy`'s interference field: a
/// slot's transmitters are inserted with their transmit power as the
/// weight; per-cell aggregates then bound the far-field interference of
/// every cell not yet enumerated (`remaining weight × gain(min
/// distance)`), which is what lets the field certify SINR decisions
/// from a near-field prefix.
///
/// Cell-key bounds grow monotonically: removals never shrink the
/// scanned rectangle (a stale superset only costs empty probes, never
/// correctness).
#[derive(Clone, Debug)]
pub struct WeightedCellGrid {
    cell: f64,
    cells: HashMap<CellKey, CellBucket>,
    len: usize,
    total_weight: f64,
    key_min: CellKey,
    key_max: CellKey,
}

impl WeightedCellGrid {
    /// Creates an empty grid with square cells of side `cell_size`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn new(cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be positive and finite, got {cell_size}"
        );
        WeightedCellGrid {
            cell: cell_size,
            cells: HashMap::new(),
            len: 0,
            total_weight: 0.0,
            key_min: (i64::MAX, i64::MAX),
            key_max: (i64::MIN, i64::MIN),
        }
    }

    /// Cell side length.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of members currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of non-empty cells.
    #[inline]
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Sum of all member weights. Insertions accumulate (addition of
    /// non-negative weights only); removals re-aggregate from scratch
    /// (never by subtraction, which would not round-trip the float).
    /// Either way it carries only summation rounding — callers using it
    /// as a bound must still apply their own guard factor.
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// The cell key containing point `p`.
    #[inline]
    pub fn key_of(&self, p: Point) -> CellKey {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    fn recompute_total(&mut self) {
        self.total_weight = self.cells.values().map(CellBucket::weight).sum();
    }

    /// Inserts a member. `O(1)`: aggregates accumulate by addition, so
    /// a bulk build over a slot's transmitters stays linear.
    pub fn insert(&mut self, id: NodeId, p: Point, weight: f64) {
        let k = self.key_of(p);
        self.key_min = (self.key_min.0.min(k.0), self.key_min.1.min(k.1));
        self.key_max = (self.key_max.0.max(k.0), self.key_max.1.max(k.1));
        let bucket = self.cells.entry(k).or_default();
        bucket.members.push((id, p, weight));
        bucket.weight += weight;
        self.len += 1;
        self.total_weight += weight;
    }

    /// Removes the most recently inserted member with this id at this
    /// position; returns whether one was found.
    pub fn remove(&mut self, id: NodeId, p: Point) -> bool {
        let k = self.key_of(p);
        let Some(bucket) = self.cells.get_mut(&k) else {
            return false;
        };
        let Some(pos) = bucket.members.iter().rposition(|&(m, _, _)| m == id) else {
            return false;
        };
        bucket.members.remove(pos);
        if bucket.members.is_empty() {
            self.cells.remove(&k);
        } else {
            bucket.recompute();
        }
        self.len -= 1;
        self.recompute_total();
        true
    }

    /// Calls `f` for every member of every cell whose rectangle
    /// intersects the bounding box of the ball around `center` — a
    /// superset of the members within `radius`; callers needing the
    /// exact ball must filter by distance themselves.
    pub fn for_each_member_near<F: FnMut(NodeId, Point, f64)>(
        &self,
        center: Point,
        radius: f64,
        mut f: F,
    ) {
        if radius.is_nan() || radius < 0.0 || self.cells.is_empty() {
            return;
        }
        let lo = self.key_of(Point::new(center.x - radius, center.y - radius));
        let hi = self.key_of(Point::new(center.x + radius, center.y + radius));
        let (cx0, cy0) = (lo.0.max(self.key_min.0), lo.1.max(self.key_min.1));
        let (cx1, cy1) = (hi.0.min(self.key_max.0), hi.1.min(self.key_max.1));
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(bucket) = self.cells.get(&(cx, cy)) {
                    for &(id, p, w) in &bucket.members {
                        f(id, p, w);
                    }
                }
            }
        }
    }

    /// Visits every occupied cell at Chebyshev ring `ring` around the
    /// cell containing `center` (ring 0 is the center cell itself),
    /// clamped to the occupied-key rectangle. Returns the number of
    /// occupied cells visited.
    ///
    /// Together with [`max_ring_from`](WeightedCellGrid::max_ring_from)
    /// this enumerates every occupied cell exactly once, in
    /// nondecreasing order of a *distance lower bound*: once ring `r`
    /// has been visited, every unvisited member lies at distance
    /// `> (r · cell)` from any point inside the center cell — the
    /// certified far-field cutoff the interference field relies on.
    pub fn for_each_ring_cell<F: FnMut(&CellBucket)>(
        &self,
        center: Point,
        ring: i64,
        mut f: F,
    ) -> usize {
        if self.cells.is_empty() || ring < 0 {
            return 0;
        }
        let (cx, cy) = self.key_of(center);
        let mut visited = 0;
        let visit = |cells: &HashMap<CellKey, CellBucket>, k: CellKey, f: &mut F| {
            if k.0 < self.key_min.0
                || k.0 > self.key_max.0
                || k.1 < self.key_min.1
                || k.1 > self.key_max.1
            {
                return 0;
            }
            if let Some(bucket) = cells.get(&k) {
                f(bucket);
                1
            } else {
                0
            }
        };
        if ring == 0 {
            return visit(&self.cells, (cx, cy), &mut f);
        }
        // Top and bottom rows of the ring square, full width.
        for x in (cx - ring)..=(cx + ring) {
            visited += visit(&self.cells, (x, cy - ring), &mut f);
            visited += visit(&self.cells, (x, cy + ring), &mut f);
        }
        // Left and right columns, excluding the corners already done.
        for y in (cy - ring + 1)..=(cy + ring - 1) {
            visited += visit(&self.cells, (cx - ring, y), &mut f);
            visited += visit(&self.cells, (cx + ring, y), &mut f);
        }
        visited
    }

    /// The largest ring index around `center` that can contain an
    /// occupied cell (Chebyshev distance from the center key to the
    /// farthest corner of the occupied-key rectangle).
    pub fn max_ring_from(&self, center: Point) -> i64 {
        if self.cells.is_empty() {
            return -1;
        }
        let (cx, cy) = self.key_of(center);
        let dx = (cx - self.key_min.0).abs().max((self.key_max.0 - cx).abs());
        let dy = (cy - self.key_min.1).abs().max((self.key_max.1 - cy).abs());
        dx.max(dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    #[should_panic(expected = "cell_size must be positive")]
    fn rejects_zero_cell() {
        let inst = Instance::new(vec![Point::ORIGIN]).unwrap();
        let _ = GridIndex::build(&inst, 0.0);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        for seed in 0..5u64 {
            let inst = gen::uniform_square(200, 1.5, seed).unwrap();
            let grid = GridIndex::build(&inst, 3.0);
            for q in 0..10 {
                let center = inst.position(q * 17 % inst.len());
                for radius in [0.5, 2.0, 10.0, 1e6] {
                    let mut a = grid.nodes_within(center, radius);
                    let mut b = inst.nodes_in_ball(center, radius);
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "seed {seed} radius {radius}");
                }
            }
        }
    }

    #[test]
    fn negative_radius_is_empty() {
        let inst = gen::uniform_square(10, 2.0, 1).unwrap();
        let grid = GridIndex::build(&inst, 1.0);
        assert!(grid.nodes_within(Point::ORIGIN, -1.0).is_empty());
    }

    #[test]
    fn nearest_neighbor_matches_brute_force() {
        let inst = gen::uniform_square(100, 2.0, 3).unwrap();
        let grid = GridIndex::build(&inst, 2.0);
        for u in 0..inst.len() {
            let (nn, d) = grid.nearest_neighbor(u).unwrap();
            let mut best = (usize::MAX, f64::INFINITY);
            for v in 0..inst.len() {
                if v != u {
                    let dv = inst.distance(u, v);
                    if dv < best.1 {
                        best = (v, dv);
                    }
                }
            }
            assert_eq!(nn, best.0, "node {u}");
            assert!((d - best.1).abs() < 1e-12);
        }
    }

    #[test]
    fn nearest_neighbor_single_node() {
        let inst = Instance::new(vec![Point::ORIGIN]).unwrap();
        let grid = GridIndex::build(&inst, 1.0);
        assert!(grid.nearest_neighbor(0).is_none());
    }

    #[test]
    fn count_matches_len() {
        let inst = gen::uniform_square(64, 2.0, 9).unwrap();
        let grid = GridIndex::build(&inst, 5.0);
        let c = inst.position(5);
        assert_eq!(grid.count_within(c, 7.5), grid.nodes_within(c, 7.5).len());
    }

    #[test]
    fn cell_iteration_covers_ball() {
        let inst = gen::uniform_square(150, 1.5, 4).unwrap();
        let grid = GridIndex::build(&inst, 2.5);
        let center = inst.position(3);
        for radius in [0.5, 3.0, 12.0] {
            let mut via_cells = Vec::new();
            grid.for_each_cell_within(center, radius, |_, bucket| {
                via_cells.extend(
                    bucket
                        .iter()
                        .copied()
                        .filter(|&id| inst.position(id).distance(center) <= radius),
                );
            });
            via_cells.sort_unstable();
            let mut brute = inst.nodes_in_ball(center, radius);
            brute.sort_unstable();
            assert_eq!(via_cells, brute, "radius {radius}");
        }
    }

    #[test]
    fn weighted_grid_aggregates_and_removal() {
        let mut g = WeightedCellGrid::new(1.0);
        assert!(g.is_empty());
        g.insert(0, Point::new(0.5, 0.5), 2.0);
        g.insert(1, Point::new(0.6, 0.4), 3.0);
        g.insert(2, Point::new(5.5, 0.5), 7.0);
        assert_eq!(g.len(), 3);
        assert_eq!(g.occupied_cells(), 2);
        assert!((g.total_weight() - 12.0).abs() < 1e-12);

        assert!(g.remove(1, Point::new(0.6, 0.4)));
        assert!(!g.remove(1, Point::new(0.6, 0.4)), "already gone");
        assert_eq!(g.len(), 2);
        assert!((g.total_weight() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_grid_near_is_superset_of_ball() {
        let inst = gen::uniform_square(100, 1.5, 11).unwrap();
        let mut g = WeightedCellGrid::new(2.0);
        for (id, p) in inst.iter() {
            g.insert(id, p, 1.0);
        }
        let center = inst.position(0);
        for radius in [1.0, 4.0, 9.0] {
            let mut near = Vec::new();
            g.for_each_member_near(center, radius, |id, _, _| near.push(id));
            for id in inst.nodes_in_ball(center, radius) {
                assert!(near.contains(&id), "node {id} within {radius} missed");
            }
        }
    }

    #[test]
    fn ring_enumeration_visits_every_cell_once_with_distance_bound() {
        let inst = gen::uniform_square(120, 1.5, 6).unwrap();
        let cell = 1.7;
        let mut g = WeightedCellGrid::new(cell);
        for (id, p) in inst.iter() {
            g.insert(id, p, 1.0);
        }
        let center = inst.position(7);
        let mut seen = 0usize;
        let mut member_total = 0usize;
        for ring in 0..=g.max_ring_from(center) {
            let mut ring_members = Vec::new();
            seen += g.for_each_ring_cell(center, ring, |bucket| {
                ring_members.extend(bucket.members().iter().copied());
            });
            member_total += ring_members.len();
            // The certified bound: members first reachable at ring r+1 or
            // later are farther than (r · cell) from the center point.
            for &(_, p, _) in &ring_members {
                assert!(
                    p.distance(center) >= ((ring - 1).max(0) as f64) * cell - 1e-12,
                    "ring {ring} member too close: {}",
                    p.distance(center)
                );
            }
        }
        assert_eq!(seen, g.occupied_cells());
        assert_eq!(member_total, g.len());
    }
}
