//! A uniform-grid spatial index over an instance's nodes.

use std::collections::HashMap;

use crate::{Instance, NodeId, Point};

/// A uniform grid over the nodes of an [`Instance`], supporting fast
/// range (ball) queries.
///
/// The simulator uses it to prune interference sums and the `Init`
/// analysis tooling uses it for annulus counting. Cells are square with a
/// caller-chosen side length; nodes are bucketed by `floor(coord / cell)`.
///
/// # Example
///
/// ```
/// use sinr_geom::{gen, GridIndex};
///
/// let inst = gen::uniform_square(128, 2.0, 7)?;
/// let grid = GridIndex::build(&inst, 4.0);
/// let center = inst.position(0);
/// let mut near = grid.nodes_within(center, 10.0);
/// near.sort_unstable();
/// let mut brute = inst.nodes_in_ball(center, 10.0);
/// brute.sort_unstable();
/// assert_eq!(near, brute);
/// # Ok::<(), sinr_geom::GeomError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GridIndex {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<NodeId>>,
    positions: Vec<Point>,
    /// Bounding rectangle of occupied cell keys; range queries are
    /// clamped to it so an arbitrarily large radius never scans more
    /// cells than exist.
    key_min: (i64, i64),
    key_max: (i64, i64),
}

impl GridIndex {
    /// Builds an index with square cells of side `cell_size`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite.
    pub fn build(instance: &Instance, cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell_size must be positive and finite, got {cell_size}"
        );
        let mut cells: HashMap<(i64, i64), Vec<NodeId>> = HashMap::new();
        let mut key_min = (i64::MAX, i64::MAX);
        let mut key_max = (i64::MIN, i64::MIN);
        for (id, p) in instance.iter() {
            let k = Self::key(p, cell_size);
            key_min = (key_min.0.min(k.0), key_min.1.min(k.1));
            key_max = (key_max.0.max(k.0), key_max.1.max(k.1));
            cells.entry(k).or_default().push(id);
        }
        GridIndex {
            cell: cell_size,
            cells,
            positions: instance.points().to_vec(),
            key_min,
            key_max,
        }
    }

    #[inline]
    fn key(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Cell side length.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// All nodes within the closed ball of `radius` around `center`.
    pub fn nodes_within(&self, center: Point, radius: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, |id| out.push(id));
        out
    }

    /// Calls `f` for each node within the closed ball, without allocating.
    ///
    /// The cell scan is clamped to the occupied-cell bounding rectangle,
    /// so the cost is `O(min(query area, occupied area) / cell² +
    /// matches)` — a huge radius degrades gracefully to a full scan of
    /// the existing cells rather than of the query rectangle.
    pub fn for_each_within<F: FnMut(NodeId)>(&self, center: Point, radius: f64, mut f: F) {
        if radius.is_nan() || radius < 0.0 || self.cells.is_empty() {
            return;
        }
        let r2 = radius * radius;
        let (qx0, qy0) = Self::key(Point::new(center.x - radius, center.y - radius), self.cell);
        let (qx1, qy1) = Self::key(Point::new(center.x + radius, center.y + radius), self.cell);
        let (cx0, cy0) = (qx0.max(self.key_min.0), qy0.max(self.key_min.1));
        let (cx1, cy1) = (qx1.min(self.key_max.0), qy1.min(self.key_max.1));
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(bucket) = self.cells.get(&(cx, cy)) {
                    for &id in bucket {
                        if self.positions[id].distance_sq(center) <= r2 {
                            f(id);
                        }
                    }
                }
            }
        }
    }

    /// Count of nodes within the closed ball (no allocation).
    pub fn count_within(&self, center: Point, radius: f64) -> usize {
        let mut n = 0;
        self.for_each_within(center, radius, |_| n += 1);
        n
    }

    /// The nearest other node to `u`, or `None` for a 1-node instance.
    ///
    /// Runs an expanding-ring search, so it is fast when the grid cell is
    /// on the order of the typical nearest-neighbor distance.
    pub fn nearest_neighbor(&self, u: NodeId) -> Option<(NodeId, f64)> {
        if self.positions.len() < 2 {
            return None;
        }
        let center = self.positions[u];
        let mut radius = self.cell;
        loop {
            let mut best: Option<(NodeId, f64)> = None;
            self.for_each_within(center, radius, |id| {
                if id != u {
                    let d = self.positions[id].distance(center);
                    if best.map_or(true, |(_, bd)| d < bd) {
                        best = Some((id, d));
                    }
                }
            });
            // A candidate found strictly inside the ring is provably the
            // global nearest once radius exceeds its distance.
            if let Some((id, d)) = best {
                if d <= radius {
                    return Some((id, d));
                }
            }
            radius *= 2.0;
            // Diameter bound: every node is within this radius eventually.
            if radius > 4.0 * self.diameter_upper_bound() {
                return best;
            }
        }
    }

    fn diameter_upper_bound(&self) -> f64 {
        // Conservative: diagonal of the bounding box of stored positions.
        let bb = crate::Aabb::from_points(self.positions.iter().copied())
            .expect("index holds at least one point");
        bb.diagonal().max(self.cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    #[should_panic(expected = "cell_size must be positive")]
    fn rejects_zero_cell() {
        let inst = Instance::new(vec![Point::ORIGIN]).unwrap();
        let _ = GridIndex::build(&inst, 0.0);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        for seed in 0..5u64 {
            let inst = gen::uniform_square(200, 1.5, seed).unwrap();
            let grid = GridIndex::build(&inst, 3.0);
            for q in 0..10 {
                let center = inst.position(q * 17 % inst.len());
                for radius in [0.5, 2.0, 10.0, 1e6] {
                    let mut a = grid.nodes_within(center, radius);
                    let mut b = inst.nodes_in_ball(center, radius);
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "seed {seed} radius {radius}");
                }
            }
        }
    }

    #[test]
    fn negative_radius_is_empty() {
        let inst = gen::uniform_square(10, 2.0, 1).unwrap();
        let grid = GridIndex::build(&inst, 1.0);
        assert!(grid.nodes_within(Point::ORIGIN, -1.0).is_empty());
    }

    #[test]
    fn nearest_neighbor_matches_brute_force() {
        let inst = gen::uniform_square(100, 2.0, 3).unwrap();
        let grid = GridIndex::build(&inst, 2.0);
        for u in 0..inst.len() {
            let (nn, d) = grid.nearest_neighbor(u).unwrap();
            let mut best = (usize::MAX, f64::INFINITY);
            for v in 0..inst.len() {
                if v != u {
                    let dv = inst.distance(u, v);
                    if dv < best.1 {
                        best = (v, dv);
                    }
                }
            }
            assert_eq!(nn, best.0, "node {u}");
            assert!((d - best.1).abs() < 1e-12);
        }
    }

    #[test]
    fn nearest_neighbor_single_node() {
        let inst = Instance::new(vec![Point::ORIGIN]).unwrap();
        let grid = GridIndex::build(&inst, 1.0);
        assert!(grid.nearest_neighbor(0).is_none());
    }

    #[test]
    fn count_matches_len() {
        let inst = gen::uniform_square(64, 2.0, 9).unwrap();
        let grid = GridIndex::build(&inst, 5.0);
        let c = inst.position(5);
        assert_eq!(grid.count_within(c, 7.5), grid.nodes_within(c, 7.5).len());
    }
}
