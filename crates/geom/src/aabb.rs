//! Axis-aligned bounding boxes.

use crate::Point;

/// An axis-aligned bounding box in the plane.
///
/// Used by the spatial index and by sparsity measurement (balls are
/// conservatively pre-filtered through their bounding boxes).
///
/// # Example
///
/// ```
/// use sinr_geom::{Aabb, Point};
///
/// let b = Aabb::from_points([Point::new(0.0, 1.0), Point::new(2.0, -1.0)]).unwrap();
/// assert!(b.contains(Point::new(1.0, 0.0)));
/// assert_eq!(b.width(), 2.0);
/// assert_eq!(b.height(), 2.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
// Serde support lives in `crate::serde_impls` (feature `serde`), via
// the `(Point, Point)` conversions below.
pub struct Aabb {
    min: Point,
    max: Point,
}

impl From<Aabb> for (Point, Point) {
    /// Extracts the `(min, max)` corners.
    fn from(b: Aabb) -> Self {
        (b.min, b.max)
    }
}

impl TryFrom<(Point, Point)> for Aabb {
    type Error = crate::GeomError;

    /// Validating conversion: rejects inverted/non-finite corners, so
    /// deserialized boxes uphold the ordering invariant.
    fn try_from((min, max): (Point, Point)) -> Result<Self, Self::Error> {
        Aabb::new(min, max).ok_or(crate::GeomError::InvalidParameter {
            name: "aabb",
            reason: "corners must be finite with min ≤ max",
        })
    }
}

impl Aabb {
    /// Creates a box from its min and max corners.
    ///
    /// Returns `None` if the corners are not ordered (`min.x > max.x` or
    /// `min.y > max.y`) or not finite.
    pub fn new(min: Point, max: Point) -> Option<Self> {
        if min.is_finite() && max.is_finite() && min.x <= max.x && min.y <= max.y {
            Some(Aabb { min, max })
        } else {
            None
        }
    }

    /// Smallest box containing every point of the iterator.
    ///
    /// Returns `None` for an empty iterator or non-finite points.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        if !first.is_finite() {
            return None;
        }
        let mut bb = Aabb {
            min: first,
            max: first,
        };
        for p in it {
            if !p.is_finite() {
                return None;
            }
            bb.min.x = bb.min.x.min(p.x);
            bb.min.y = bb.min.y.min(p.y);
            bb.max.x = bb.max.x.max(p.x);
            bb.max.y = bb.max.y.max(p.y);
        }
        Some(bb)
    }

    /// The min (lower-left) corner.
    #[inline]
    pub fn min(&self) -> Point {
        self.min
    }

    /// The max (upper-right) corner.
    #[inline]
    pub fn max(&self) -> Point {
        self.max
    }

    /// Horizontal extent.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Vertical extent.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// The center of the box.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Length of the diagonal.
    #[inline]
    pub fn diagonal(&self) -> f64 {
        self.min.distance(self.max)
    }

    /// Whether the closed box contains `p`.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether two closed boxes intersect.
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The smallest box containing both `self` and `other`.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Grows the box by `margin` on all four sides.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is negative and would invert the box.
    pub fn inflate(&self, margin: f64) -> Aabb {
        let b = Aabb::new(
            Point::new(self.min.x - margin, self.min.y - margin),
            Point::new(self.max.x + margin, self.max.y + margin),
        );
        b.expect("inflate produced an inverted box")
    }

    /// The bounding box of the closed ball with the given center and radius.
    pub fn of_ball(center: Point, radius: f64) -> Option<Aabb> {
        if radius < 0.0 {
            return None;
        }
        Aabb::new(
            Point::new(center.x - radius, center.y - radius),
            Point::new(center.x + radius, center.y + radius),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_inverted() {
        assert!(Aabb::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0)).is_none());
        assert!(Aabb::new(Point::new(0.0, 0.0), Point::new(f64::NAN, 1.0)).is_none());
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(Aabb::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn from_points_single() {
        let b = Aabb::from_points([Point::new(2.0, 3.0)]).unwrap();
        assert_eq!(b.min(), b.max());
        assert_eq!(b.width(), 0.0);
        assert!(b.contains(Point::new(2.0, 3.0)));
    }

    #[test]
    fn contains_and_intersects() {
        let a = Aabb::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0)).unwrap();
        let b = Aabb::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0)).unwrap();
        let c = Aabb::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0)).unwrap();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(a.contains(Point::new(2.0, 2.0)));
        assert!(!a.contains(Point::new(2.0001, 2.0)));
    }

    #[test]
    fn union_covers_both() {
        let a = Aabb::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).unwrap();
        let b = Aabb::new(Point::new(2.0, -1.0), Point::new(3.0, 0.5)).unwrap();
        let u = a.union(&b);
        assert!(u.contains(Point::new(0.0, 1.0)));
        assert!(u.contains(Point::new(3.0, -1.0)));
    }

    #[test]
    fn ball_bbox() {
        let b = Aabb::of_ball(Point::new(1.0, 1.0), 2.0).unwrap();
        assert_eq!(b.min(), Point::new(-1.0, -1.0));
        assert_eq!(b.max(), Point::new(3.0, 3.0));
        assert!(Aabb::of_ball(Point::ORIGIN, -1.0).is_none());
    }

    #[test]
    fn inflate_grows() {
        let a = Aabb::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).unwrap();
        let g = a.inflate(0.5);
        assert_eq!(g.width(), 2.0);
        assert_eq!(g.center(), a.center());
    }
}
