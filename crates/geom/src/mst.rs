//! Euclidean minimum spanning trees.
//!
//! The centralized connectivity results the paper compares against
//! (Halldórsson & Mitra, SODA 2012 \[11\]) schedule the links of the
//! Euclidean MST; the baselines crate builds on this module.

use crate::{Instance, NodeId};

/// An undirected MST edge between two nodes.
pub type MstEdge = (NodeId, NodeId);

/// Computes the Euclidean minimum spanning tree with Prim's algorithm.
///
/// Returns `n − 1` undirected edges (empty for a single-node instance).
/// Runs in `O(n²)` time and `O(n)` space, which is exact and fast for the
/// instance sizes used in this workspace (≤ a few thousand nodes).
///
/// # Example
///
/// ```
/// use sinr_geom::{gen, mst};
///
/// let inst = gen::uniform_square(32, 2.0, 3)?;
/// let edges = mst::euclidean_mst(&inst);
/// assert_eq!(edges.len(), 31);
/// # Ok::<(), sinr_geom::GeomError>(())
/// ```
pub fn euclidean_mst(instance: &Instance) -> Vec<MstEdge> {
    let n = instance.len();
    if n < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);

    in_tree[0] = true;
    for (v, d) in best_dist.iter_mut().enumerate().skip(1) {
        *d = instance.distance(0, v);
    }

    for _ in 1..n {
        let mut u = usize::MAX;
        let mut du = f64::INFINITY;
        for v in 0..n {
            if !in_tree[v] && best_dist[v] < du {
                du = best_dist[v];
                u = v;
            }
        }
        debug_assert!(
            u != usize::MAX,
            "graph is complete; a candidate always exists"
        );
        in_tree[u] = true;
        edges.push((best_from[u], u));
        for v in 0..n {
            if !in_tree[v] {
                let d = instance.distance(u, v);
                if d < best_dist[v] {
                    best_dist[v] = d;
                    best_from[v] = u;
                }
            }
        }
    }
    edges
}

/// Orients the MST toward `root`, returning a parent array:
/// `parent[u] = Some(v)` means the tree edge `u → v` points toward the
/// root; `parent[root] = None`.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn mst_parent_array(instance: &Instance, root: NodeId) -> Vec<Option<NodeId>> {
    let n = instance.len();
    assert!(root < n, "root {root} out of range for {n} nodes");
    let edges = euclidean_mst(instance);
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (a, b) in edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut parent = vec![None; n];
    let mut visited = vec![false; n];
    let mut stack = vec![root];
    visited[root] = true;
    while let Some(u) = stack.pop() {
        for &v in &adj[u] {
            if !visited[v] {
                visited[v] = true;
                parent[v] = Some(u);
                stack.push(v);
            }
        }
    }
    parent
}

/// Total Euclidean weight of a set of edges.
pub fn total_weight(instance: &Instance, edges: &[MstEdge]) -> f64 {
    edges.iter().map(|&(a, b)| instance.distance(a, b)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, Point};

    /// Union-find used to check spanning/acyclicity in tests.
    struct Dsu(Vec<usize>);
    impl Dsu {
        fn new(n: usize) -> Self {
            Dsu((0..n).collect())
        }
        fn find(&mut self, x: usize) -> usize {
            if self.0[x] != x {
                let r = self.find(self.0[x]);
                self.0[x] = r;
            }
            self.0[x]
        }
        fn union(&mut self, a: usize, b: usize) -> bool {
            let (ra, rb) = (self.find(a), self.find(b));
            if ra == rb {
                return false;
            }
            self.0[ra] = rb;
            true
        }
    }

    #[test]
    fn single_node_has_no_edges() {
        let inst = Instance::new(vec![Point::ORIGIN]).unwrap();
        assert!(euclidean_mst(&inst).is_empty());
    }

    #[test]
    fn spanning_and_acyclic() {
        for seed in 0..5 {
            let inst = gen::uniform_square(120, 1.5, seed).unwrap();
            let edges = euclidean_mst(&inst);
            assert_eq!(edges.len(), inst.len() - 1);
            let mut dsu = Dsu::new(inst.len());
            for &(a, b) in &edges {
                assert!(dsu.union(a, b), "MST contained a cycle (seed {seed})");
            }
        }
    }

    #[test]
    fn line_mst_is_the_path() {
        let inst = gen::line(6).unwrap();
        let mut edges = euclidean_mst(&inst);
        for e in &mut edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        assert_eq!(total_weight(&inst, &edges), 5.0);
    }

    #[test]
    fn mst_weight_is_minimal_vs_star() {
        // The star from node 0 is a spanning tree; MST must not be heavier.
        let inst = gen::uniform_square(60, 2.0, 8).unwrap();
        let mst_w = total_weight(&inst, &euclidean_mst(&inst));
        let star: Vec<MstEdge> = (1..inst.len()).map(|v| (0, v)).collect();
        assert!(mst_w <= total_weight(&inst, &star) + 1e-9);
    }

    #[test]
    fn parent_array_roots_correctly() {
        let inst = gen::uniform_square(50, 2.0, 2).unwrap();
        for root in [0usize, 7, 49] {
            let parent = mst_parent_array(&inst, root);
            assert_eq!(parent[root], None);
            assert_eq!(parent.iter().filter(|p| p.is_none()).count(), 1);
            // Every node reaches the root.
            #[allow(clippy::needless_range_loop)]
            for mut u in 0..inst.len() {
                let mut hops = 0;
                while let Some(p) = parent[u] {
                    u = p;
                    hops += 1;
                    assert!(hops <= inst.len(), "cycle detected");
                }
                assert_eq!(u, root);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn parent_array_rejects_bad_root() {
        let inst = gen::line(3).unwrap();
        let _ = mst_parent_array(&inst, 5);
    }
}
