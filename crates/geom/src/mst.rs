//! Euclidean minimum spanning trees.
//!
//! The centralized connectivity results the paper compares against
//! (Halldórsson & Mitra, SODA 2012 \[11\]) schedule the links of the
//! Euclidean MST; the baselines crate builds on this module.
//!
//! Two implementations produce **identical output** (same edges, same
//! order, bit for bit):
//!
//! - [`euclidean_mst_prim`] — the exact `O(n²)` reference, kept for the
//!   parity gates and still the faster choice for small instances;
//! - [`euclidean_mst_grid`] — lazy Prim over a uniform bucket grid:
//!   each tree vertex holds one candidate edge to its nearest outside
//!   vertex (found by an expanding Chebyshev-ring search), a heap pops
//!   the globally best candidate, and stale candidates are recomputed
//!   lazily. Near-linear on density-bounded instances, which unlocks
//!   the n = 4096–16384 sweeps of experiment E12.
//!
//! [`euclidean_mst`] dispatches on the instance size. The tie-break is
//! deterministic and mirrors the reference exactly: Prim's strict `<`
//! updates keep, per vertex `v`, the *earliest-added* tree vertex among
//! those at minimal distance, and select the smallest `v` among minimal
//! keys — the grid path encodes the same order as the lexicographic
//! heap key `(distance bits, v, tree-insertion order)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::extremes::DenseGrid;
use crate::{Instance, NodeId};

/// An undirected MST edge between two nodes.
pub type MstEdge = (NodeId, NodeId);

/// Below this many nodes the quadratic Prim reference beats building a
/// grid, so [`euclidean_mst`] dispatches to it directly.
const GRID_CUTOFF: usize = 256;

/// Relative safety margin on the ring-search stop condition (see
/// [`crate::extremes`]): never trust the last ulp of the geometric
/// lower bound `ring · cell`.
const RING_MARGIN: f64 = 1.0 - 1e-12;

/// Computes the Euclidean minimum spanning tree.
///
/// Returns `n − 1` undirected edges (empty for a single-node instance).
/// Dispatches between the `O(n²)` Prim reference
/// ([`euclidean_mst_prim`]) for small instances and the grid-pruned
/// lazy Prim ([`euclidean_mst_grid`]) above [`GRID_CUTOFF`] nodes; the
/// two produce identical edges in identical order, so the dispatch is
/// unobservable except in wall-clock.
///
/// # Example
///
/// ```
/// use sinr_geom::{gen, mst};
///
/// let inst = gen::uniform_square(32, 2.0, 3)?;
/// let edges = mst::euclidean_mst(&inst);
/// assert_eq!(edges.len(), 31);
/// # Ok::<(), sinr_geom::GeomError>(())
/// ```
pub fn euclidean_mst(instance: &Instance) -> Vec<MstEdge> {
    if instance.len() <= GRID_CUTOFF {
        euclidean_mst_prim(instance)
    } else {
        euclidean_mst_grid(instance)
    }
}

/// The `O(n²)` Prim reference implementation.
///
/// This is the parity oracle for [`euclidean_mst_grid`] (the
/// determinism suite compares full edge sequences) and the dispatch
/// target for small instances.
pub fn euclidean_mst_prim(instance: &Instance) -> Vec<MstEdge> {
    let n = instance.len();
    if n < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);

    in_tree[0] = true;
    for (v, d) in best_dist.iter_mut().enumerate().skip(1) {
        *d = instance.distance(0, v);
    }

    for _ in 1..n {
        let mut u = usize::MAX;
        let mut du = f64::INFINITY;
        for v in 0..n {
            if !in_tree[v] && best_dist[v] < du {
                du = best_dist[v];
                u = v;
            }
        }
        debug_assert!(
            u != usize::MAX,
            "graph is complete; a candidate always exists"
        );
        in_tree[u] = true;
        edges.push((best_from[u], u));
        for v in 0..n {
            if !in_tree[v] {
                let d = instance.distance(u, v);
                if d < best_dist[v] {
                    best_dist[v] = d;
                    best_from[v] = u;
                }
            }
        }
    }
    edges
}

/// Grid-pruned lazy Prim, bit-identical to [`euclidean_mst_prim`].
///
/// Every tree vertex keeps one heap candidate `(d, v, order, t)`: its
/// nearest outside vertex `v` at distance `d` (ties broken toward the
/// smallest `v`), tagged with `t`'s tree-insertion order. Because the
/// outside set only shrinks, a candidate's distance lower-bounds its
/// owner's true current nearest — so the heap minimum with an
/// *outside* `v` is exactly the cut-minimal edge Prim would take, and
/// the lexicographic key reproduces Prim's strict-`<` tie-break (see
/// module docs). Candidates that went stale (their `v` joined the
/// tree) are recomputed on pop.
pub fn euclidean_mst_grid(instance: &Instance) -> Vec<MstEdge> {
    let n = instance.len();
    if n < 2 {
        return Vec::new();
    }
    let points = instance.points();
    let axis = (n as f64).sqrt().ceil() as usize;
    let mut grid = DenseGrid::build(points, axis);
    let cell = grid.cell();

    let mut in_tree = vec![false; n];
    let mut t_order = vec![0usize; n];
    let mut edges: Vec<MstEdge> = Vec::with_capacity(n - 1);
    // Min-heap keyed `(distance bits, v, insertion order of t, t)`;
    // positive finite distances order identically to their IEEE bits.
    let mut heap: BinaryHeap<Reverse<(u64, NodeId, usize, NodeId)>> = BinaryHeap::new();

    // Nearest vertex still outside the tree, by expanding ring search
    // over the grid (tree vertices are removed from their buckets, so
    // every member seen is outside). Tie-break: smallest id.
    let nearest_outside = |grid: &DenseGrid, t: NodeId| -> Option<(f64, NodeId)> {
        let p = points[t];
        let mut best: Option<(f64, NodeId)> = None;
        for ring in 0..=grid.max_ring_from(p) {
            if ring >= 2 {
                if let Some((bd, _)) = best {
                    // Unseen members sit beyond `(ring − 1) · cell`:
                    // once that exceeds the best (with margin), later
                    // rings can neither improve nor tie it.
                    if bd < (ring - 1) as f64 * cell * RING_MARGIN {
                        break;
                    }
                }
            }
            grid.for_each_ring_member(p, ring, |v| {
                let d = instance.distance(t, v);
                let better = match best {
                    None => true,
                    Some((bd, bv)) => d < bd || (d == bd && v < bv),
                };
                if better {
                    best = Some((d, v));
                }
            });
        }
        best
    };

    in_tree[0] = true;
    grid.remove(0, points[0]);
    if let Some((d, v)) = nearest_outside(&grid, 0) {
        heap.push(Reverse((d.to_bits(), v, 0, 0)));
    }
    let mut next_order = 1usize;
    while edges.len() < n - 1 {
        let Reverse((_, v, _, t)) = heap
            .pop()
            .expect("complete graph: every tree vertex keeps a live candidate");
        if in_tree[v] {
            // Stale candidate: its target joined the tree since it was
            // computed. Refresh the owner and retry.
            if let Some((d, w)) = nearest_outside(&grid, t) {
                heap.push(Reverse((d.to_bits(), w, t_order[t], t)));
            }
            continue;
        }
        edges.push((t, v));
        in_tree[v] = true;
        t_order[v] = next_order;
        next_order += 1;
        grid.remove(v, points[v]);
        // Both `v` (new tree vertex) and `t` (its candidate was just
        // consumed) need fresh candidates to keep the heap invariant.
        if let Some((d, w)) = nearest_outside(&grid, v) {
            heap.push(Reverse((d.to_bits(), w, t_order[v], v)));
        }
        if let Some((d, w)) = nearest_outside(&grid, t) {
            heap.push(Reverse((d.to_bits(), w, t_order[t], t)));
        }
    }
    edges
}

/// Orients the MST toward `root`, returning a parent array:
/// `parent[u] = Some(v)` means the tree edge `u → v` points toward the
/// root; `parent[root] = None`.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn mst_parent_array(instance: &Instance, root: NodeId) -> Vec<Option<NodeId>> {
    let n = instance.len();
    assert!(root < n, "root {root} out of range for {n} nodes");
    let edges = euclidean_mst(instance);
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (a, b) in edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut parent = vec![None; n];
    let mut visited = vec![false; n];
    let mut stack = vec![root];
    visited[root] = true;
    while let Some(u) = stack.pop() {
        for &v in &adj[u] {
            if !visited[v] {
                visited[v] = true;
                parent[v] = Some(u);
                stack.push(v);
            }
        }
    }
    parent
}

/// Total Euclidean weight of a set of edges.
pub fn total_weight(instance: &Instance, edges: &[MstEdge]) -> f64 {
    edges.iter().map(|&(a, b)| instance.distance(a, b)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, Point};

    /// Union-find used to check spanning/acyclicity in tests.
    struct Dsu(Vec<usize>);
    impl Dsu {
        fn new(n: usize) -> Self {
            Dsu((0..n).collect())
        }
        fn find(&mut self, x: usize) -> usize {
            if self.0[x] != x {
                let r = self.find(self.0[x]);
                self.0[x] = r;
            }
            self.0[x]
        }
        fn union(&mut self, a: usize, b: usize) -> bool {
            let (ra, rb) = (self.find(a), self.find(b));
            if ra == rb {
                return false;
            }
            self.0[ra] = rb;
            true
        }
    }

    #[test]
    fn single_node_has_no_edges() {
        let inst = Instance::new(vec![Point::ORIGIN]).unwrap();
        assert!(euclidean_mst(&inst).is_empty());
        assert!(euclidean_mst_grid(&inst).is_empty());
    }

    /// The core parity property: the grid path emits the exact edge
    /// sequence of the Prim reference, on every generator family,
    /// including the tie-heavy integer line.
    #[test]
    fn grid_matches_prim_edge_for_edge() {
        for seed in 0..3u64 {
            for (what, inst) in [
                ("uniform", gen::uniform_square(350, 1.5, seed).unwrap()),
                ("clustered", gen::clustered(14, 24, 1.5, 2.0, seed).unwrap()),
                ("lattice", gen::grid_lattice(18, 18, 0.25, seed).unwrap()),
                ("chain", gen::exponential_chain(48, 1.35, seed).unwrap()),
                ("line", gen::line(40).unwrap()),
                ("annulus", gen::annulus(300, 6.0, 14.0, seed).unwrap()),
            ] {
                assert_eq!(
                    euclidean_mst_grid(&inst),
                    euclidean_mst_prim(&inst),
                    "{what} seed {seed}: edge sequences diverged"
                );
            }
        }
    }

    #[test]
    fn dispatch_switches_at_cutoff() {
        let small = gen::uniform_square(60, 1.5, 5).unwrap();
        let big = gen::uniform_square(400, 1.5, 5).unwrap();
        assert_eq!(euclidean_mst(&small), euclidean_mst_prim(&small));
        assert_eq!(euclidean_mst(&big), euclidean_mst_grid(&big));
        assert_eq!(euclidean_mst_grid(&big), euclidean_mst_prim(&big));
    }

    #[test]
    fn spanning_and_acyclic() {
        for seed in 0..5 {
            let inst = gen::uniform_square(120, 1.5, seed).unwrap();
            let edges = euclidean_mst(&inst);
            assert_eq!(edges.len(), inst.len() - 1);
            let mut dsu = Dsu::new(inst.len());
            for &(a, b) in &edges {
                assert!(dsu.union(a, b), "MST contained a cycle (seed {seed})");
            }
        }
    }

    #[test]
    fn line_mst_is_the_path() {
        let inst = gen::line(6).unwrap();
        let mut edges = euclidean_mst(&inst);
        for e in &mut edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        assert_eq!(total_weight(&inst, &edges), 5.0);
    }

    #[test]
    fn mst_weight_is_minimal_vs_star() {
        // The star from node 0 is a spanning tree; MST must not be heavier.
        let inst = gen::uniform_square(60, 2.0, 8).unwrap();
        let mst_w = total_weight(&inst, &euclidean_mst(&inst));
        let star: Vec<MstEdge> = (1..inst.len()).map(|v| (0, v)).collect();
        assert!(mst_w <= total_weight(&inst, &star) + 1e-9);
    }

    #[test]
    fn parent_array_roots_correctly() {
        let inst = gen::uniform_square(50, 2.0, 2).unwrap();
        for root in [0usize, 7, 49] {
            let parent = mst_parent_array(&inst, root);
            assert_eq!(parent[root], None);
            assert_eq!(parent.iter().filter(|p| p.is_none()).count(), 1);
            // Every node reaches the root.
            #[allow(clippy::needless_range_loop)]
            for mut u in 0..inst.len() {
                let mut hops = 0;
                while let Some(p) = parent[u] {
                    u = p;
                    hops += 1;
                    assert!(hops <= inst.len(), "cycle detected");
                }
                assert_eq!(u, root);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn parent_array_rejects_bad_root() {
        let inst = gen::line(3).unwrap();
        let _ = mst_parent_array(&inst, 5);
    }
}
