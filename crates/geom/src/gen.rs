//! Seeded instance generators.
//!
//! Every generator is deterministic in its `seed` and returns a
//! [normalized](crate::Instance::is_normalized) instance (minimum pairwise
//! distance exactly 1), matching the paper's model assumption.
//!
//! The families cover the workloads the experiments need:
//!
//! - [`uniform_square`] / [`uniform_disk`] — the standard random
//!   deployments used to sweep `n`;
//! - [`clustered`] — sensor-style clustered deployments (near/far mix);
//! - [`grid_lattice`] — worst-case-regular deployments;
//! - [`exponential_chain`] — instances whose `Δ` grows exponentially in
//!   `n`, used to sweep `log Δ` independently of `n`;
//! - [`line`] — evenly spaced collinear points (degenerate geometry);
//! - [`annulus`] — ring deployments (hollow center);
//! - [`two_tier`] — a sparse backbone lattice of hubs, each with a
//!   tight cluster of members (the heterogeneous power-class family);
//! - [`percolation`] — a Bernoulli-occupied jittered lattice, swept
//!   through the site-percolation threshold by the density ladder.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{GeomError, Instance, Point, Result};

/// Maximum attempts at regenerating an instance whose random draw
/// produced coincident points (probability ~0 for `f64` draws).
const MAX_ATTEMPTS: u32 = 16;

fn param_err(name: &'static str, reason: &'static str) -> GeomError {
    GeomError::InvalidParameter { name, reason }
}

fn build_with_retry<F>(seed: u64, mut draw: F) -> Result<Instance>
where
    F: FnMut(&mut StdRng) -> Vec<Point>,
{
    let mut last = Err(GeomError::EmptyInstance);
    for attempt in 0..MAX_ATTEMPTS {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(u64::from(attempt) << 32));
        last = Instance::normalized(draw(&mut rng));
        match &last {
            Ok(_) => return last,
            Err(GeomError::CoincidentPoints { .. }) => continue,
            Err(_) => return last,
        }
    }
    last
}

/// `n` points drawn uniformly at random from a square of side
/// `spread · √n` (constant expected density as `n` grows), then
/// normalized to minimum distance 1.
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if `n == 0` or `spread` is not
/// strictly positive and finite.
pub fn uniform_square(n: usize, spread: f64, seed: u64) -> Result<Instance> {
    if n == 0 {
        return Err(param_err("n", "must be at least 1"));
    }
    if !(spread.is_finite() && spread > 0.0) {
        return Err(param_err("spread", "must be positive and finite"));
    }
    let side = spread * (n as f64).sqrt();
    build_with_retry(seed, |rng| {
        let d = Uniform::new_inclusive(0.0, side);
        (0..n)
            .map(|_| Point::new(d.sample(rng), d.sample(rng)))
            .collect()
    })
}

/// `n` points drawn uniformly at random from a disk of radius
/// `spread · √n`, then normalized.
///
/// # Errors
///
/// Same parameter conditions as [`uniform_square`].
pub fn uniform_disk(n: usize, spread: f64, seed: u64) -> Result<Instance> {
    if n == 0 {
        return Err(param_err("n", "must be at least 1"));
    }
    if !(spread.is_finite() && spread > 0.0) {
        return Err(param_err("spread", "must be positive and finite"));
    }
    let radius = spread * (n as f64).sqrt();
    build_with_retry(seed, |rng| {
        (0..n)
            .map(|_| {
                let r = radius * rng.gen::<f64>().sqrt();
                let theta = rng.gen::<f64>() * std::f64::consts::TAU;
                Point::new(r * theta.cos(), r * theta.sin())
            })
            .collect()
    })
}

/// A `rows × cols` lattice with unit spacing, each point perturbed by a
/// uniform jitter of at most `jitter` in each coordinate.
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if the lattice is empty or
/// `jitter ∉ [0, 0.45)` (larger jitter could collapse neighbors).
pub fn grid_lattice(rows: usize, cols: usize, jitter: f64, seed: u64) -> Result<Instance> {
    if rows == 0 || cols == 0 {
        return Err(param_err("rows/cols", "lattice must be non-empty"));
    }
    if !(jitter.is_finite() && (0.0..0.45).contains(&jitter)) {
        return Err(param_err("jitter", "must lie in [0, 0.45)"));
    }
    build_with_retry(seed, |rng| {
        let mut pts = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let jx = if jitter > 0.0 {
                    rng.gen_range(-jitter..jitter)
                } else {
                    0.0
                };
                let jy = if jitter > 0.0 {
                    rng.gen_range(-jitter..jitter)
                } else {
                    0.0
                };
                pts.push(Point::new(c as f64 + jx, r as f64 + jy));
            }
        }
        pts
    })
}

/// A Thomas-style clustered deployment: `clusters` cluster centers drawn
/// uniformly from a square of side `spread · √(clusters · per_cluster)`,
/// each with `per_cluster` points at Gaussian-ish offsets of scale
/// `cluster_radius`.
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] on zero counts or non-positive
/// `spread`/`cluster_radius`.
pub fn clustered(
    clusters: usize,
    per_cluster: usize,
    cluster_radius: f64,
    spread: f64,
    seed: u64,
) -> Result<Instance> {
    if clusters == 0 || per_cluster == 0 {
        return Err(param_err("clusters/per_cluster", "must be at least 1"));
    }
    if !(cluster_radius.is_finite() && cluster_radius > 0.0) {
        return Err(param_err("cluster_radius", "must be positive and finite"));
    }
    if !(spread.is_finite() && spread > 0.0) {
        return Err(param_err("spread", "must be positive and finite"));
    }
    let n = clusters * per_cluster;
    let side = spread * (n as f64).sqrt();
    build_with_retry(seed, |rng| {
        let d = Uniform::new_inclusive(0.0, side);
        let mut pts = Vec::with_capacity(n);
        for _ in 0..clusters {
            let center = Point::new(d.sample(rng), d.sample(rng));
            for _ in 0..per_cluster {
                // Sum of two uniforms approximates a centered Gaussian
                // without needing a normal-distribution dependency.
                let off =
                    |rng: &mut StdRng| cluster_radius * (rng.gen::<f64>() + rng.gen::<f64>() - 1.0);
                pts.push(Point::new(center.x + off(rng), center.y + off(rng)));
            }
        }
        pts
    })
}

/// `n` points on a near-line with exponentially growing gaps: the gap
/// after point `i` is `growth^i`. The aspect ratio is
/// `Δ ≈ (growth^{n-1} - 1)/(growth - 1)`, so `log Δ ≈ (n-1)·log growth`
/// — the family used to sweep `log Δ` independently of `n`.
///
/// A small deterministic perpendicular offset (±0.1, alternating) avoids
/// exact collinearity, which keeps MST tie-breaking and sparsity-ball
/// counting well-behaved without affecting lengths meaningfully.
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if `n == 0`, or `growth < 1`,
/// or the largest gap overflows `f64`.
pub fn exponential_chain(n: usize, growth: f64, seed: u64) -> Result<Instance> {
    if n == 0 {
        return Err(param_err("n", "must be at least 1"));
    }
    if !(growth.is_finite() && growth >= 1.0) {
        return Err(param_err("growth", "must be ≥ 1 and finite"));
    }
    if n > 2 && growth.powi(n as i32 - 2) > 1e280 {
        return Err(param_err("growth", "growth^(n-2) overflows f64"));
    }
    build_with_retry(seed, |rng| {
        let mut pts = Vec::with_capacity(n);
        let mut x = 0.0;
        let mut gap = 1.0;
        for i in 0..n {
            let y = if i % 2 == 0 { 0.1 } else { -0.1 };
            // Tiny seeded jitter keeps distinct seeds distinct while
            // preserving the designed length profile.
            let eps = rng.gen::<f64>() * 1e-3;
            pts.push(Point::new(x + eps, y));
            x += gap;
            gap *= growth;
        }
        pts
    })
}

/// `n` evenly spaced points on a horizontal line (spacing 1).
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if `n == 0`.
pub fn line(n: usize) -> Result<Instance> {
    if n == 0 {
        return Err(param_err("n", "must be at least 1"));
    }
    Instance::normalized((0..n).map(|i| Point::new(i as f64, 0.0)).collect())
}

/// `n` points uniform on an annulus with the given radii (before
/// normalization).
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if `n == 0` or the radii are
/// not `0 ≤ inner < outer < ∞`.
pub fn annulus(n: usize, inner: f64, outer: f64, seed: u64) -> Result<Instance> {
    if n == 0 {
        return Err(param_err("n", "must be at least 1"));
    }
    if !(inner.is_finite() && outer.is_finite() && 0.0 <= inner && inner < outer) {
        return Err(param_err("inner/outer", "need 0 ≤ inner < outer < ∞"));
    }
    build_with_retry(seed, |rng| {
        (0..n)
            .map(|_| {
                // Area-uniform radius between inner and outer.
                let u = rng.gen::<f64>();
                let r = (inner * inner + u * (outer * outer - inner * inner)).sqrt();
                let theta = rng.gen::<f64>() * std::f64::consts::TAU;
                Point::new(r * theta.cos(), r * theta.sin())
            })
            .collect()
    })
}

/// A two-tier deployment: `hubs` backbone nodes on a coarse jittered
/// lattice with spacing `hub_spacing`, each surrounded by `members`
/// member nodes at Gaussian-ish offsets of scale `member_radius`. Node
/// order is hub-major (hub `i` at index `i·(members+1)`), so callers
/// can derive per-node power classes from the index alone.
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] on zero counts, a
/// non-positive `member_radius`, or `hub_spacing < 4·member_radius`
/// (clusters would overlap their neighbors).
pub fn two_tier(
    hubs: usize,
    members: usize,
    member_radius: f64,
    hub_spacing: f64,
    seed: u64,
) -> Result<Instance> {
    if hubs == 0 {
        return Err(param_err("hubs", "must be at least 1"));
    }
    if !(member_radius.is_finite() && member_radius > 0.0) {
        return Err(param_err("member_radius", "must be positive and finite"));
    }
    if !(hub_spacing.is_finite() && hub_spacing >= 4.0 * member_radius) {
        return Err(param_err(
            "hub_spacing",
            "must be finite and at least 4·member_radius",
        ));
    }
    let cols = (hubs as f64).sqrt().ceil() as usize;
    build_with_retry(seed, |rng| {
        let mut pts = Vec::with_capacity(hubs * (members + 1));
        for h in 0..hubs {
            let (r, c) = (h / cols, h % cols);
            let jx = rng.gen_range(-0.1..0.1) * hub_spacing;
            let jy = rng.gen_range(-0.1..0.1) * hub_spacing;
            let center = Point::new(c as f64 * hub_spacing + jx, r as f64 * hub_spacing + jy);
            pts.push(center);
            for _ in 0..members {
                let off =
                    |rng: &mut StdRng| member_radius * (rng.gen::<f64>() + rng.gen::<f64>() - 1.0);
                pts.push(Point::new(center.x + off(rng), center.y + off(rng)));
            }
        }
        pts
    })
}

/// A site-percolation deployment: a `rows × cols` unit lattice where
/// each site survives independently with probability `occupancy`, then
/// per-coordinate jitter as in [`grid_lattice`]. The 2D site-percolation
/// threshold is ≈ 0.5927, so sweeping `occupancy` through it moves the
/// instance from dust through the critical regime to a dense grid. The
/// site nearest the lattice center is always kept (an instance cannot
/// be empty), so every draw is non-empty deterministically.
///
/// # Errors
///
/// Returns [`GeomError::InvalidParameter`] if the lattice is empty,
/// `occupancy ∉ (0, 1]` or `jitter ∉ [0, 0.45)`.
pub fn percolation(
    rows: usize,
    cols: usize,
    occupancy: f64,
    jitter: f64,
    seed: u64,
) -> Result<Instance> {
    if rows == 0 || cols == 0 {
        return Err(param_err("rows/cols", "lattice must be non-empty"));
    }
    if !(occupancy.is_finite() && occupancy > 0.0 && occupancy <= 1.0) {
        return Err(param_err("occupancy", "must lie in (0, 1]"));
    }
    if !(jitter.is_finite() && (0.0..0.45).contains(&jitter)) {
        return Err(param_err("jitter", "must lie in [0, 0.45)"));
    }
    let anchor = (rows / 2, cols / 2);
    build_with_retry(seed, |rng| {
        let mut pts = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                // Draw before the keep decision so the jitter stream is
                // identical across occupancies (same seed ⇒ kept sites
                // sit at the same perturbed coordinates in every rung
                // of the density ladder).
                let keep = rng.gen::<f64>() < occupancy;
                let jx = if jitter > 0.0 {
                    rng.gen_range(-jitter..jitter)
                } else {
                    0.0
                };
                let jy = if jitter > 0.0 {
                    rng.gen_range(-jitter..jitter)
                } else {
                    0.0
                };
                if keep || (r, c) == anchor {
                    pts.push(Point::new(c as f64 + jx, r as f64 + jy));
                }
            }
        }
        pts
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_square_is_normalized_and_deterministic() {
        let a = uniform_square(100, 1.5, 11).unwrap();
        let b = uniform_square(100, 1.5, 11).unwrap();
        assert_eq!(a, b);
        assert!(a.is_normalized());
        assert_eq!(a.len(), 100);
        let c = uniform_square(100, 1.5, 12).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_square_rejects_bad_params() {
        assert!(uniform_square(0, 1.0, 0).is_err());
        assert!(uniform_square(10, 0.0, 0).is_err());
        assert!(uniform_square(10, f64::NAN, 0).is_err());
    }

    #[test]
    fn uniform_disk_in_disk() {
        let inst = uniform_disk(256, 1.0, 5).unwrap();
        assert!(inst.is_normalized());
        assert_eq!(inst.len(), 256);
    }

    #[test]
    fn lattice_shape() {
        let inst = grid_lattice(4, 8, 0.0, 0).unwrap();
        assert_eq!(inst.len(), 32);
        assert!(inst.is_normalized());
        // Unit lattice: min distance 1, delta the diagonal.
        assert!((inst.delta() - (49.0_f64 + 9.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn lattice_rejects_bad_jitter() {
        assert!(grid_lattice(2, 2, 0.45, 0).is_err());
        assert!(grid_lattice(2, 2, -0.1, 0).is_err());
        assert!(grid_lattice(0, 2, 0.0, 0).is_err());
    }

    #[test]
    fn clustered_counts() {
        let inst = clustered(5, 10, 1.0, 3.0, 21).unwrap();
        assert_eq!(inst.len(), 50);
        assert!(inst.is_normalized());
    }

    #[test]
    fn exponential_chain_delta_grows() {
        let small = exponential_chain(8, 1.5, 0).unwrap();
        let big = exponential_chain(8, 2.5, 0).unwrap();
        assert!(big.delta() > small.delta());
        assert!(big.num_length_classes() > small.num_length_classes());
    }

    #[test]
    fn exponential_chain_rejects_overflow() {
        assert!(exponential_chain(2000, 2.0, 0).is_err());
        assert!(exponential_chain(8, 0.5, 0).is_err());
    }

    #[test]
    fn line_spacing() {
        let inst = line(10).unwrap();
        assert_eq!(inst.len(), 10);
        assert_eq!(inst.delta(), 9.0);
        assert!(line(0).is_err());
    }

    #[test]
    fn annulus_radii() {
        let inst = annulus(64, 5.0, 10.0, 4).unwrap();
        assert_eq!(inst.len(), 64);
        assert!(annulus(10, 5.0, 5.0, 0).is_err());
        assert!(annulus(10, -1.0, 5.0, 0).is_err());
    }

    #[test]
    fn two_tier_counts_and_order() {
        let inst = two_tier(4, 5, 1.0, 8.0, 7).unwrap();
        assert_eq!(inst.len(), 24);
        assert!(inst.is_normalized());
        // Deterministic in the seed.
        assert_eq!(inst, two_tier(4, 5, 1.0, 8.0, 7).unwrap());
        assert_ne!(inst, two_tier(4, 5, 1.0, 8.0, 8).unwrap());
        assert!(two_tier(0, 5, 1.0, 8.0, 0).is_err());
        assert!(two_tier(4, 5, 1.0, 2.0, 0).is_err());
    }

    #[test]
    fn percolation_density_ladder() {
        let sparse = percolation(12, 12, 0.3, 0.2, 3).unwrap();
        let dense = percolation(12, 12, 0.9, 0.2, 3).unwrap();
        assert!(sparse.len() < dense.len());
        assert!(dense.len() <= 144);
        assert!(sparse.is_normalized() && dense.is_normalized());
        assert_eq!(sparse, percolation(12, 12, 0.3, 0.2, 3).unwrap());
        // Even occupancy → 0⁺ keeps the anchor site.
        assert!(!percolation(3, 3, 1e-12, 0.0, 0).unwrap().is_empty());
        assert!(percolation(0, 3, 0.5, 0.0, 0).is_err());
        assert!(percolation(3, 3, 1.5, 0.0, 0).is_err());
    }

    #[test]
    fn single_point_families() {
        assert_eq!(uniform_square(1, 1.0, 0).unwrap().len(), 1);
        assert_eq!(line(1).unwrap().len(), 1);
        assert_eq!(exponential_chain(1, 2.0, 0).unwrap().len(), 1);
    }
}
