//! Serde support for the geometry types (feature `serde`).
//!
//! Written as explicit impls rather than derives so the offline serde
//! shim needs no proc macro; the representations match what
//! `#[serde(try_from = ..., into = ...)]` derives would produce, and
//! deserialization re-runs the constructors, so invalid payloads (for
//! example coincident points) are rejected rather than smuggled in.

use serde::{Deserialize, Error, Serialize, Value};

use crate::{Aabb, Instance, Point};

impl Serialize for Point {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("x".to_string(), self.x.to_value()),
            ("y".to_string(), self.y.to_value()),
        ])
    }
}

impl Deserialize for Point {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(fields) => {
                let field = |name: &str| {
                    fields
                        .iter()
                        .find(|(k, _)| k == name)
                        .map(|(_, v)| v)
                        .ok_or_else(|| Error::custom(format!("Point: missing field `{name}`")))
                };
                Ok(Point::new(
                    f64::from_value(field("x")?)?,
                    f64::from_value(field("y")?)?,
                ))
            }
            other => Err(Error::custom(format!("Point: expected map, got {other:?}"))),
        }
    }
}

impl Serialize for Aabb {
    fn to_value(&self) -> Value {
        <(Point, Point)>::from(*self).to_value()
    }
}

impl Deserialize for Aabb {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let corners = <(Point, Point)>::from_value(value)?;
        Aabb::try_from(corners).map_err(Error::custom)
    }
}

impl Serialize for Instance {
    fn to_value(&self) -> Value {
        Vec::<Point>::from(self.clone()).to_value()
    }
}

impl Deserialize for Instance {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let points = Vec::<Point>::from_value(value)?;
        Instance::try_from(points).map_err(Error::custom)
    }
}
