//! Error types for geometry operations.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing geometric objects or instances.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeomError {
    /// The instance would contain no points.
    EmptyInstance,
    /// Two points coincide (zero minimum distance), which the paper's
    /// normalization (minimum distance 1) cannot represent.
    CoincidentPoints {
        /// Index of the first of the coinciding points.
        first: usize,
        /// Index of the second of the coinciding points.
        second: usize,
    },
    /// A coordinate was NaN or infinite.
    NonFinitePoint {
        /// Index of the offending point.
        index: usize,
    },
    /// A generator parameter was out of its documented domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: &'static str,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::EmptyInstance => write!(f, "instance must contain at least one point"),
            GeomError::CoincidentPoints { first, second } => {
                write!(
                    f,
                    "points {first} and {second} coincide; minimum distance must be positive"
                )
            }
            GeomError::NonFinitePoint { index } => {
                write!(f, "point {index} has a non-finite coordinate")
            }
            GeomError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            GeomError::EmptyInstance,
            GeomError::CoincidentPoints {
                first: 0,
                second: 1,
            },
            GeomError::NonFinitePoint { index: 3 },
            GeomError::InvalidParameter {
                name: "n",
                reason: "must be positive",
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error + Send + Sync> = Box::new(GeomError::EmptyInstance);
        assert!(e.source().is_none());
    }
}
