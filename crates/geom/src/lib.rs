//! Planar geometry substrate for SINR wireless-network algorithms.
//!
//! This crate provides the geometric foundation used throughout the
//! `sinr-connect` workspace, which reproduces Halldórsson & Mitra,
//! *Distributed Connectivity of Wireless Networks* (PODC 2012):
//!
//! - [`Point`] — a point in the plane with exact-enough `f64` arithmetic;
//! - [`Aabb`] — axis-aligned bounding boxes;
//! - [`Instance`] — an immutable set of wireless node positions with the
//!   paper's normalization (minimum pairwise distance 1) and the derived
//!   quantities `Δ` (max distance) and `log₂ Δ` (number of length classes);
//! - [`GridIndex`] — a uniform-grid spatial index for range queries;
//! - [`WeightedCellGrid`] — a mutable bucket grid with per-cell
//!   aggregate weights and ring enumeration (the substrate of the
//!   interference field in `sinr-phy`);
//! - [`gen`] — seeded instance generators (uniform, clustered, grid,
//!   exponential chain for large `Δ`, line, annulus);
//! - [`extremes`] — extreme pairwise distances (naive scan + the
//!   bit-identical grid/convex-hull acceleration behind [`Instance`]
//!   construction);
//! - [`mst`] — Euclidean minimum spanning trees (used by the centralized
//!   baselines of the paper's related work \[11\]), with a grid-pruned
//!   lazy Prim that is bit-identical to the `O(n²)` reference.
//!
//! # Example
//!
//! ```
//! use sinr_geom::{gen, Instance};
//!
//! let inst: Instance = gen::uniform_square(64, 1.5, 42).expect("valid parameters");
//! assert_eq!(inst.len(), 64);
//! // The paper's normalization: minimum pairwise distance is exactly 1.
//! assert!((inst.min_distance() - 1.0).abs() < 1e-9);
//! assert!(inst.delta() >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aabb;
mod error;
pub mod extremes;
pub mod gen;
mod grid;
mod instance;
pub mod mst;
mod point;
#[cfg(feature = "serde")]
mod serde_impls;

pub use aabb::Aabb;
pub use error::GeomError;
pub use grid::{CellKey, CellView, GridIndex, WeightedCellGrid};
pub use instance::{Instance, NodeId};
pub use point::Point;

/// Convenience result alias for fallible geometry operations.
pub type Result<T> = std::result::Result<T, GeomError>;
