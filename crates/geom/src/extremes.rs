//! Extreme pairwise distances of a point set.
//!
//! [`Instance`](crate::Instance) construction needs exactly two scalars
//! from the raw points — the minimum pairwise distance (the paper's
//! normalization unit, and the coincidence check) and the maximum
//! pairwise distance `Δ`. The reference implementation is the exact
//! `O(n²)` scan [`extreme_distances_naive`]; [`extreme_distances_grid`]
//! computes the *same values, bit for bit* subquadratically:
//!
//! - **minimum**: bucket the points into a uniform grid and run an
//!   expanding Chebyshev-ring nearest-neighbor search from every point,
//!   pruned by the global best — once a ring's distance lower bound
//!   exceeds the best candidate, no unseen point can improve (or
//!   lexicographically tie) it;
//! - **maximum**: the diameter endpoints are convex-hull vertices
//!   (Andrew's monotone chain, `O(n log n)`), so scanning hull-vertex ×
//!   point pairs (`O(hn)`, hull size `h ≪ n`) covers the argmax pair.
//!
//! Both paths evaluate candidate pairs with the same
//! [`Point::distance_sq`] expression the naive scan uses, and the
//! min/max of a set of `f64`s does not depend on the order candidates
//! are compared in, so the returned values are bit-identical — the
//! parity gate in `tests/determinism.rs` and this module's own tests
//! enforce it. [`extreme_distances`] dispatches on `n`.

use crate::Point;

/// The extreme pairwise distances of a point set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Extremes {
    /// Minimum pairwise distance.
    pub min: f64,
    /// Maximum pairwise distance (`Δ`).
    pub max: f64,
    /// The lexicographically first `(i, j)`, `i < j`, attaining the
    /// minimum — the pair reported by the coincidence check.
    pub min_pair: (usize, usize),
}

/// Below this many points the quadratic scan is cheaper than building
/// any index, so [`extreme_distances`] dispatches to the naive path.
const GRID_CUTOFF: usize = 256;

/// Cells per grid axis: `≈ √n` keeps the expected bucket occupancy
/// constant on density-bounded instances, clamped so degenerate spreads
/// (exponential chains) cannot allocate unbounded cell tables.
const MAX_CELLS_PER_AXIS: usize = 512;

/// Relative safety margin on ring-search stop conditions: the geometric
/// distance lower bound `ring · cell` holds in real arithmetic, so the
/// float comparison keeps one extra ring of slack rather than trusting
/// the last ulp.
const RING_MARGIN: f64 = 1.0 - 1e-12;

/// Exact `O(n²)` reference scan for the extreme pairwise distances.
///
/// Returns `None` for fewer than two points. This is the parity
/// reference for [`extreme_distances_grid`]; the dispatcher
/// [`extreme_distances`] still uses it directly for small inputs, where
/// it beats any index.
pub fn extreme_distances_naive(points: &[Point]) -> Option<Extremes> {
    if points.len() < 2 {
        return None;
    }
    let mut min = f64::INFINITY;
    let mut max: f64 = 0.0;
    let mut min_pair = (0, 1);
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let d = points[i].distance_sq(points[j]);
            if d < min {
                min = d;
                min_pair = (i, j);
            }
            max = max.max(d);
        }
    }
    Some(Extremes {
        min: min.sqrt(),
        max: max.sqrt(),
        min_pair,
    })
}

/// Grid-and-hull computation of the extreme pairwise distances,
/// bit-identical to [`extreme_distances_naive`] (see module docs).
///
/// Returns `None` for fewer than two points. Subquadratic on
/// density-bounded instances (uniform, clustered, lattice); a spread so
/// skewed that most points share one clamped cell (extreme exponential
/// chains) degrades toward the quadratic scan but never loses
/// exactness.
pub fn extreme_distances_grid(points: &[Point]) -> Option<Extremes> {
    if points.len() < 2 {
        return None;
    }
    let (min, min_pair) = min_pair_grid(points);
    let max = diameter_sq_hull(points);
    Some(Extremes {
        min: min.sqrt(),
        max: max.sqrt(),
        min_pair,
    })
}

/// The extreme pairwise distances: dispatches to the naive scan below
/// [`GRID_CUTOFF`] points and to the grid/hull path above it. Both
/// paths return identical bits.
pub fn extreme_distances(points: &[Point]) -> Option<Extremes> {
    if points.len() <= GRID_CUTOFF {
        extreme_distances_naive(points)
    } else {
        extreme_distances_grid(points)
    }
}

/// A minimal dense bucket grid over a point slice, shared by the
/// closest-pair search here and the MST candidate pruning in
/// [`crate::mst`]. Cells are addressed row-major; out-of-range rings
/// clamp to the table.
pub(crate) struct DenseGrid {
    cell: f64,
    cols: usize,
    rows: usize,
    min_x: f64,
    min_y: f64,
    pub(crate) buckets: Vec<Vec<usize>>,
}

impl DenseGrid {
    /// Builds the grid with `≈ axis_cells²` cells over the bounding box.
    pub(crate) fn build(points: &[Point], axis_cells: usize) -> Self {
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let span = (max_x - min_x).max(max_y - min_y).max(f64::MIN_POSITIVE);
        let axis = axis_cells.clamp(1, MAX_CELLS_PER_AXIS);
        let cell = span / axis as f64;
        let cols = (((max_x - min_x) / cell).floor() as usize + 1).max(1);
        let rows = (((max_y - min_y) / cell).floor() as usize + 1).max(1);
        let mut grid = DenseGrid {
            cell,
            cols,
            rows,
            min_x,
            min_y,
            buckets: vec![Vec::new(); cols * rows],
        };
        for (i, p) in points.iter().enumerate() {
            let k = grid.key_of(*p);
            grid.buckets[k].push(i);
        }
        grid
    }

    /// Cell side length.
    #[inline]
    pub(crate) fn cell(&self) -> f64 {
        self.cell
    }

    /// Row-major bucket index of the cell containing `p`.
    #[inline]
    pub(crate) fn key_of(&self, p: Point) -> usize {
        let cx = (((p.x - self.min_x) / self.cell).floor() as usize).min(self.cols - 1);
        let cy = (((p.y - self.min_y) / self.cell).floor() as usize).min(self.rows - 1);
        cy * self.cols + cx
    }

    /// Removes one occurrence of `id` from its bucket (order within the
    /// bucket is not preserved — callers must not depend on it).
    pub(crate) fn remove(&mut self, id: usize, p: Point) {
        let k = self.key_of(p);
        let bucket = &mut self.buckets[k];
        if let Some(pos) = bucket.iter().position(|&m| m == id) {
            bucket.swap_remove(pos);
        }
    }

    /// The largest Chebyshev ring index around `p`'s cell that can
    /// contain a cell of the table.
    pub(crate) fn max_ring_from(&self, p: Point) -> usize {
        let k = self.key_of(p);
        let (cx, cy) = (k % self.cols, k / self.cols);
        let dx = cx.max(self.cols - 1 - cx);
        let dy = cy.max(self.rows - 1 - cy);
        dx.max(dy)
    }

    /// Calls `f` with every member of every cell at Chebyshev ring
    /// `ring` around `p`'s cell (ring 0 is the cell itself), clamped to
    /// the table.
    pub(crate) fn for_each_ring_member<F: FnMut(usize)>(&self, p: Point, ring: usize, mut f: F) {
        let k = self.key_of(p);
        let (cx, cy) = ((k % self.cols) as i64, (k / self.cols) as i64);
        let r = ring as i64;
        let (x0, x1) = ((cx - r).max(0), (cx + r).min(self.cols as i64 - 1));
        let (y0, y1) = ((cy - r).max(0), (cy + r).min(self.rows as i64 - 1));
        let visit = |x: i64, y: i64, f: &mut F| {
            for &m in &self.buckets[y as usize * self.cols + x as usize] {
                f(m);
            }
        };
        if r == 0 {
            visit(cx, cy, &mut f);
            return;
        }
        for y in y0..=y1 {
            // Only the border of the ring square belongs to this ring.
            if y == cy - r || y == cy + r {
                for x in x0..=x1 {
                    visit(x, y, &mut f);
                }
            } else {
                if cx - r >= 0 {
                    visit(cx - r, y, &mut f);
                }
                if cx + r < self.cols as i64 {
                    visit(cx + r, y, &mut f);
                }
            }
        }
    }
}

/// Globally closest pair via per-point expanding-ring search, with the
/// naive scan's tie-break: lexicographically smallest `(d², i, j)`,
/// `i < j`.
fn min_pair_grid(points: &[Point]) -> (f64, (usize, usize)) {
    let axis = (points.len() as f64).sqrt().ceil() as usize;
    let grid = DenseGrid::build(points, axis);
    let cell = grid.cell();
    let mut best = (f64::INFINITY, (0usize, 1usize));
    for (i, p) in points.iter().enumerate() {
        let max_ring = grid.max_ring_from(*p);
        for ring in 0..=max_ring {
            // Every unseen point sits beyond `(ring − 1) · cell`; once
            // that bound (with margin) exceeds the best distance, later
            // rings can neither improve nor tie the lex-min pair.
            if ring >= 2 {
                let bound = (ring - 1) as f64 * cell * RING_MARGIN;
                if best.0 < bound * bound {
                    break;
                }
            }
            grid.for_each_ring_member(*p, ring, |j| {
                if j == i {
                    return;
                }
                let pair = (i.min(j), i.max(j));
                let d = points[pair.0].distance_sq(points[pair.1]);
                if d < best.0 || (d == best.0 && pair < best.1) {
                    best = (d, pair);
                }
            });
        }
    }
    best
}

/// Cross product `(b − a) × (c − a)`.
#[inline]
fn cross(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Squared diameter via Andrew's monotone chain + hull-vertex scan.
///
/// The diameter endpoints are vertices of the convex hull; scanning
/// every (hull vertex, point) pair therefore covers the argmax even if
/// float rounding in the orientation test dropped a near-collinear
/// vertex from one side — only pairs with *both* endpoints misclassified
/// could be missed, which requires two independent degeneracies at
/// opposite extremes of the set. The fold uses the same
/// `max(d²)`-then-`sqrt` expressions as the naive scan, so including
/// extra pairs never changes the result bits.
fn diameter_sq_hull(points: &[Point]) -> f64 {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_unstable_by(|&a, &b| {
        (points[a].x, points[a].y)
            .partial_cmp(&(points[b].x, points[b].y))
            .expect("instance points are finite")
    });
    let mut hull: Vec<usize> = Vec::with_capacity(idx.len() + 1);
    // Lower then upper chain; non-left turns (including collinear) pop.
    for pass in 0..2 {
        let start = hull.len();
        let iter: Box<dyn Iterator<Item = &usize>> = if pass == 0 {
            Box::new(idx.iter())
        } else {
            Box::new(idx.iter().rev())
        };
        for &i in iter {
            while hull.len() >= start + 2
                && cross(
                    points[hull[hull.len() - 2]],
                    points[hull[hull.len() - 1]],
                    points[i],
                ) <= 0.0
            {
                hull.pop();
            }
            hull.push(i);
        }
        hull.pop(); // chain endpoint repeats as the next chain's start
    }
    if hull.is_empty() {
        // Fully degenerate input (all points identical cannot happen for
        // n ≥ 2 distinct points, but stay total).
        hull = idx;
    }
    let mut max: f64 = 0.0;
    for &h in &hull {
        for p in points {
            max = max.max(points[h].distance_sq(*p));
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn assert_parity(points: &[Point], what: &str) {
        let naive = extreme_distances_naive(points);
        let grid = extreme_distances_grid(points);
        match (naive, grid) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.min.to_bits(), b.min.to_bits(), "{what}: min bits");
                assert_eq!(a.max.to_bits(), b.max.to_bits(), "{what}: max bits");
                assert_eq!(a.min_pair, b.min_pair, "{what}: min pair");
            }
            other => panic!("{what}: presence diverged: {other:?}"),
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(extreme_distances(&[]), None);
        assert_eq!(extreme_distances(&[Point::ORIGIN]), None);
        assert_eq!(extreme_distances_grid(&[Point::ORIGIN]), None);
        let two = [Point::ORIGIN, Point::new(3.0, 4.0)];
        let e = extreme_distances_grid(&two).unwrap();
        assert_eq!(e.min, 5.0);
        assert_eq!(e.max, 5.0);
        assert_eq!(e.min_pair, (0, 1));
    }

    #[test]
    fn parity_on_every_generator_family() {
        for seed in 0..4u64 {
            for (what, inst) in [
                ("uniform", gen::uniform_square(300, 1.5, seed).unwrap()),
                ("clustered", gen::clustered(12, 25, 1.5, 2.0, seed).unwrap()),
                ("lattice", gen::grid_lattice(17, 18, 0.25, seed).unwrap()),
                ("chain", gen::exponential_chain(40, 1.4, seed).unwrap()),
                ("line", gen::line(64).unwrap()),
                ("annulus", gen::annulus(280, 6.0, 14.0, seed).unwrap()),
            ] {
                assert_parity(inst.points(), what);
            }
        }
    }

    #[test]
    fn coincident_points_are_found() {
        // Two coincident pairs: the lex-first one must be reported.
        let mut pts: Vec<Point> = gen::uniform_square(400, 1.5, 9).unwrap().into();
        let a = pts[37];
        let b = pts[101];
        pts.push(b); // (101, 400)
        pts.push(a); // (37, 401)
        assert_parity(&pts, "coincident");
        let e = extreme_distances_grid(&pts).unwrap();
        assert_eq!(e.min, 0.0);
        // The naive scan's i-major order reaches i = 37 first.
        assert_eq!(e.min_pair, (37, 401));
    }

    #[test]
    fn collinear_diameter() {
        let pts: Vec<Point> = gen::line(300).unwrap().into();
        assert_parity(&pts, "line-300");
    }

    #[test]
    fn dispatch_matches_both_paths() {
        let big: Vec<Point> = gen::uniform_square(400, 1.5, 3).unwrap().into();
        let small: Vec<Point> = gen::uniform_square(40, 1.5, 3).unwrap().into();
        assert_eq!(extreme_distances(&big), extreme_distances_grid(&big));
        assert_eq!(extreme_distances(&small), extreme_distances_naive(&small));
    }
}
