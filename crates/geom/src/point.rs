//! Points in the Euclidean plane.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point (or vector) in the Euclidean plane.
///
/// All wireless nodes in the PODC 2012 model live at points on the plane;
/// distances between points determine both signal attenuation and the
/// length classes of the `Init` algorithm.
///
/// # Example
///
/// ```
/// use sinr_geom::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
// Serde support lives in `crate::serde_impls` (feature `serde`).
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Cheaper than [`Point::distance`]; prefer it for comparisons.
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean norm (distance from the origin).
    #[inline]
    pub fn norm(self) -> f64 {
        self.distance(Point::ORIGIN)
    }

    /// Linear interpolation: returns `self + t * (other - self)`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`; `t` outside `[0, 1]`
    /// extrapolates.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Dot product, treating both points as vectors.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Rotates the point by `angle` radians around the origin.
    #[inline]
    pub fn rotate(self, angle: f64) -> Point {
        let (s, c) = angle.sin_cos();
        Point::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Scales both coordinates by `factor`.
    #[inline]
    pub fn scale(self, factor: f64) -> Point {
        Point::new(self.x * factor, self.y * factor)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        self.scale(rhs)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.5, 7.25);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn distance_345() {
        assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Point::new(0.25, -1.5);
        let b = Point::new(4.0, 2.0);
        assert!((a.distance_sq(b) - a.distance(b).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(5.0, -3.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(3.0, -1.0));
    }

    #[test]
    fn arithmetic_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a + b, Point::new(4.0, 7.0));
        assert_eq!(b - a, Point::new(2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
    }

    #[test]
    fn rotate_quarter_turn() {
        let p = Point::new(1.0, 0.0).rotate(std::f64::consts::FRAC_PI_2);
        assert!((p.x - 0.0).abs() < 1e-12);
        assert!((p.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conversions_round_trip() {
        let p = Point::from((2.0, -4.0));
        let (x, y) = p.into();
        assert_eq!((x, y), (2.0, -4.0));
    }

    #[test]
    fn finite_detection() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Point::ORIGIN).is_empty());
    }
}
