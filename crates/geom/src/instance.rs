//! Wireless-network instances: immutable point sets with the paper's
//! normalization and derived quantities.

use crate::extremes::{extreme_distances, Extremes};
use crate::{Aabb, GeomError, Point, Result};

/// Identifier of a node: its index into the instance's point list.
///
/// The paper gives every node a globally unique ID; we use the instance
/// index, which doubles as an array offset everywhere in the workspace.
pub type NodeId = usize;

/// An immutable set of wireless node positions.
///
/// The PODC 2012 model assumes, w.l.o.g., that the minimum pairwise
/// distance is 1 and calls the maximum pairwise distance `Δ`. An
/// `Instance` stores the points together with the derived quantities
/// ([`min_distance`](Instance::min_distance), [`delta`](Instance::delta),
/// [`num_length_classes`](Instance::num_length_classes)) computed once at
/// construction.
///
/// # Example
///
/// ```
/// use sinr_geom::{Instance, Point};
///
/// let inst = Instance::normalized(vec![
///     Point::new(0.0, 0.0),
///     Point::new(0.5, 0.0),
///     Point::new(0.0, 3.0),
/// ])?;
/// assert!((inst.min_distance() - 1.0).abs() < 1e-9);
/// // Scaling by 2 turned the 3.0 gap into ~6.08 (hypotenuse grows too).
/// assert!(inst.delta() > 6.0);
/// # Ok::<(), sinr_geom::GeomError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
// Serde support lives in `crate::serde_impls` (feature `serde`), via
// the `Vec<Point>` conversions below: deserialization re-validates the
// normalization invariants.
pub struct Instance {
    points: Vec<Point>,
    min_distance: f64,
    delta: f64,
}

impl From<Instance> for Vec<Point> {
    /// Extracts the node positions.
    fn from(inst: Instance) -> Self {
        inst.points
    }
}

impl TryFrom<Vec<Point>> for Instance {
    type Error = GeomError;

    /// Validating conversion ([`Instance::new`]): deserialized
    /// instances re-derive `min_distance`/`Δ` instead of trusting the
    /// wire, so the cached extremes can never be forged.
    fn try_from(points: Vec<Point>) -> Result<Self> {
        Instance::new(points)
    }
}

impl Instance {
    /// Creates an instance from raw points without rescaling.
    ///
    /// # Errors
    ///
    /// - [`GeomError::EmptyInstance`] if `points` is empty;
    /// - [`GeomError::NonFinitePoint`] if any coordinate is NaN/infinite;
    /// - [`GeomError::CoincidentPoints`] if two points coincide (the
    ///   paper's model requires a positive minimum distance).
    pub fn new(points: Vec<Point>) -> Result<Self> {
        if points.is_empty() {
            return Err(GeomError::EmptyInstance);
        }
        for (i, p) in points.iter().enumerate() {
            if !p.is_finite() {
                return Err(GeomError::NonFinitePoint { index: i });
            }
        }
        // Size-dispatched (naive scan vs grid/hull, bit-identical —
        // see `crate::extremes`), so construction stays subquadratic
        // at the n = 4096–16384 sweep sizes.
        let (min_distance, delta) = match extreme_distances(&points) {
            Some(Extremes { min, max, min_pair }) => {
                if min == 0.0 {
                    return Err(GeomError::CoincidentPoints {
                        first: min_pair.0,
                        second: min_pair.1,
                    });
                }
                (min, max)
            }
            // Single point: conventions for the degenerate instance.
            None => (1.0, 1.0),
        };
        Ok(Instance {
            points,
            min_distance,
            delta,
        })
    }

    /// Creates an instance rescaled so that the minimum pairwise distance
    /// is exactly 1, the paper's normalization.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Instance::new`].
    pub fn normalized(points: Vec<Point>) -> Result<Self> {
        let inst = Instance::new(points)?;
        if inst.len() < 2 || (inst.min_distance - 1.0).abs() < 1e-12 {
            return Ok(inst);
        }
        let s = 1.0 / inst.min_distance;
        let scaled: Vec<Point> = inst.points.iter().map(|p| p.scale(s)).collect();
        // Rescaling cannot introduce coincident points, but re-deriving the
        // extremes keeps the cached values exact.
        Instance::new(scaled)
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the instance has no nodes (never true for a constructed one).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Position of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn position(&self, u: NodeId) -> Point {
        self.points[u]
    }

    /// All positions, indexed by [`NodeId`].
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Euclidean distance between nodes `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[inline]
    pub fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        self.points[u].distance(self.points[v])
    }

    /// Minimum pairwise distance (1 for normalized instances).
    #[inline]
    pub fn min_distance(&self) -> f64 {
        self.min_distance
    }

    /// Maximum pairwise distance `Δ`.
    #[inline]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Whether the instance satisfies the paper's normalization
    /// (minimum distance 1, up to floating-point slack).
    #[inline]
    pub fn is_normalized(&self) -> bool {
        (self.min_distance - 1.0).abs() < 1e-9
    }

    /// Number of length classes — the number of rounds of the `Init`
    /// algorithm (§6 of the paper): the class of `Δ` itself, so that the
    /// top round's window `[2^{r-1}, 2^r)` contains the diameter even
    /// when `Δ` is an exact power of two. At least 1, and within 1 of
    /// the paper's `⌈log₂ Δ⌉`.
    pub fn num_length_classes(&self) -> u32 {
        Self::length_class_of(self.delta)
    }

    /// The length class of a distance `d`: the round `r ≥ 1` with
    /// `d ∈ [2^{r-1}, 2^r)`.
    ///
    /// Distances below 1 (possible only on non-normalized instances) are
    /// mapped to class 1.
    pub fn length_class_of(d: f64) -> u32 {
        if d < 2.0 {
            1
        } else {
            d.log2().floor() as u32 + 1
        }
    }

    /// Bounding box of all points.
    pub fn bounding_box(&self) -> Aabb {
        Aabb::from_points(self.points.iter().copied())
            .expect("constructed instances contain at least one finite point")
    }

    /// Nodes within the closed ball of the given `center` and `radius`.
    ///
    /// Linear scan with a fresh allocation — the brute-force oracle the
    /// grid tests compare against, intended for tests and one-shot
    /// diagnostics only (the `nodes_within` rule of DESIGN.md §7.4);
    /// hot paths use [`GridIndex`](crate::GridIndex) queries.
    pub fn nodes_in_ball(&self, center: Point, radius: f64) -> Vec<NodeId> {
        let r2 = radius * radius;
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_sq(center) <= r2)
            .map(|(i, _)| i)
            .collect()
    }

    /// Iterator over `(NodeId, Point)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Point)> + '_ {
        self.points.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 2.0),
        ]
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Instance::new(vec![]), Err(GeomError::EmptyInstance));
    }

    #[test]
    fn rejects_nan() {
        let e = Instance::new(vec![Point::new(0.0, 0.0), Point::new(f64::NAN, 1.0)]);
        assert_eq!(e, Err(GeomError::NonFinitePoint { index: 1 }));
    }

    #[test]
    fn rejects_coincident() {
        let e = Instance::new(vec![Point::new(1.0, 1.0), Point::new(1.0, 1.0)]);
        assert_eq!(
            e,
            Err(GeomError::CoincidentPoints {
                first: 0,
                second: 1
            })
        );
    }

    #[test]
    fn single_point_conventions() {
        let inst = Instance::new(vec![Point::ORIGIN]).unwrap();
        assert_eq!(inst.len(), 1);
        assert_eq!(inst.delta(), 1.0);
        assert_eq!(inst.min_distance(), 1.0);
        assert_eq!(inst.num_length_classes(), 1);
        assert!(inst.is_normalized());
    }

    #[test]
    fn square_extremes() {
        let inst = Instance::new(square()).unwrap();
        assert_eq!(inst.min_distance(), 2.0);
        assert!((inst.delta() - 8.0_f64.sqrt()).abs() < 1e-12);
        assert!(!inst.is_normalized());
    }

    #[test]
    fn normalization_scales_min_to_one() {
        let inst = Instance::normalized(square()).unwrap();
        assert!((inst.min_distance() - 1.0).abs() < 1e-12);
        assert!((inst.delta() - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!(inst.is_normalized());
    }

    #[test]
    fn length_classes() {
        assert_eq!(Instance::length_class_of(1.0), 1);
        assert_eq!(Instance::length_class_of(1.999), 1);
        assert_eq!(Instance::length_class_of(2.0), 2);
        assert_eq!(Instance::length_class_of(3.999), 2);
        assert_eq!(Instance::length_class_of(4.0), 3);
        assert_eq!(Instance::length_class_of(0.5), 1);
    }

    #[test]
    fn num_length_classes_covers_delta() {
        let inst = Instance::normalized(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(100.0, 0.0),
        ])
        .unwrap();
        // Δ = 100 → ⌈log2 100⌉ = 7 classes; class of Δ must not exceed it.
        assert_eq!(inst.num_length_classes(), 7);
        assert!(Instance::length_class_of(inst.delta()) <= inst.num_length_classes());
    }

    #[test]
    fn nodes_in_ball_closed() {
        let inst = Instance::new(square()).unwrap();
        let got = inst.nodes_in_ball(Point::new(0.0, 0.0), 2.0);
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn distance_lookup() {
        let inst = Instance::new(square()).unwrap();
        assert_eq!(inst.distance(0, 3), 8.0_f64.sqrt());
        assert_eq!(inst.distance(3, 0), inst.distance(0, 3));
    }

    #[test]
    fn bounding_box_covers_all() {
        let inst = Instance::new(square()).unwrap();
        let bb = inst.bounding_box();
        for (_, p) in inst.iter() {
            assert!(bb.contains(p));
        }
    }
}
