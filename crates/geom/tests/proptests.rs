//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use sinr_geom::{gen, Aabb, GridIndex, Instance, Point};

fn finite_coord() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

/// Shared body of the grid-MST properties: spanning, n−1 edges, and a
/// total weight that matches the naive Prim reference bit for bit
/// (stronger than approximate equality — the edge sequences are
/// identical, so the summation order is too).
fn check_grid_mst_against_prim(inst: &Instance) {
    let grid = sinr_geom::mst::euclidean_mst_grid(inst);
    let prim = sinr_geom::mst::euclidean_mst_prim(inst);
    let n = inst.len();
    assert_eq!(grid.len(), n.saturating_sub(1));
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in &grid {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(u) = stack.pop() {
        for &v in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    assert!(seen.into_iter().all(|s| s), "grid MST does not span");
    assert_eq!(
        sinr_geom::mst::total_weight(inst, &grid).to_bits(),
        sinr_geom::mst::total_weight(inst, &prim).to_bits(),
        "grid MST weight bits diverged from Prim"
    );
    assert_eq!(grid, prim, "grid MST edge sequence diverged from Prim");
}

prop_compose! {
    fn arb_point()(x in finite_coord(), y in finite_coord()) -> Point {
        Point::new(x, y)
    }
}

proptest! {
    /// Triangle inequality for point distances.
    #[test]
    fn triangle_inequality(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-6);
    }

    /// Distance is symmetric and zero only at self.
    #[test]
    fn distance_symmetry(a in arb_point(), b in arb_point()) {
        prop_assert_eq!(a.distance(b), b.distance(a));
        prop_assert_eq!(a.distance(a), 0.0);
    }

    /// Normalization always produces min distance 1 for ≥2 distinct points.
    #[test]
    fn normalization_invariant(seed in 0u64..500, n in 2usize..80) {
        let inst = gen::uniform_square(n, 1.5, seed).unwrap();
        prop_assert!((inst.min_distance() - 1.0).abs() < 1e-9);
        prop_assert!(inst.delta() >= inst.min_distance());
    }

    /// Length-class of any pairwise distance is within the instance's count.
    #[test]
    fn length_class_bounded(seed in 0u64..200, n in 2usize..40) {
        let inst = gen::uniform_square(n, 2.0, seed).unwrap();
        let classes = inst.num_length_classes();
        for u in 0..n {
            for v in (u + 1)..n {
                let c = Instance::length_class_of(inst.distance(u, v));
                prop_assert!(c >= 1 && c <= classes,
                    "distance {} got class {c} of {classes}", inst.distance(u, v));
            }
        }
    }

    /// Grid range queries agree with brute force for arbitrary cell sizes.
    #[test]
    fn grid_matches_bruteforce(seed in 0u64..100, n in 1usize..60,
                               cell in 0.5f64..20.0, radius in 0.0f64..50.0) {
        let inst = gen::uniform_square(n, 2.0, seed).unwrap();
        let grid = GridIndex::build(&inst, cell);
        let center = inst.position(seed as usize % n);
        let mut a = grid.nodes_within(center, radius);
        let mut b = inst.nodes_in_ball(center, radius);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// The grid MST spans all nodes with n−1 edges and its total weight
    /// equals the naive Prim weight to the bit, on random uniform
    /// instances straddling the dispatch cutoff.
    #[test]
    fn grid_mst_spans_with_prim_weight_uniform(seed in 0u64..40, n in 2usize..400) {
        let inst = gen::uniform_square(n, 1.5, seed).unwrap();
        check_grid_mst_against_prim(&inst);
    }

    /// Same property on clustered (Thomas-process) instances, whose
    /// dense cells stress the ring pruning differently.
    #[test]
    fn grid_mst_spans_with_prim_weight_clustered(seed in 0u64..40,
                                                 clusters in 2usize..12,
                                                 per in 2usize..24) {
        let inst = gen::clustered(clusters, per, 1.5, 2.0, seed).unwrap();
        check_grid_mst_against_prim(&inst);
    }

    /// MST has n−1 edges and connects everything, on every family.
    #[test]
    fn mst_spans(seed in 0u64..100, n in 1usize..60) {
        let inst = gen::uniform_disk(n, 1.5, seed).unwrap();
        let edges = sinr_geom::mst::euclidean_mst(&inst);
        prop_assert_eq!(edges.len(), n.saturating_sub(1));
        // Reachability from node 0.
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] { seen[v] = true; stack.push(v); }
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// Aabb::union contains both inputs' corners.
    #[test]
    fn union_contains(a in arb_point(), b in arb_point(), c in arb_point(), d in arb_point()) {
        let (b1, b2) = (Aabb::from_points([a, b]).unwrap(), Aabb::from_points([c, d]).unwrap());
        let u = b1.union(&b2);
        for p in [a, b, c, d] {
            prop_assert!(u.contains(p));
        }
    }

    /// Generators are deterministic in the seed.
    #[test]
    fn generators_deterministic(seed in 0u64..300) {
        let a = gen::clustered(3, 5, 1.0, 2.0, seed).unwrap();
        let b = gen::clustered(3, 5, 1.0, 2.0, seed).unwrap();
        prop_assert_eq!(a, b);
    }
}
