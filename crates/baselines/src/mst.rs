//! Centralized MST-based connectivity (the \[11\] baseline).
//!
//! Halldórsson & Mitra (SODA 2012) showed the Euclidean MST is
//! `O(1)`-sparse and scheduled it in `O(log n)` slots (arbitrary power)
//! or `O(Υ·log n)` (oblivious power). This baseline builds the MST
//! centrally, orients it toward a centroid root and packs the links
//! first-fit in leaf-to-root order, producing a genuine [`BiTree`] to
//! compare against the paper's distributed constructions.

use sinr_geom::{Instance, NodeId};
use sinr_links::{BiTree, InTree, Link, Schedule};
use sinr_phy::{packing, PowerAssignment, SinrParams};

/// A centrally computed MST bi-tree with its schedule and power.
#[derive(Clone, Debug)]
pub struct MstBaseline {
    /// The converge-cast tree (MST oriented to the root).
    pub tree: InTree,
    /// The ordered, feasible bi-tree.
    pub bitree: BiTree,
    /// The aggregation schedule.
    pub schedule: Schedule,
    /// The power assignment used.
    pub power: PowerAssignment,
    /// Links that could not be scheduled even alone (always empty for
    /// the margin power constructors; reported for custom powers).
    pub unschedulable: Vec<Link>,
}

/// Picks the node closest to the bounding-box center — a cheap
/// centroid that keeps tree depth `O(diameter)`.
pub fn centroid_root(instance: &Instance) -> NodeId {
    let c = instance.bounding_box().center();
    (0..instance.len())
        .min_by(|&a, &b| {
            instance
                .position(a)
                .distance_sq(c)
                .partial_cmp(&instance.position(b).distance_sq(c))
                .expect("finite coordinates")
        })
        .expect("instances are non-empty")
}

/// Builds the MST bi-tree under `power`, packing aggregation links
/// greedily in leaf-to-root order with a per-node slot floor
/// (`sinr_phy::packing::pack_tree_ordered`), so each link lands
/// strictly after every link of its sender's subtree — the bi-tree
/// ordering holds by construction and every slot is feasible in both
/// schedule directions.
///
/// # Panics
///
/// Panics if `root` is out of range.
///
/// # Example
///
/// ```
/// use sinr_baselines::mst::{centroid_root, mst_bitree};
/// use sinr_geom::gen;
/// use sinr_phy::{PowerAssignment, SinrParams};
///
/// let params = SinrParams::default();
/// let inst = gen::uniform_square(24, 1.5, 1)?;
/// let power = PowerAssignment::mean_with_margin(&params, inst.delta());
/// let base = mst_bitree(&params, &inst, centroid_root(&inst), &power);
/// assert!(base.unschedulable.is_empty());
/// assert_eq!(base.schedule.links().len(), inst.len() - 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn mst_bitree(
    params: &SinrParams,
    instance: &Instance,
    root: NodeId,
    power: &PowerAssignment,
) -> MstBaseline {
    let parents = sinr_geom::mst::mst_parent_array(instance, root);
    let tree = InTree::from_parents(parents).expect("MST orientation is a valid in-tree");
    let (schedule, unschedulable) = packing::pack_tree_ordered(params, instance, &tree, power);
    let bitree = BiTree::new(tree.clone(), schedule.clone())
        .expect("leaf-to-root packing with floors yields a valid aggregation order");
    MstBaseline {
        tree,
        bitree,
        schedule,
        power: power.clone(),
        unschedulable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geom::gen;

    fn params() -> SinrParams {
        SinrParams::default()
    }

    #[test]
    fn centroid_is_central() {
        let inst = gen::line(9).unwrap();
        assert_eq!(centroid_root(&inst), 4);
    }

    #[test]
    fn mst_bitree_is_valid_under_each_power() {
        let p = params();
        let inst = gen::uniform_square(36, 1.5, 14).unwrap();
        let root = centroid_root(&inst);
        for power in [
            PowerAssignment::uniform_with_margin(&p, inst.delta()),
            PowerAssignment::mean_with_margin(&p, inst.delta()),
            PowerAssignment::linear_with_margin(&p),
        ] {
            let base = mst_bitree(&p, &inst, root, &power);
            assert!(base.unschedulable.is_empty());
            assert_eq!(base.schedule.links().len(), inst.len() - 1);
            sinr_phy::feasibility::validate_schedule(&p, &inst, &base.schedule, &power).unwrap();
            assert_eq!(base.bitree.num_slots(), base.schedule.num_slots());
        }
    }

    #[test]
    fn single_node_mst() {
        let p = params();
        let inst = gen::line(1).unwrap();
        let power = PowerAssignment::uniform(1.0);
        let base = mst_bitree(&p, &inst, 0, &power);
        assert_eq!(base.schedule.num_slots(), 0);
        assert_eq!(base.tree.root(), 0);
    }

    #[test]
    fn schedule_at_least_tree_height() {
        // Ordering forces one slot per level along the deepest path.
        let p = params();
        let inst = gen::line(8).unwrap();
        let base = mst_bitree(
            &p,
            &inst,
            0,
            &PowerAssignment::mean_with_margin(&p, inst.delta()),
        );
        assert!(base.schedule.num_slots() >= base.tree.height());
    }

    #[test]
    fn deterministic() {
        let p = params();
        let inst = gen::uniform_square(30, 1.5, 9).unwrap();
        let power = PowerAssignment::mean_with_margin(&p, inst.delta());
        let a = mst_bitree(&p, &inst, centroid_root(&inst), &power);
        let b = mst_bitree(&p, &inst, centroid_root(&inst), &power);
        assert_eq!(a.schedule, b.schedule);
    }
}
