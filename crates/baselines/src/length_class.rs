//! Length-class serialized scheduling (the \[21\]-style baseline).
//!
//! Moscibroda & Wattenhofer's seminal construction (and the simple
//! uniform-power bound the connectivity paper cites: uniform power can
//! require `Ω(log Δ)`-factor schedules) handles one length class at a
//! time, using a uniform power adequate for that class. This baseline
//! reproduces that shape: partition the links into length classes,
//! first-fit each class under its own uniform-with-margin power, and
//! concatenate the class schedules. Its length grows with the number
//! of occupied classes (`≤ log Δ`), which is exactly the gap
//! experiments E4/E7 exhibit against mean/arbitrary power.

use std::collections::HashMap;

use sinr_geom::Instance;
use sinr_links::{Link, LinkSet, Schedule};
use sinr_phy::{PowerAssignment, SinrParams};

use crate::first_fit::{first_fit_schedule, FirstFitOrder};

/// Result of length-class serialized scheduling.
#[derive(Clone, Debug)]
pub struct LengthClassOutcome {
    /// The combined schedule (classes back to back, ascending).
    pub schedule: Schedule,
    /// Per-link powers (each link uses its class's uniform power).
    pub powers: HashMap<Link, f64>,
    /// Number of occupied length classes.
    pub classes: usize,
    /// Links unschedulable even alone (empty with margin powers).
    pub unschedulable: Vec<Link>,
}

/// Schedules `links` one length class at a time under per-class
/// uniform power.
pub fn length_class_schedule(
    params: &SinrParams,
    instance: &Instance,
    links: &LinkSet,
) -> LengthClassOutcome {
    let mut schedule = Schedule::new();
    let mut powers = HashMap::new();
    let mut unschedulable = Vec::new();
    let mut base_slot = 0usize;
    let classes = links.length_classes(instance);
    let occupied = classes.len();

    for (class, members) in classes {
        // Uniform power adequate for the class ceiling 2^class.
        let ceiling = 2f64.powi(class as i32);
        let power = PowerAssignment::uniform_with_margin(params, ceiling);
        let (class_schedule, mut bad) = first_fit_schedule(
            params,
            instance,
            &members,
            &power,
            FirstFitOrder::AscendingLength,
            |_| 0,
        );
        for (l, s) in class_schedule.iter() {
            schedule.assign(l, base_slot + s);
            powers.insert(
                l,
                power
                    .power_of(l, instance, params)
                    .expect("uniform power never misses"),
            );
        }
        base_slot += class_schedule.num_slots();
        unschedulable.append(&mut bad);
    }

    schedule.compact();
    LengthClassOutcome {
        schedule,
        powers,
        classes: occupied,
        unschedulable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geom::gen;
    use sinr_phy::feasibility;

    fn mst_links(inst: &Instance) -> LinkSet {
        sinr_geom::mst::mst_parent_array(inst, 0)
            .iter()
            .enumerate()
            .filter_map(|(u, p)| p.map(|v| Link::new(u, v)))
            .collect()
    }

    #[test]
    fn schedules_all_links_feasibly() {
        let p = SinrParams::default();
        let inst = gen::uniform_square(40, 1.5, 3).unwrap();
        let links = mst_links(&inst);
        let out = length_class_schedule(&p, &inst, &links);
        assert!(out.unschedulable.is_empty());
        assert_eq!(out.schedule.links().len(), links.len());
        let pa = PowerAssignment::explicit(out.powers).unwrap();
        feasibility::validate_schedule(&p, &inst, &out.schedule, &pa).unwrap();
    }

    #[test]
    fn class_count_grows_with_delta() {
        let p = SinrParams::default();
        let small = gen::uniform_square(32, 1.2, 5).unwrap();
        let big = gen::exponential_chain(32, 1.6, 5).unwrap();
        let out_small = length_class_schedule(&p, &small, &mst_links(&small));
        let out_big = length_class_schedule(&p, &big, &mst_links(&big));
        assert!(out_big.classes >= out_small.classes);
    }

    #[test]
    fn empty_input() {
        let p = SinrParams::default();
        let inst = gen::line(2).unwrap();
        let out = length_class_schedule(&p, &inst, &LinkSet::new());
        assert_eq!(out.schedule.num_slots(), 0);
        assert_eq!(out.classes, 0);
    }
}
