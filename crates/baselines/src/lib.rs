//! Centralized baselines for SINR connectivity.
//!
//! The paper's distributed results are benchmarked against the
//! centralized state of the art it cites:
//!
//! - [`first_fit`] — greedy first-fit scheduling of a link set under a
//!   fixed power assignment (the workhorse behind the `O(ψ·log n)`
//!   schedules of Theorem 9), with optional precedence constraints;
//! - [`mst`] — the MST-based centralized connectivity of Halldórsson &
//!   Mitra, SODA 2012 \[11\]: Euclidean MST, oriented to a centroid
//!   root, scheduled first-fit in leaf-to-root order so the result is a
//!   valid bi-tree;
//! - [`capacity`] — Kesselheim's SODA 2011 \[14\] constant-factor
//!   capacity algorithm (the ascending-length admission rule of Eqn 3)
//!   with Foschini–Miljanic powers;
//! - [`length_class`] — Moscibroda–Wattenhofer-style \[21\] scheduling:
//!   uniform power within each length class, classes serialized.
//!
//! Experiment E7 tabulates all of these against the distributed
//! pipelines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod capacity;
pub mod first_fit;
pub mod length_class;
pub mod mst;
