//! Greedy first-fit scheduling under a fixed power assignment.
//!
//! The centralized scheduling results the paper builds on (Theorem 9:
//! a ψ-sparse set schedules in `O(ψ·log n)` slots) are realized by
//! greedy packing: process links in a chosen order and put each into
//! the earliest slot that stays feasible. This module provides that
//! packer, with optional per-link lower bounds on the slot index so
//! tree schedules can respect aggregation ordering.

use sinr_geom::Instance;
use sinr_links::{Link, LinkSet, Schedule};
use sinr_phy::feasibility::{self, SlotAuditor};
use sinr_phy::{PowerAssignment, SinrParams};

/// The order in which first-fit processes links.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FirstFitOrder {
    /// Ascending link length (the order used by the capacity/scheduling
    /// literature; usually the best packer).
    #[default]
    AscendingLength,
    /// Descending link length.
    DescendingLength,
    /// The link set's own (insertion) order.
    AsGiven,
}

/// Schedules `links` greedily under `power`, returning a schedule in
/// which every slot is feasible.
///
/// `min_slot(link)` gives the earliest slot the link may use (return 0
/// for unconstrained packing); the packer never violates it, which is
/// how [`crate::mst`] enforces leaf-to-root ordering.
///
/// Links that cannot be scheduled even alone (below the noise floor or
/// missing a power entry) are returned in the error list rather than
/// looping forever.
///
/// # Example
///
/// ```
/// use sinr_geom::gen;
/// use sinr_links::{Link, LinkSet};
/// use sinr_phy::{PowerAssignment, SinrParams};
/// use sinr_baselines::first_fit::{first_fit_schedule, FirstFitOrder};
///
/// let params = SinrParams::default();
/// let inst = gen::line(4)?;
/// let links = LinkSet::from_links(vec![Link::new(0, 1), Link::new(3, 2)])?;
/// let power = PowerAssignment::uniform_with_margin(&params, inst.delta());
/// let (schedule, unschedulable) = first_fit_schedule(
///     &params, &inst, &links, &power, FirstFitOrder::AscendingLength, |_| 0);
/// assert!(unschedulable.is_empty());
/// assert!(schedule.num_slots() >= 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn first_fit_schedule(
    params: &SinrParams,
    instance: &Instance,
    links: &LinkSet,
    power: &PowerAssignment,
    order: FirstFitOrder,
    mut min_slot: impl FnMut(Link) -> usize,
) -> (Schedule, Vec<Link>) {
    let ordered: Vec<Link> = match order {
        FirstFitOrder::AscendingLength => links.sorted_by_length(instance),
        FirstFitOrder::DescendingLength => {
            let mut v = links.sorted_by_length(instance);
            v.reverse();
            v
        }
        FirstFitOrder::AsGiven => links.links().to_vec(),
    };

    // Incremental per-slot auditors: probing a placement is `O(slot)`
    // and bit-identical to rebuilding the slot set through
    // `feasibility::check` (the auditor's determinism contract).
    let mut slots: Vec<SlotAuditor<'_>> = Vec::new();
    let mut schedule = Schedule::new();
    let mut unschedulable = Vec::new();

    'links: for link in ordered {
        // A link that cannot stand alone can never be placed.
        let alone: LinkSet = std::iter::once(link).collect();
        if !feasibility::is_feasible(params, instance, &alone, power) {
            unschedulable.push(link);
            continue;
        }
        let pw = power
            .power_of(link, instance, params)
            .expect("alone-feasible link has a power entry");
        let start = min_slot(link);
        let mut s = start;
        loop {
            while slots.len() <= s {
                slots.push(SlotAuditor::new(params, instance));
            }
            if slots[s].try_push(link, pw) {
                schedule.assign(link, s);
                continue 'links;
            }
            s += 1;
        }
    }

    (schedule, unschedulable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geom::gen;

    fn params() -> SinrParams {
        SinrParams::default()
    }

    fn mst_links(inst: &Instance) -> LinkSet {
        sinr_geom::mst::mst_parent_array(inst, 0)
            .iter()
            .enumerate()
            .filter_map(|(u, p)| p.map(|v| Link::new(u, v)))
            .collect()
    }

    #[test]
    fn empty_set_empty_schedule() {
        let p = params();
        let inst = gen::line(2).unwrap();
        let power = PowerAssignment::uniform(1.0);
        let (s, bad) = first_fit_schedule(
            &p,
            &inst,
            &LinkSet::new(),
            &power,
            FirstFitOrder::default(),
            |_| 0,
        );
        assert_eq!(s.num_slots(), 0);
        assert!(bad.is_empty());
    }

    #[test]
    fn packs_mst_feasibly_under_all_orders() {
        let p = params();
        let inst = gen::uniform_square(40, 1.5, 6).unwrap();
        let links = mst_links(&inst);
        let power = PowerAssignment::mean_with_margin(&p, inst.delta());
        for order in [
            FirstFitOrder::AscendingLength,
            FirstFitOrder::DescendingLength,
            FirstFitOrder::AsGiven,
        ] {
            let (s, bad) = first_fit_schedule(&p, &inst, &links, &power, order, |_| 0);
            assert!(bad.is_empty(), "{order:?}");
            assert_eq!(s.links().len(), links.len(), "{order:?}");
            feasibility::validate_schedule(&p, &inst, &s, &power)
                .unwrap_or_else(|e| panic!("{order:?}: {e}"));
        }
    }

    #[test]
    fn min_slot_respected() {
        let p = params();
        let inst = gen::line(4).unwrap();
        let links = LinkSet::from_links(vec![Link::new(0, 1), Link::new(3, 2)]).unwrap();
        let power = PowerAssignment::uniform_with_margin(&p, inst.delta());
        let (s, bad) = first_fit_schedule(&p, &inst, &links, &power, FirstFitOrder::AsGiven, |l| {
            if l == Link::new(3, 2) {
                5
            } else {
                0
            }
        });
        assert!(bad.is_empty());
        assert_eq!(s.slot_of(Link::new(3, 2)), Some(5));
        assert_eq!(s.slot_of(Link::new(0, 1)), Some(0));
    }

    #[test]
    fn below_noise_floor_reported_not_looped() {
        let p = params();
        let inst = gen::line(3).unwrap();
        let links = LinkSet::from_links(vec![Link::new(0, 2)]).unwrap(); // length 2
        let weak = PowerAssignment::uniform(p.noise_floor_power(2.0) * 0.5);
        let (s, bad) =
            first_fit_schedule(&p, &inst, &links, &weak, FirstFitOrder::default(), |_| 0);
        assert_eq!(bad, vec![Link::new(0, 2)]);
        assert_eq!(s.num_slots(), 0);
    }

    #[test]
    fn conflicting_links_get_different_slots() {
        let p = params();
        let inst = gen::line(3).unwrap();
        // Shared receiver: can never share a slot.
        let links = LinkSet::from_links(vec![Link::new(0, 1), Link::new(2, 1)]).unwrap();
        let power = PowerAssignment::uniform_with_margin(&p, inst.delta());
        let (s, bad) = first_fit_schedule(&p, &inst, &links, &power, FirstFitOrder::AsGiven, |_| 0);
        assert!(bad.is_empty());
        assert_eq!(s.num_slots(), 2);
    }
}
