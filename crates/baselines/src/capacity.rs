//! Kesselheim's centralized capacity algorithm (\[14\], SODA 2011).
//!
//! The constant-factor algorithm for *capacity with power control*:
//! process links in ascending length order; admit `ℓ` into the selected
//! set `L` when
//!
//! ```text
//! a^L_L(ℓ) + a^U_ℓ(L) ≤ τ          (Eqn 3 of the connectivity paper)
//! ```
//!
//! i.e. the linear-power affectance of the shorter selected links on
//! `ℓ` plus the uniform-power affectance of `ℓ` on them stays under a
//! constant. The admitted set provably admits a feasible power
//! assignment; we compute one with Foschini–Miljanic. `Distr-Cap`
//! (§8.2) is the distributed implementation of exactly this rule, so
//! this module doubles as its reference oracle in tests and
//! experiments.

use std::collections::HashMap;

use sinr_connectivity::power_control::{make_feasible, PowerControlConfig};
use sinr_geom::Instance;
use sinr_links::{Link, LinkSet};
use sinr_phy::affectance::AffectanceCalc;
use sinr_phy::SinrParams;

/// Result of the centralized capacity selection.
#[derive(Clone, Debug)]
pub struct CapacityOutcome {
    /// The admitted links (a constant-factor approximation of the
    /// maximum feasible subset).
    pub selected: LinkSet,
    /// Feasible per-link powers for the admitted set.
    pub powers: HashMap<Link, f64>,
    /// Links the power-control fallback had to drop (empty for sane τ).
    pub dropped: Vec<Link>,
}

/// Runs the ascending-length admission rule with threshold `tau`, then
/// computes powers.
///
/// Uses noiseless affectance (the distance-based form of \[14\]); the
/// final power assignment accounts for noise.
///
/// # Panics
///
/// Panics if `tau` is not positive and finite.
pub fn greedy_capacity(
    params: &SinrParams,
    instance: &Instance,
    candidates: &LinkSet,
    tau: f64,
    pc: &PowerControlConfig,
) -> CapacityOutcome {
    assert!(
        tau > 0.0 && tau.is_finite(),
        "tau must be positive, got {tau}"
    );
    let calc = AffectanceCalc::new(params, instance);
    let alpha = params.alpha();

    let mut selected = LinkSet::new();
    for ell in candidates.sorted_by_length(instance) {
        // Structural conflicts can never be fixed by power control.
        let conflict = selected.iter().any(|m| ell.shares_node(m));
        if conflict {
            continue;
        }
        let len_ell = ell.length(instance);
        let mut burden = 0.0;
        for m in selected.iter() {
            let len_m = m.length(instance);
            // a^L_L(ℓ): linear-power affectance of m on ℓ.
            burden +=
                calc.of_sender_noiseless(m.sender, len_m.powf(alpha), ell, len_ell.powf(alpha));
            // a^U_ℓ(L): uniform-power affectance of ℓ on m.
            burden += calc.of_sender_noiseless(ell.sender, 1.0, m, 1.0);
            if burden > tau {
                break;
            }
        }
        if burden <= tau {
            selected.insert(ell);
        }
    }

    let fm = make_feasible(params, instance, &selected, pc);
    CapacityOutcome {
        selected: fm.links,
        powers: fm.powers,
        dropped: fm.dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geom::gen;
    use sinr_phy::{feasibility, PowerAssignment};

    fn params() -> SinrParams {
        SinrParams::default()
    }

    fn all_nearest_links(inst: &Instance) -> LinkSet {
        let grid = sinr_geom::GridIndex::build(inst, 2.0);
        (0..inst.len())
            .filter_map(|u| grid.nearest_neighbor(u).map(|(v, _)| Link::new(u, v)))
            .collect()
    }

    #[test]
    fn selected_set_is_feasible() {
        let p = params();
        let inst = gen::uniform_square(60, 2.0, 4).unwrap();
        let candidates = all_nearest_links(&inst);
        let out = greedy_capacity(&p, &inst, &candidates, 0.5, &PowerControlConfig::default());
        assert!(!out.selected.is_empty());
        assert!(out.dropped.is_empty(), "τ = 0.5 should never need drops");
        let pa = PowerAssignment::explicit(out.powers).unwrap();
        assert!(feasibility::is_feasible(&p, &inst, &out.selected, &pa));
    }

    #[test]
    fn selection_is_constant_fraction_on_spread_links() {
        // Widely separated links: everything should be admitted.
        let p = params();
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(sinr_geom::Point::new(100.0 * i as f64, 0.0));
            pts.push(sinr_geom::Point::new(100.0 * i as f64 + 1.0, 0.0));
        }
        let inst = sinr_geom::Instance::new(pts).unwrap();
        let candidates: LinkSet = (0..10).map(|i| Link::new(2 * i, 2 * i + 1)).collect();
        let out = greedy_capacity(&p, &inst, &candidates, 0.5, &PowerControlConfig::default());
        assert_eq!(out.selected.len(), 10);
    }

    #[test]
    fn crowded_links_are_thinned() {
        let p = params();
        let mut pts = Vec::new();
        for i in 0..8 {
            pts.push(sinr_geom::Point::new(1.5 * i as f64, 0.0));
            pts.push(sinr_geom::Point::new(1.5 * i as f64, 1.0));
        }
        let inst = sinr_geom::Instance::new(pts).unwrap();
        let candidates: LinkSet = (0..8).map(|i| Link::new(2 * i, 2 * i + 1)).collect();
        let out = greedy_capacity(&p, &inst, &candidates, 0.5, &PowerControlConfig::default());
        assert!(out.selected.len() < 8, "crowded instance must be thinned");
        assert!(!out.selected.is_empty());
    }

    #[test]
    fn shared_node_links_never_coselected() {
        let p = params();
        let inst = gen::line(3).unwrap();
        let candidates =
            LinkSet::from_links(vec![Link::new(0, 1), Link::new(2, 1), Link::new(1, 2)]).unwrap();
        let out = greedy_capacity(&p, &inst, &candidates, 0.5, &PowerControlConfig::default());
        assert_eq!(out.selected.len(), 1);
    }

    #[test]
    #[should_panic(expected = "tau must be positive")]
    fn rejects_bad_tau() {
        let p = params();
        let inst = gen::line(2).unwrap();
        let _ = greedy_capacity(
            &p,
            &inst,
            &LinkSet::new(),
            0.0,
            &PowerControlConfig::default(),
        );
    }
}
