//! Feasibility of link sets and validation of schedules.
//!
//! A set `L` of links is *feasible* under a power assignment if every
//! link's SINR constraint (Eqn 1) holds when all senders of `L` transmit
//! simultaneously — equivalently `a_{S(L)}(ℓ) ≤ 1` for every `ℓ ∈ L`
//! (§5). On top of the SINR constraint we enforce the physical rules the
//! paper uses implicitly:
//!
//! - **half-duplex** — a node cannot transmit and receive in one slot;
//! - **single transmission** — a node cannot be the sender of two links
//!   in one slot (it has one radio).

use sinr_geom::{Instance, NodeId};
use sinr_links::{Link, LinkSet, Schedule};

use crate::affectance::AffectanceCalc;
use crate::{PhyError, PowerAssignment, SinrParams};

/// Why a link failed within its slot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ViolationKind {
    /// The achieved SINR is below `β`.
    LowSinr,
    /// The link's receiver is also a sender in the same slot.
    HalfDuplex,
    /// The link's sender also sends another link in the same slot.
    DuplicateSender,
    /// The assigned power cannot overcome ambient noise at this length.
    BelowNoiseFloor,
    /// The power assignment has no entry for this link.
    MissingPower,
}

/// A single feasibility violation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Violation {
    /// The offending link.
    pub link: Link,
    /// The achieved SINR (0 when not computable).
    pub sinr: f64,
    /// The category of failure.
    pub kind: ViolationKind,
}

/// Result of checking one link set.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FeasibilityReport {
    /// All violations found (empty ⇔ feasible).
    pub violations: Vec<Violation>,
    /// Number of links checked.
    pub checked: usize,
    /// Minimum SINR across links whose SINR was computable.
    pub min_sinr: Option<f64>,
}

impl FeasibilityReport {
    /// Whether the set was feasible.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks whether `links` is feasible under `power` when all of its
/// senders transmit simultaneously.
///
/// Never panics and never returns early: the report lists *all*
/// violations, which the experiment harness uses for diagnostics.
///
/// # Example
///
/// ```
/// use sinr_geom::{Instance, Point};
/// use sinr_links::{Link, LinkSet};
/// use sinr_phy::{feasibility, PowerAssignment, SinrParams};
///
/// let params = SinrParams::default();
/// let inst = Instance::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0),
///                               Point::new(2.0, 0.0)])?;
/// // 0→1 and 2→1 collide at the shared receiver: infeasible.
/// let links = LinkSet::from_links(vec![Link::new(0, 1), Link::new(2, 1)])?;
/// let power = PowerAssignment::uniform_with_margin(&params, inst.delta());
/// assert!(!feasibility::check(&params, &inst, &links, &power).is_feasible());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check(
    params: &SinrParams,
    instance: &Instance,
    links: &LinkSet,
    power: &PowerAssignment,
) -> FeasibilityReport {
    let calc = AffectanceCalc::new(params, instance);
    let mut report = FeasibilityReport {
        checked: links.len(),
        ..Default::default()
    };

    let mut senders: Vec<NodeId> = Vec::with_capacity(links.len());
    let mut tx: Vec<(NodeId, f64)> = Vec::with_capacity(links.len());
    let mut power_errors = Vec::new();
    for l in links.iter() {
        match power.power_of(l, instance, params) {
            Ok(p) => {
                senders.push(l.sender);
                tx.push((l.sender, p));
            }
            Err(PhyError::MissingPower { link }) => {
                power_errors.push(Violation {
                    link,
                    sinr: 0.0,
                    kind: ViolationKind::MissingPower,
                });
            }
            Err(_) => unreachable!("power_of only fails with MissingPower"),
        }
    }
    report.violations.extend(power_errors.iter().copied());
    if !power_errors.is_empty() {
        // Without a complete transmitter set the SINR of the remaining
        // links is not well-defined; stop at the structural failure.
        return report;
    }

    for (i, l) in links.iter().enumerate() {
        let p_l = tx[i].1;

        if senders.contains(&l.receiver) {
            report.violations.push(Violation {
                link: l,
                sinr: 0.0,
                kind: ViolationKind::HalfDuplex,
            });
            continue;
        }
        if senders.iter().filter(|&&s| s == l.sender).count() > 1 {
            report.violations.push(Violation {
                link: l,
                sinr: 0.0,
                kind: ViolationKind::DuplicateSender,
            });
            continue;
        }
        if p_l <= params.noise_floor_power(l.length(instance)) {
            report.violations.push(Violation {
                link: l,
                sinr: 0.0,
                kind: ViolationKind::BelowNoiseFloor,
            });
            continue;
        }

        let sinr = calc.sinr(l, p_l, &tx);
        report.min_sinr = Some(report.min_sinr.map_or(sinr, |m: f64| m.min(sinr)));
        if sinr < params.beta() * (1.0 - 1e-12) {
            report.violations.push(Violation {
                link: l,
                sinr,
                kind: ViolationKind::LowSinr,
            });
        }
    }
    report
}

/// Shorthand for `check(..).is_feasible()`.
pub fn is_feasible(
    params: &SinrParams,
    instance: &Instance,
    links: &LinkSet,
    power: &PowerAssignment,
) -> bool {
    check(params, instance, links, power).is_feasible()
}

/// Validates that every slot of `schedule` is feasible under `power`.
///
/// # Errors
///
/// Returns [`PhyError::InfeasibleSlot`] for the first offending slot.
pub fn validate_schedule(
    params: &SinrParams,
    instance: &Instance,
    schedule: &Schedule,
    power: &PowerAssignment,
) -> Result<(), PhyError> {
    for (slot, links) in schedule.slots().iter().enumerate() {
        let report = check(params, instance, links, power);
        if let Some(v) = report.violations.first() {
            return Err(PhyError::InfeasibleSlot {
                slot,
                link: v.link,
                sinr: v.sinr,
            });
        }
    }
    Ok(())
}

/// The *measured* affectance a receiver observes for a successful
/// reception: the total thresholded affectance of the other transmitters
/// on the link. This implements the measurement assumption of §8.2
/// ("receivers can measure the SINR of a successful link").
///
/// Returns `None` when the link power cannot overcome noise (the
/// measurement is undefined because the link cannot succeed at all).
pub fn measured_affectance(
    params: &SinrParams,
    instance: &Instance,
    link: Link,
    link_power: f64,
    transmitters: &[(NodeId, f64)],
) -> Option<f64> {
    AffectanceCalc::new(params, instance)
        .sum_on(transmitters, link, link_power)
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geom::Point;

    fn params() -> SinrParams {
        SinrParams::default()
    }

    fn line_instance(xs: &[f64]) -> Instance {
        Instance::new(xs.iter().map(|&x| Point::new(x, 0.0)).collect()).unwrap()
    }

    #[test]
    fn single_strong_link_is_feasible() {
        let p = params();
        let inst = line_instance(&[0.0, 1.0]);
        let links = LinkSet::from_links(vec![Link::new(0, 1)]).unwrap();
        let power = PowerAssignment::uniform_with_margin(&p, 1.0);
        let report = check(&p, &inst, &links, &power);
        assert!(report.is_feasible(), "{report:?}");
        assert!(report.min_sinr.unwrap() >= p.beta());
    }

    #[test]
    fn below_noise_floor_is_flagged() {
        let p = params();
        let inst = line_instance(&[0.0, 4.0]);
        let links = LinkSet::from_links(vec![Link::new(0, 1)]).unwrap();
        let power = PowerAssignment::uniform(p.noise_floor_power(4.0) * 0.5);
        let report = check(&p, &inst, &links, &power);
        assert_eq!(report.violations[0].kind, ViolationKind::BelowNoiseFloor);
    }

    #[test]
    fn half_duplex_violation() {
        let p = params();
        let inst = line_instance(&[0.0, 1.0, 2.0]);
        // 0 → 1 while 1 → 2: node 1 transmits and receives.
        let links = LinkSet::from_links(vec![Link::new(0, 1), Link::new(1, 2)]).unwrap();
        let power = PowerAssignment::uniform_with_margin(&p, inst.delta());
        let report = check(&p, &inst, &links, &power);
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::HalfDuplex && v.link == Link::new(0, 1)));
    }

    #[test]
    fn duplicate_sender_violation() {
        let p = params();
        let inst = line_instance(&[0.0, 1.0, 2.0]);
        let links = LinkSet::from_links(vec![Link::new(0, 1), Link::new(0, 2)]).unwrap();
        let power = PowerAssignment::uniform_with_margin(&p, inst.delta());
        let report = check(&p, &inst, &links, &power);
        assert!(report
            .violations
            .iter()
            .all(|v| v.kind == ViolationKind::DuplicateSender));
        assert_eq!(report.violations.len(), 2);
    }

    #[test]
    fn near_links_collide_far_links_coexist() {
        let p = params();
        // Two parallel unit-ish links: close together (interferer at
        // distance 1.5 from each receiver) → infeasible with uniform
        // power; far apart → feasible.
        let near = line_instance(&[0.0, 1.0, 1.5, 2.5]);
        let links = LinkSet::from_links(vec![Link::new(0, 1), Link::new(3, 2)]).unwrap();
        let power = PowerAssignment::uniform_with_margin(&p, 1.0);
        assert!(!is_feasible(&p, &near, &links, &power));

        let far = line_instance(&[0.0, 1.0, 100.0, 101.0]);
        let links_far = LinkSet::from_links(vec![Link::new(0, 1), Link::new(3, 2)]).unwrap();
        assert!(is_feasible(&p, &far, &links_far, &power));
    }

    #[test]
    fn missing_power_short_circuits() {
        let p = params();
        let inst = line_instance(&[0.0, 1.0, 50.0, 51.0]);
        let mut map = std::collections::HashMap::new();
        map.insert(Link::new(0, 1), 100.0);
        let power = PowerAssignment::explicit(map).unwrap();
        let links = LinkSet::from_links(vec![Link::new(0, 1), Link::new(2, 3)]).unwrap();
        let report = check(&p, &inst, &links, &power);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::MissingPower);
    }

    #[test]
    fn schedule_validation() {
        let p = params();
        let inst = line_instance(&[0.0, 1.0, 1.5, 2.5]);
        let power = PowerAssignment::uniform_with_margin(&p, 1.0);
        // Conflicting links in different slots: fine.
        let good = Schedule::from_pairs(vec![(Link::new(0, 1), 0), (Link::new(3, 2), 1)]).unwrap();
        assert!(validate_schedule(&p, &inst, &good, &power).is_ok());
        // Same slot: infeasible.
        let bad = Schedule::from_pairs(vec![(Link::new(0, 1), 0), (Link::new(3, 2), 0)]).unwrap();
        let err = validate_schedule(&p, &inst, &bad, &power).unwrap_err();
        assert!(matches!(err, PhyError::InfeasibleSlot { slot: 0, .. }));
    }

    #[test]
    fn feasibility_is_monotone_under_subset() {
        // Removing links cannot break feasibility (interference only
        // decreases). Spot-check on a feasible pair.
        let p = params();
        let inst = line_instance(&[0.0, 1.0, 100.0, 101.0]);
        let both = LinkSet::from_links(vec![Link::new(0, 1), Link::new(3, 2)]).unwrap();
        let power = PowerAssignment::uniform_with_margin(&p, 1.0);
        assert!(is_feasible(&p, &inst, &both, &power));
        for l in both.iter() {
            let single = LinkSet::from_links(vec![l]).unwrap();
            assert!(is_feasible(&p, &inst, &single, &power));
        }
    }

    #[test]
    fn measured_affectance_matches_success() {
        let p = params();
        let inst = line_instance(&[0.0, 1.0, 6.0, 7.0]);
        let l = Link::new(0, 1);
        let pw = p.min_power_for_length(1.0) * 2.0;
        let tx = [(0, pw), (3, pw)];
        let a = measured_affectance(&p, &inst, l, pw, &tx).unwrap();
        let calc = AffectanceCalc::new(&p, &inst);
        let sinr = calc.sinr(l, pw, &tx);
        // Equivalence: affectance ≤ 1 iff SINR ≥ β (unclipped terms).
        assert_eq!(a <= 1.0, sinr >= p.beta() * (1.0 - 1e-12));
    }
}
