//! Feasibility of link sets and validation of schedules.
//!
//! A set `L` of links is *feasible* under a power assignment if every
//! link's SINR constraint (Eqn 1) holds when all senders of `L` transmit
//! simultaneously — equivalently `a_{S(L)}(ℓ) ≤ 1` for every `ℓ ∈ L`
//! (§5). On top of the SINR constraint we enforce the physical rules the
//! paper uses implicitly:
//!
//! - **half-duplex** — a node cannot transmit and receive in one slot;
//! - **single transmission** — a node cannot be the sender of two links
//!   in one slot (it has one radio).

use std::collections::HashMap;

use sinr_geom::{Instance, NodeId};
use sinr_links::{Link, LinkSet, Schedule};

use crate::affectance::AffectanceCalc;
use crate::{ChannelModel, PhyError, PowerAssignment, SinrParams};

/// Why a link failed within its slot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ViolationKind {
    /// The achieved SINR is below `β`.
    LowSinr,
    /// The link's receiver is also a sender in the same slot.
    HalfDuplex,
    /// The link's sender also sends another link in the same slot.
    DuplicateSender,
    /// The assigned power cannot overcome ambient noise at this length.
    BelowNoiseFloor,
    /// The power assignment has no entry for this link.
    MissingPower,
}

/// A single feasibility violation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Violation {
    /// The offending link.
    pub link: Link,
    /// The achieved SINR (0 when not computable).
    pub sinr: f64,
    /// The category of failure.
    pub kind: ViolationKind,
}

/// Result of checking one link set.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FeasibilityReport {
    /// All violations found (empty ⇔ feasible).
    pub violations: Vec<Violation>,
    /// Number of links checked.
    pub checked: usize,
    /// Minimum SINR across links whose SINR was computable.
    pub min_sinr: Option<f64>,
}

impl FeasibilityReport {
    /// Whether the set was feasible.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks whether `links` is feasible under `power` when all of its
/// senders transmit simultaneously.
///
/// Never panics and never returns early: the report lists *all*
/// violations, which the experiment harness uses for diagnostics.
///
/// # Example
///
/// ```
/// use sinr_geom::{Instance, Point};
/// use sinr_links::{Link, LinkSet};
/// use sinr_phy::{feasibility, PowerAssignment, SinrParams};
///
/// let params = SinrParams::default();
/// let inst = Instance::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0),
///                               Point::new(2.0, 0.0)])?;
/// // 0→1 and 2→1 collide at the shared receiver: infeasible.
/// let links = LinkSet::from_links(vec![Link::new(0, 1), Link::new(2, 1)])?;
/// let power = PowerAssignment::uniform_with_margin(&params, inst.delta());
/// assert!(!feasibility::check(&params, &inst, &links, &power).is_feasible());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn check(
    params: &SinrParams,
    instance: &Instance,
    links: &LinkSet,
    power: &PowerAssignment,
) -> FeasibilityReport {
    check_with_model(params, instance, links, power, ChannelModel::Geometric)
}

/// [`check`] under an explicit [`ChannelModel`]; the Geometric model is
/// bit-identical to [`check`].
pub fn check_with_model(
    params: &SinrParams,
    instance: &Instance,
    links: &LinkSet,
    power: &PowerAssignment,
    model: ChannelModel,
) -> FeasibilityReport {
    let calc = AffectanceCalc::with_model(params, instance, model);
    let mut report = FeasibilityReport {
        checked: links.len(),
        ..Default::default()
    };

    let mut senders: Vec<NodeId> = Vec::with_capacity(links.len());
    let mut tx: Vec<(NodeId, f64)> = Vec::with_capacity(links.len());
    let mut power_errors = Vec::new();
    for l in links.iter() {
        match power.power_of(l, instance, params) {
            Ok(p) => {
                senders.push(l.sender);
                tx.push((l.sender, p));
            }
            Err(PhyError::MissingPower { link }) => {
                power_errors.push(Violation {
                    link,
                    sinr: 0.0,
                    kind: ViolationKind::MissingPower,
                });
            }
            Err(_) => unreachable!("power_of only fails with MissingPower"),
        }
    }
    report.violations.extend(power_errors.iter().copied());
    if !power_errors.is_empty() {
        // Without a complete transmitter set the SINR of the remaining
        // links is not well-defined; stop at the structural failure.
        return report;
    }

    for (i, l) in links.iter().enumerate() {
        let p_l = tx[i].1;

        if senders.contains(&l.receiver) {
            report.violations.push(Violation {
                link: l,
                sinr: 0.0,
                kind: ViolationKind::HalfDuplex,
            });
            continue;
        }
        if senders.iter().filter(|&&s| s == l.sender).count() > 1 {
            report.violations.push(Violation {
                link: l,
                sinr: 0.0,
                kind: ViolationKind::DuplicateSender,
            });
            continue;
        }
        if p_l <= model.noise_floor_power(params, l.length(instance), l.sender, l.receiver) {
            report.violations.push(Violation {
                link: l,
                sinr: 0.0,
                kind: ViolationKind::BelowNoiseFloor,
            });
            continue;
        }

        let sinr = calc.sinr(l, p_l, &tx);
        report.min_sinr = Some(report.min_sinr.map_or(sinr, |m: f64| m.min(sinr)));
        if sinr < params.beta() * (1.0 - 1e-12) {
            report.violations.push(Violation {
                link: l,
                sinr,
                kind: ViolationKind::LowSinr,
            });
        }
    }
    report
}

/// Shorthand for `check(..).is_feasible()`.
pub fn is_feasible(
    params: &SinrParams,
    instance: &Instance,
    links: &LinkSet,
    power: &PowerAssignment,
) -> bool {
    check(params, instance, links, power).is_feasible()
}

/// Shorthand for `check_with_model(..).is_feasible()`.
pub fn is_feasible_with_model(
    params: &SinrParams,
    instance: &Instance,
    links: &LinkSet,
    power: &PowerAssignment,
    model: ChannelModel,
) -> bool {
    check_with_model(params, instance, links, power, model).is_feasible()
}

/// Validates that every slot of `schedule` is feasible under `power`.
///
/// # Errors
///
/// Returns [`PhyError::InfeasibleSlot`] for the first offending slot.
pub fn validate_schedule(
    params: &SinrParams,
    instance: &Instance,
    schedule: &Schedule,
    power: &PowerAssignment,
) -> Result<(), PhyError> {
    validate_schedule_with_model(params, instance, schedule, power, ChannelModel::Geometric)
}

/// [`validate_schedule`] under an explicit [`ChannelModel`].
///
/// # Errors
///
/// Returns [`PhyError::InfeasibleSlot`] for the first offending slot.
pub fn validate_schedule_with_model(
    params: &SinrParams,
    instance: &Instance,
    schedule: &Schedule,
    power: &PowerAssignment,
    model: ChannelModel,
) -> Result<(), PhyError> {
    for (slot, links) in schedule.slots().iter().enumerate() {
        let report = check_with_model(params, instance, links, power, model);
        if let Some(v) = report.violations.first() {
            return Err(PhyError::InfeasibleSlot {
                slot,
                link: v.link,
                sinr: v.sinr,
            });
        }
    }
    Ok(())
}

/// An incremental per-slot feasibility auditor: the engine behind the
/// packers ([`crate::packing`], `sinr-baselines::first_fit`).
///
/// The naive packers re-ran [`check`] on a cloned link set for every
/// candidate placement, rebuilding every receiver's interference sum
/// from scratch — `O(k²)` per probe for a slot of `k` links. The
/// auditor instead caches, per resident link, the running interference
/// sum at its receiver; pushing a sender adds one term to each cached
/// sum (`O(k)`), and a rejected push restores the saved prefix sums
/// (never subtracts, so floats stay exact).
///
/// **Determinism contract** (DESIGN.md §7): the cached sums are built
/// by appending terms in link-insertion order, which is exactly the
/// left-to-right order [`AffectanceCalc::sinr`] uses inside [`check`]
/// (each link's own sender is skipped in both). Every decision
/// [`SlotAuditor::is_feasible`] returns is therefore bit-identical to
/// `check(..).is_feasible()` on the same link sequence — enforced by
/// the `auditor_matches_check_to_the_bit` test below.
#[derive(Clone, Debug)]
pub struct SlotAuditor<'a> {
    params: &'a SinrParams,
    instance: &'a Instance,
    model: ChannelModel,
    links: Vec<Link>,
    /// Per-link transmit power (resolved by the caller).
    powers: Vec<f64>,
    /// Per-link received signal `P·gain(len)` (precomputed at push).
    signals: Vec<f64>,
    /// Per-link noise floor (precomputed at push).
    floors: Vec<f64>,
    /// Per-link cached interference at the receiver, in canonical
    /// summation order.
    interference: Vec<f64>,
    /// Multiset of resident senders, so the structural predicates
    /// (half-duplex, duplicate sender) are `O(1)` per link instead of a
    /// rescan of the slot.
    sender_counts: HashMap<NodeId, u32>,
    /// Snapshots for [`pop`](SlotAuditor::pop): the interference prefix
    /// as it was before each push.
    undo: Vec<Vec<f64>>,
    /// Retired snapshot buffers, reused so the push→reject→pop cycle of
    /// a packing probe allocates nothing after warm-up.
    spare: Vec<Vec<f64>>,
}

impl<'a> SlotAuditor<'a> {
    /// Creates an empty auditor for one slot (Geometric channel,
    /// bit-identical legacy behavior).
    pub fn new(params: &'a SinrParams, instance: &'a Instance) -> Self {
        SlotAuditor::with_model(params, instance, ChannelModel::Geometric)
    }

    /// Creates an empty auditor under an explicit [`ChannelModel`].
    pub fn with_model(params: &'a SinrParams, instance: &'a Instance, model: ChannelModel) -> Self {
        SlotAuditor {
            params,
            instance,
            model,
            links: Vec::new(),
            powers: Vec::new(),
            signals: Vec::new(),
            floors: Vec::new(),
            interference: Vec::new(),
            sender_counts: HashMap::new(),
            undo: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// An auditor pre-seeded with a slot's resident links, pushed in
    /// iteration order — the constructor the incremental re-packer
    /// (`sinr-connectivity::repack`) uses to rebuild a surviving slot's
    /// probe state without replaying the original packing run. The
    /// residents are *pushed*, not assumed feasible: a subsequent
    /// [`is_feasible`](Self::is_feasible) reports on exactly the seeded
    /// set, and [`try_push`](Self::try_push) probes against it with the
    /// same bit-exact decisions as an auditor grown link by link.
    pub fn with_residents<I: IntoIterator<Item = (Link, f64)>>(
        params: &'a SinrParams,
        instance: &'a Instance,
        residents: I,
    ) -> Self {
        let mut auditor = SlotAuditor::new(params, instance);
        for (link, power) in residents {
            auditor.push(link, power);
        }
        auditor
    }

    /// [`with_residents`](Self::with_residents) under an explicit
    /// [`ChannelModel`].
    pub fn with_residents_model<I: IntoIterator<Item = (Link, f64)>>(
        params: &'a SinrParams,
        instance: &'a Instance,
        model: ChannelModel,
        residents: I,
    ) -> Self {
        let mut auditor = SlotAuditor::with_model(params, instance, model);
        for (link, power) in residents {
            auditor.push(link, power);
        }
        auditor
    }

    /// Number of links currently in the slot.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the slot is empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The resident links, in insertion order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Adds `link` transmitting with `power` to the slot, updating all
    /// cached sums incrementally (`O(len)`).
    pub fn push(&mut self, link: Link, power: f64) {
        let mut snapshot = self.spare.pop().unwrap_or_default();
        snapshot.clear();
        snapshot.extend_from_slice(&self.interference);
        self.undo.push(snapshot);
        let len = link.length(self.instance);
        let mut acc = 0.0;
        match &self.model {
            ChannelModel::Geometric => {
                // New sender's term lands on every resident receiver…
                for (i, l) in self.links.iter().enumerate() {
                    if link.sender != l.sender {
                        let d = self.instance.distance(link.sender, l.receiver);
                        self.interference[i] += power * self.params.path_gain(d);
                    }
                }
                // …and the new link accumulates every resident sender's
                // term, left to right, exactly as the naive sum would.
                for (l, &p) in self.links.iter().zip(&self.powers) {
                    if l.sender != link.sender {
                        let d = self.instance.distance(l.sender, link.receiver);
                        acc += p * self.params.path_gain(d);
                    }
                }
            }
            ChannelModel::Shadowed(s) => {
                for (i, l) in self.links.iter().enumerate() {
                    if link.sender != l.sender {
                        let d = self.instance.distance(link.sender, l.receiver);
                        self.interference[i] +=
                            power * self.params.path_gain(d) * s.fade(link.sender, l.receiver);
                    }
                }
                for (l, &p) in self.links.iter().zip(&self.powers) {
                    if l.sender != link.sender {
                        let d = self.instance.distance(l.sender, link.receiver);
                        acc += p * self.params.path_gain(d) * s.fade(l.sender, link.receiver);
                    }
                }
            }
        }
        self.links.push(link);
        self.powers.push(power);
        self.signals.push(match &self.model {
            ChannelModel::Geometric => power * self.params.path_gain(len),
            ChannelModel::Shadowed(s) => {
                power * self.params.path_gain(len) * s.fade(link.sender, link.receiver)
            }
        });
        self.floors.push(self.model.noise_floor_power(
            self.params,
            len,
            link.sender,
            link.receiver,
        ));
        self.interference.push(acc);
        *self.sender_counts.entry(link.sender).or_insert(0) += 1;
    }

    /// Removes the most recently pushed link, restoring the cached sums
    /// to their exact pre-push bits.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub fn pop(&mut self) {
        let snapshot = self.undo.pop().expect("pop on empty SlotAuditor");
        let link = self.links.pop().expect("undo stack matches links");
        self.powers.pop();
        self.signals.pop();
        self.floors.pop();
        let retired = std::mem::replace(&mut self.interference, snapshot);
        self.spare.push(retired);
        let count = self
            .sender_counts
            .get_mut(&link.sender)
            .expect("popped sender is counted");
        *count -= 1;
        if *count == 0 {
            self.sender_counts.remove(&link.sender);
        }
    }

    /// Whether the resident set is feasible — bit-identical to
    /// `check(params, instance, &set, power).is_feasible()` for the
    /// same links in the same order under the same powers.
    pub fn is_feasible(&self) -> bool {
        // Structural rules first, as `check` does: half-duplex,
        // duplicate senders, noise floor — `O(1)` per link via the
        // maintained sender multiset, keeping the whole probe `O(k)`.
        for (i, l) in self.links.iter().enumerate() {
            if self.sender_counts.get(&l.receiver).copied().unwrap_or(0) > 0 {
                return false;
            }
            if self.sender_counts.get(&l.sender).copied().unwrap_or(0) > 1 {
                return false;
            }
            if self.powers[i] <= self.floors[i] {
                return false;
            }
        }
        for (i, _) in self.links.iter().enumerate() {
            let sinr = self.signals[i] / (self.params.noise() + self.interference[i]);
            if sinr < self.params.beta() * (1.0 - 1e-12) {
                return false;
            }
        }
        true
    }

    /// Convenience probe: push, test, and pop on failure. Returns the
    /// decision; on `true` the link stays resident.
    pub fn try_push(&mut self, link: Link, power: f64) -> bool {
        self.push(link, power);
        if self.is_feasible() {
            true
        } else {
            self.pop();
            false
        }
    }
}

/// The *measured* affectance a receiver observes for a successful
/// reception: the total thresholded affectance of the other transmitters
/// on the link. This implements the measurement assumption of §8.2
/// ("receivers can measure the SINR of a successful link").
///
/// Returns `None` when the link power cannot overcome noise (the
/// measurement is undefined because the link cannot succeed at all).
pub fn measured_affectance(
    params: &SinrParams,
    instance: &Instance,
    link: Link,
    link_power: f64,
    transmitters: &[(NodeId, f64)],
) -> Option<f64> {
    AffectanceCalc::new(params, instance)
        .sum_on(transmitters, link, link_power)
        .ok()
}

/// [`measured_affectance`] under an explicit [`ChannelModel`].
pub fn measured_affectance_with(
    params: &SinrParams,
    instance: &Instance,
    model: ChannelModel,
    link: Link,
    link_power: f64,
    transmitters: &[(NodeId, f64)],
) -> Option<f64> {
    AffectanceCalc::with_model(params, instance, model)
        .sum_on(transmitters, link, link_power)
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geom::Point;

    fn params() -> SinrParams {
        SinrParams::default()
    }

    fn line_instance(xs: &[f64]) -> Instance {
        Instance::new(xs.iter().map(|&x| Point::new(x, 0.0)).collect()).unwrap()
    }

    #[test]
    fn single_strong_link_is_feasible() {
        let p = params();
        let inst = line_instance(&[0.0, 1.0]);
        let links = LinkSet::from_links(vec![Link::new(0, 1)]).unwrap();
        let power = PowerAssignment::uniform_with_margin(&p, 1.0);
        let report = check(&p, &inst, &links, &power);
        assert!(report.is_feasible(), "{report:?}");
        assert!(report.min_sinr.unwrap() >= p.beta());
    }

    #[test]
    fn below_noise_floor_is_flagged() {
        let p = params();
        let inst = line_instance(&[0.0, 4.0]);
        let links = LinkSet::from_links(vec![Link::new(0, 1)]).unwrap();
        let power = PowerAssignment::uniform(p.noise_floor_power(4.0) * 0.5);
        let report = check(&p, &inst, &links, &power);
        assert_eq!(report.violations[0].kind, ViolationKind::BelowNoiseFloor);
    }

    #[test]
    fn half_duplex_violation() {
        let p = params();
        let inst = line_instance(&[0.0, 1.0, 2.0]);
        // 0 → 1 while 1 → 2: node 1 transmits and receives.
        let links = LinkSet::from_links(vec![Link::new(0, 1), Link::new(1, 2)]).unwrap();
        let power = PowerAssignment::uniform_with_margin(&p, inst.delta());
        let report = check(&p, &inst, &links, &power);
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::HalfDuplex && v.link == Link::new(0, 1)));
    }

    #[test]
    fn duplicate_sender_violation() {
        let p = params();
        let inst = line_instance(&[0.0, 1.0, 2.0]);
        let links = LinkSet::from_links(vec![Link::new(0, 1), Link::new(0, 2)]).unwrap();
        let power = PowerAssignment::uniform_with_margin(&p, inst.delta());
        let report = check(&p, &inst, &links, &power);
        assert!(report
            .violations
            .iter()
            .all(|v| v.kind == ViolationKind::DuplicateSender));
        assert_eq!(report.violations.len(), 2);
    }

    #[test]
    fn near_links_collide_far_links_coexist() {
        let p = params();
        // Two parallel unit-ish links: close together (interferer at
        // distance 1.5 from each receiver) → infeasible with uniform
        // power; far apart → feasible.
        let near = line_instance(&[0.0, 1.0, 1.5, 2.5]);
        let links = LinkSet::from_links(vec![Link::new(0, 1), Link::new(3, 2)]).unwrap();
        let power = PowerAssignment::uniform_with_margin(&p, 1.0);
        assert!(!is_feasible(&p, &near, &links, &power));

        let far = line_instance(&[0.0, 1.0, 100.0, 101.0]);
        let links_far = LinkSet::from_links(vec![Link::new(0, 1), Link::new(3, 2)]).unwrap();
        assert!(is_feasible(&p, &far, &links_far, &power));
    }

    #[test]
    fn missing_power_short_circuits() {
        let p = params();
        let inst = line_instance(&[0.0, 1.0, 50.0, 51.0]);
        let mut map = std::collections::HashMap::new();
        map.insert(Link::new(0, 1), 100.0);
        let power = PowerAssignment::explicit(map).unwrap();
        let links = LinkSet::from_links(vec![Link::new(0, 1), Link::new(2, 3)]).unwrap();
        let report = check(&p, &inst, &links, &power);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::MissingPower);
    }

    #[test]
    fn schedule_validation() {
        let p = params();
        let inst = line_instance(&[0.0, 1.0, 1.5, 2.5]);
        let power = PowerAssignment::uniform_with_margin(&p, 1.0);
        // Conflicting links in different slots: fine.
        let good = Schedule::from_pairs(vec![(Link::new(0, 1), 0), (Link::new(3, 2), 1)]).unwrap();
        assert!(validate_schedule(&p, &inst, &good, &power).is_ok());
        // Same slot: infeasible.
        let bad = Schedule::from_pairs(vec![(Link::new(0, 1), 0), (Link::new(3, 2), 0)]).unwrap();
        let err = validate_schedule(&p, &inst, &bad, &power).unwrap_err();
        assert!(matches!(err, PhyError::InfeasibleSlot { slot: 0, .. }));
    }

    #[test]
    fn feasibility_is_monotone_under_subset() {
        // Removing links cannot break feasibility (interference only
        // decreases). Spot-check on a feasible pair.
        let p = params();
        let inst = line_instance(&[0.0, 1.0, 100.0, 101.0]);
        let both = LinkSet::from_links(vec![Link::new(0, 1), Link::new(3, 2)]).unwrap();
        let power = PowerAssignment::uniform_with_margin(&p, 1.0);
        assert!(is_feasible(&p, &inst, &both, &power));
        for l in both.iter() {
            let single = LinkSet::from_links(vec![l]).unwrap();
            assert!(is_feasible(&p, &inst, &single, &power));
        }
    }

    /// The auditor's decision equals `check(..).is_feasible()` on the
    /// same link sequence, for random push/pop sequences over random
    /// geometry — the packers rely on this being exact.
    #[test]
    fn auditor_matches_check_to_the_bit() {
        use sinr_geom::gen;
        let p = params();
        for seed in 0..6u64 {
            let inst = gen::uniform_square(40, 1.5, seed).unwrap();
            let power = PowerAssignment::mean_with_margin(&p, inst.delta());
            // Candidate links: everyone's nearest-neighbor uplink.
            let candidates: Vec<Link> = (0..inst.len())
                .map(|u| {
                    let v = (0..inst.len())
                        .filter(|&v| v != u)
                        .min_by(|&a, &b| {
                            inst.distance(a, u)
                                .partial_cmp(&inst.distance(b, u))
                                .unwrap()
                        })
                        .unwrap();
                    Link::new(u, v)
                })
                .collect();

            let mut auditor = SlotAuditor::new(&p, &inst);
            let mut resident: Vec<Link> = Vec::new();
            for &link in &candidates {
                let pw = power.power_of(link, &inst, &p).unwrap();
                // Reference decision on the would-be set, in identical order.
                let mut probe = resident.clone();
                probe.push(link);
                let set = LinkSet::from_links(probe).unwrap();
                let naive = check(&p, &inst, &set, &power).is_feasible();
                assert_eq!(
                    auditor.try_push(link, pw),
                    naive,
                    "seed {seed}: auditor diverged from check on {link:?}"
                );
                if naive {
                    resident.push(link);
                }
            }
            assert_eq!(auditor.links(), resident.as_slice());
            assert!(!auditor.is_empty(), "seed {seed}: nothing ever packed");

            // Pop everything; each prefix must still agree with check.
            while !auditor.is_empty() {
                auditor.pop();
                let set = LinkSet::from_links(auditor.links().to_vec()).unwrap();
                assert_eq!(
                    auditor.is_feasible(),
                    set.is_empty() || check(&p, &inst, &set, &power).is_feasible()
                );
            }
        }
    }

    /// A seeded auditor is indistinguishable from one grown push by
    /// push: same resident list, same feasibility bits, same probe
    /// decisions.
    #[test]
    fn seeded_auditor_matches_incremental_growth() {
        use sinr_geom::gen;
        let p = params();
        let inst = gen::uniform_square(30, 1.5, 4).unwrap();
        let power = PowerAssignment::mean_with_margin(&p, inst.delta());
        let residents: Vec<(Link, f64)> = [(0, 5), (7, 12), (20, 23)]
            .iter()
            .map(|&(u, v)| {
                let l = Link::new(u, v);
                (l, power.power_of(l, &inst, &p).unwrap())
            })
            .collect();
        let mut grown = SlotAuditor::new(&p, &inst);
        for &(l, pw) in &residents {
            grown.push(l, pw);
        }
        let mut seeded = SlotAuditor::with_residents(&p, &inst, residents.iter().copied());
        assert_eq!(grown.links(), seeded.links());
        assert_eq!(grown.is_feasible(), seeded.is_feasible());
        let probe = Link::new(15, 16);
        let pw = power.power_of(probe, &inst, &p).unwrap();
        assert_eq!(grown.try_push(probe, pw), seeded.try_push(probe, pw));
        assert_eq!(grown.links(), seeded.links());
    }

    #[test]
    fn auditor_rejects_structural_violations() {
        let p = params();
        let inst = line_instance(&[0.0, 1.0, 2.0]);
        let power = PowerAssignment::uniform_with_margin(&p, inst.delta());
        let pw = |l: Link| power.power_of(l, &inst, &p).unwrap();

        // Half-duplex: 0→1 with 1→2.
        let mut a = SlotAuditor::new(&p, &inst);
        assert!(a.try_push(Link::new(0, 1), pw(Link::new(0, 1))));
        assert!(!a.try_push(Link::new(1, 2), pw(Link::new(1, 2))));
        assert_eq!(a.len(), 1);

        // Duplicate sender: 0→1 with 0→2.
        let mut b = SlotAuditor::new(&p, &inst);
        assert!(b.try_push(Link::new(0, 1), pw(Link::new(0, 1))));
        assert!(!b.try_push(Link::new(0, 2), pw(Link::new(0, 2))));

        // Below the noise floor.
        let mut c = SlotAuditor::new(&p, &inst);
        assert!(!c.try_push(Link::new(0, 2), p.noise_floor_power(2.0) * 0.5));
    }

    #[test]
    fn measured_affectance_matches_success() {
        let p = params();
        let inst = line_instance(&[0.0, 1.0, 6.0, 7.0]);
        let l = Link::new(0, 1);
        let pw = p.min_power_for_length(1.0) * 2.0;
        let tx = [(0, pw), (3, pw)];
        let a = measured_affectance(&p, &inst, l, pw, &tx).unwrap();
        let calc = AffectanceCalc::new(&p, &inst);
        let sinr = calc.sinr(l, pw, &tx);
        // Equivalence: affectance ≤ 1 iff SINR ≥ β (unclipped terms).
        assert_eq!(a <= 1.0, sinr >= p.beta() * (1.0 - 1e-12));
    }
}
