//! Thresholded affectance (§5 of the paper).
//!
//! The affectance of a sender `w` on a link `ℓ = (u, v)` under power
//! assignment `P` is
//!
//! ```text
//! a_w(ℓ) = min{ 1 + ε,  c(u,v) · (P_w / P_u) · (d(u,v) / d(w,v))^α }
//! c(u,v) = β / (1 − βN·d(u,v)^α / P_u)
//! ```
//!
//! and a link succeeds exactly when the total affectance of the other
//! transmitters is at most 1: `a_S(ℓ) ≤ 1 ⟺ SINR(ℓ) ≥ β` (when no
//! individual term is clipped). The affectance of a link's own sender on
//! the link is 0 by convention.
//!
//! [`AffectanceCalc`] bundles the parameters and instance so call sites
//! stay readable; the *noiseless* variants replace `c(u,v)` by `β`,
//! which is the distance-only form used by the amenability function
//! `f_ℓ(ℓ')` of \[11\]/\[14\] (Appendix B).

use sinr_geom::{Instance, NodeId};
use sinr_links::{Link, LinkSet};

use crate::{ChannelModel, PhyError, PowerAssignment, Result, SinrParams};

/// Affectance and SINR computations over one instance.
///
/// # Example
///
/// ```
/// use sinr_geom::{Instance, Point};
/// use sinr_links::Link;
/// use sinr_phy::{affectance::AffectanceCalc, SinrParams};
///
/// let params = SinrParams::default();
/// let inst = Instance::new(vec![
///     Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(10.0, 0.0),
/// ])?;
/// let calc = AffectanceCalc::new(&params, &inst);
/// let link = Link::new(0, 1);
/// let p = params.min_power_for_length(1.0);
/// // A far-away interferer with the same power barely affects the link.
/// let a = calc.of_sender(2, p, link, p)?;
/// assert!(a < 0.1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct AffectanceCalc<'a> {
    params: &'a SinrParams,
    instance: &'a Instance,
    model: ChannelModel,
}

impl<'a> AffectanceCalc<'a> {
    /// Creates a calculator for `instance` under `params` on the clean
    /// geometric channel (the paper's model; bit-identical legacy
    /// behavior).
    pub fn new(params: &'a SinrParams, instance: &'a Instance) -> Self {
        AffectanceCalc {
            params,
            instance,
            model: ChannelModel::Geometric,
        }
    }

    /// Creates a calculator whose gains go through `model`. With
    /// [`ChannelModel::Geometric`] this is exactly [`new`](Self::new).
    pub fn with_model(params: &'a SinrParams, instance: &'a Instance, model: ChannelModel) -> Self {
        AffectanceCalc {
            params,
            instance,
            model,
        }
    }

    /// The channel model this calculator computes gains under.
    pub fn model(&self) -> ChannelModel {
        self.model
    }

    /// The noise factor `c(u, v) = β / (1 − βN / (P_u·g(u,v)))`, which
    /// under the geometric channel is the paper's
    /// `β / (1 − βN·d^α / P_u)`.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::PowerBelowNoiseFloor`] if `P_u·g ≤ βN`
    /// (the link cannot succeed even without interference).
    pub fn noise_factor(&self, link: Link, link_power: f64) -> Result<f64> {
        let d = link.length(self.instance);
        let floor = self
            .model
            .noise_floor_power(self.params, d, link.sender, link.receiver);
        if link_power <= floor {
            return Err(PhyError::PowerBelowNoiseFloor {
                link,
                power: link_power,
                required: floor,
            });
        }
        Ok(self.params.beta() / (1.0 - floor / link_power))
    }

    /// Thresholded affectance of sender `w` (transmitting with power
    /// `w_power`) on `link` (whose sender uses `link_power`).
    ///
    /// Zero if `w` is the link's own sender; clipped at `1 + ε`.
    ///
    /// # Errors
    ///
    /// Propagates [`PhyError::PowerBelowNoiseFloor`] from the noise
    /// factor.
    pub fn of_sender(&self, w: NodeId, w_power: f64, link: Link, link_power: f64) -> Result<f64> {
        if w == link.sender {
            return Ok(0.0);
        }
        let c = self.noise_factor(link, link_power)?;
        Ok(self.thresholded_term(c, w, w_power, link, link_power))
    }

    /// Noiseless affectance (`c` replaced by `β`): the distance-only
    /// form used in the amenability function of Appendix B.
    pub fn of_sender_noiseless(&self, w: NodeId, w_power: f64, link: Link, link_power: f64) -> f64 {
        if w == link.sender {
            return 0.0;
        }
        self.thresholded_term(self.params.beta(), w, w_power, link, link_power)
    }

    pub(crate) fn thresholded_term(
        &self,
        c: f64,
        w: NodeId,
        w_power: f64,
        link: Link,
        link_power: f64,
    ) -> f64 {
        let d_uv = link.length(self.instance);
        let d_wv = self.instance.distance(w, link.receiver);
        let clip = 1.0 + self.params.epsilon();
        if d_wv == 0.0 {
            // Interferer co-located with the receiver: unbounded term.
            return clip;
        }
        let raw = match &self.model {
            ChannelModel::Geometric => {
                c * (w_power / link_power) * (d_uv / d_wv).powf(self.params.alpha())
            }
            // General gains: the distance ratio picks up the fade ratio
            // `f(w,v) / f(u,v)` of the interfering and signal paths.
            ChannelModel::Shadowed(s) => {
                c * ((w_power * s.fade(w, link.receiver))
                    / (link_power * s.fade(link.sender, link.receiver)))
                    * (d_uv / d_wv).powf(self.params.alpha())
            }
        };
        raw.min(clip)
    }

    /// Affectance of link `from` on link `on`: `a_ℓ(ℓ') = a_{S(ℓ)}(ℓ')`.
    ///
    /// Paper-notation convenience with no hot-path callers since the
    /// replay loops moved onto `field::InterferenceField` (DESIGN.md
    /// §8.3); kept as the §5 reference surface for tests and
    /// diagnostics.
    ///
    /// # Errors
    ///
    /// Propagates [`PhyError::PowerBelowNoiseFloor`].
    pub fn of_link(&self, from: Link, from_power: f64, on: Link, on_power: f64) -> Result<f64> {
        self.of_sender(from.sender, from_power, on, on_power)
    }

    /// Total affectance `a_S(ℓ)` of a set of transmitting senders on a
    /// link. `senders` carries `(node, power)` pairs; the link's own
    /// sender contributes 0.
    ///
    /// # Errors
    ///
    /// Propagates [`PhyError::PowerBelowNoiseFloor`].
    pub fn sum_on(&self, senders: &[(NodeId, f64)], link: Link, link_power: f64) -> Result<f64> {
        let c = self.noise_factor(link, link_power)?;
        // Loop-invariant form of `thresholded_term`: `d_uv`, the clip
        // bound and `α` depend only on the link, and each term below is
        // the identical FP operation sequence on the identical values —
        // so the sum is bit-for-bit the per-term-recompute one.
        let d_uv = link.length(self.instance);
        let clip = 1.0 + self.params.epsilon();
        let alpha = self.params.alpha();
        let mut total = 0.0;
        match &self.model {
            ChannelModel::Geometric => {
                for &(w, pw) in senders {
                    if w == link.sender {
                        continue;
                    }
                    let d_wv = self.instance.distance(w, link.receiver);
                    total += if d_wv == 0.0 {
                        // Interferer co-located with the receiver: unbounded.
                        clip
                    } else {
                        (c * (pw / link_power) * (d_uv / d_wv).powf(alpha)).min(clip)
                    };
                }
            }
            ChannelModel::Shadowed(s) => {
                // Loop-invariant signal-path fade, mirroring the hoisted
                // geometric form above.
                let denom = link_power * s.fade(link.sender, link.receiver);
                for &(w, pw) in senders {
                    if w == link.sender {
                        continue;
                    }
                    let d_wv = self.instance.distance(w, link.receiver);
                    total += if d_wv == 0.0 {
                        clip
                    } else {
                        (c * ((pw * s.fade(w, link.receiver)) / denom) * (d_uv / d_wv).powf(alpha))
                            .min(clip)
                    };
                }
            }
        }
        Ok(total)
    }

    /// Total affectance `a_X(Y) = Σ_{ℓ' ∈ Y} a_{S(X)}(ℓ')` between two
    /// link sets under a power assignment (§5).
    ///
    /// Deliberately all-pairs (`O(|X|·|Y|)`): it is the §5 reference
    /// quantity for tests and one-shot diagnostics, with no hot-path
    /// callers — thresholded set decisions on hot paths go through
    /// `field::InterferenceField` / `feasibility::SlotAuditor`
    /// (DESIGN.md §7–8).
    ///
    /// # Errors
    ///
    /// Propagates power-lookup and noise-floor errors.
    pub fn set_on_set(
        &self,
        from: &LinkSet,
        onto: &LinkSet,
        power: &PowerAssignment,
    ) -> Result<f64> {
        let senders: Vec<(NodeId, f64)> = from
            .iter()
            .map(|l| Ok((l.sender, power.power_of(l, self.instance, self.params)?)))
            .collect::<Result<_>>()?;
        let mut total = 0.0;
        for l in onto.iter() {
            let pl = power.power_of(l, self.instance, self.params)?;
            total += self.sum_on(&senders, l, pl)?;
        }
        Ok(total)
    }

    /// Raw SINR of `link` when its sender transmits with `link_power`
    /// and `interferers` (excluding the sender) transmit simultaneously.
    ///
    /// Does not know about half-duplex: callers (the simulator and the
    /// feasibility checker) must handle a transmitting receiver.
    pub fn sinr(&self, link: Link, link_power: f64, interferers: &[(NodeId, f64)]) -> f64 {
        let d = link.length(self.instance);
        match &self.model {
            ChannelModel::Geometric => {
                let signal = link_power * self.params.path_gain(d);
                let mut interference = 0.0;
                for &(w, pw) in interferers {
                    if w == link.sender {
                        continue;
                    }
                    let dwv = self.instance.distance(w, link.receiver);
                    if dwv == 0.0 {
                        return 0.0;
                    }
                    interference += pw * self.params.path_gain(dwv);
                }
                signal / (self.params.noise() + interference)
            }
            ChannelModel::Shadowed(s) => {
                let signal =
                    link_power * self.params.path_gain(d) * s.fade(link.sender, link.receiver);
                let mut interference = 0.0;
                for &(w, pw) in interferers {
                    if w == link.sender {
                        continue;
                    }
                    let dwv = self.instance.distance(w, link.receiver);
                    if dwv == 0.0 {
                        return 0.0;
                    }
                    interference += pw * self.params.path_gain(dwv) * s.fade(w, link.receiver);
                }
                signal / (self.params.noise() + interference)
            }
        }
    }

    /// The amenability term of Appendix B / \[14\]:
    ///
    /// ```text
    /// f_ℓ(ℓ') = a^U_{ℓ'}(ℓ) + a^L_ℓ(ℓ')   if len(ℓ) ≤ len(ℓ'), else 0
    /// ```
    ///
    /// computed with noiseless affectance under unit-scale uniform (`U`)
    /// and linear (`L`) power. Feasible sets satisfy `f_ℓ(R) = O(1)`
    /// (Eqn 5), which experiment E9 measures.
    pub fn amenability_f(&self, ell: Link, ell_prime: Link) -> f64 {
        let len = ell.length(self.instance);
        let len_p = ell_prime.length(self.instance);
        if len > len_p || ell == ell_prime {
            return 0.0;
        }
        let alpha = self.params.alpha();
        // a^U_{ℓ'}(ℓ): uniform power (both 1).
        let term_u = self.of_sender_noiseless(ell_prime.sender, 1.0, ell, 1.0);
        // a^L_ℓ(ℓ'): linear power (P = len^α).
        let term_l =
            self.of_sender_noiseless(ell.sender, len.powf(alpha), ell_prime, len_p.powf(alpha));
        term_u + term_l
    }

    /// Sum `f_ℓ(X)` over a set.
    pub fn amenability_f_on_set(&self, ell: Link, set: &LinkSet) -> f64 {
        set.iter().map(|m| self.amenability_f(ell, m)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geom::Point;

    fn setup() -> (SinrParams, Instance) {
        let params = SinrParams::default();
        let inst = Instance::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(11.0, 0.0),
        ])
        .unwrap();
        (params, inst)
    }

    #[test]
    fn noise_factor_bounds() {
        let (params, inst) = setup();
        let calc = AffectanceCalc::new(&params, &inst);
        let link = Link::new(0, 1);
        // Minimum-margin power gives exactly c = 2β.
        let p = params.min_power_for_length(1.0);
        let c = calc.noise_factor(link, p).unwrap();
        assert!((c - 2.0 * params.beta()).abs() < 1e-9);
        // Huge power sends c toward β.
        let c_big = calc.noise_factor(link, 1e12).unwrap();
        assert!((c_big - params.beta()).abs() < 1e-6);
        // At or below the floor: error.
        let floor = params.noise_floor_power(1.0);
        assert!(calc.noise_factor(link, floor).is_err());
    }

    #[test]
    fn own_sender_has_zero_affectance() {
        let (params, inst) = setup();
        let calc = AffectanceCalc::new(&params, &inst);
        let link = Link::new(0, 1);
        let p = params.min_power_for_length(1.0);
        assert_eq!(calc.of_sender(0, p, link, p).unwrap(), 0.0);
    }

    #[test]
    fn affectance_clips_at_one_plus_epsilon() {
        let (params, inst) = setup();
        let calc = AffectanceCalc::new(&params, &inst);
        // Node 2 → 3 disturbed by co-located-ish node at distance 1 with
        // massive power: clipped.
        let link = Link::new(2, 3);
        let p = params.min_power_for_length(1.0);
        let a = calc.of_sender(0, 1e15, link, p).unwrap();
        assert_eq!(a, 1.0 + params.epsilon());
    }

    #[test]
    fn affectance_decays_with_distance() {
        let (params, inst) = setup();
        let calc = AffectanceCalc::new(&params, &inst);
        let link = Link::new(0, 1);
        let p = params.min_power_for_length(1.0);
        let near = calc.of_sender(2, p, link, p).unwrap();
        let far = calc.of_sender(3, p, link, p).unwrap();
        assert!(far < near, "farther interferer must affect less");
    }

    /// The exact equivalence a_S(ℓ) ≤ 1 ⟺ SINR ≥ β on unclipped sums.
    #[test]
    fn affectance_sinr_equivalence() {
        let (params, inst) = setup();
        let calc = AffectanceCalc::new(&params, &inst);
        let link = Link::new(0, 1);
        let p_u = params.min_power_for_length(1.0) * 4.0;
        for p_w in [0.1, 1.0, 10.0, 100.0, 1000.0] {
            let senders = [(2, p_w), (3, p_w * 0.5)];
            let aff = calc.sum_on(&senders, link, p_u).unwrap();
            let sinr = calc.sinr(link, p_u, &senders);
            let clipped = senders.iter().any(|&(w, pw)| {
                calc.of_sender(w, pw, link, p_u).unwrap() >= 1.0 + params.epsilon() - 1e-12
            });
            if !clipped {
                assert_eq!(
                    aff <= 1.0,
                    sinr >= params.beta() * (1.0 - 1e-12),
                    "aff={aff} sinr={sinr} p_w={p_w}"
                );
            }
        }
    }

    #[test]
    fn sinr_zero_when_interferer_at_receiver() {
        let (params, inst) = setup();
        let calc = AffectanceCalc::new(&params, &inst);
        let link = Link::new(0, 1);
        // Node 1 (the receiver) also "transmitting".
        let sinr = calc.sinr(link, 100.0, &[(1, 1.0)]);
        assert_eq!(sinr, 0.0);
    }

    #[test]
    fn set_on_set_sums() {
        let (params, inst) = setup();
        let calc = AffectanceCalc::new(&params, &inst);
        let x = LinkSet::from_links(vec![Link::new(0, 1)]).unwrap();
        let y = LinkSet::from_links(vec![Link::new(2, 3)]).unwrap();
        let power = PowerAssignment::uniform_with_margin(&params, inst.delta());
        let a_xy = calc.set_on_set(&x, &y, &power).unwrap();
        assert!(a_xy > 0.0);
        // Self-affectance of a set on itself excludes own senders but
        // includes cross terms; with a single link it is 0.
        let self_x = calc.set_on_set(&x, &x, &power).unwrap();
        assert_eq!(self_x, 0.0);
    }

    #[test]
    fn amenability_zero_for_longer_on_shorter() {
        let (params, inst) = setup();
        let calc = AffectanceCalc::new(&params, &inst);
        let short = Link::new(0, 1); // length 1
        let long = Link::new(2, 3); // length 1, but use a truly longer one:
        let longer = Link::new(1, 3); // length 10
                                      // f is zero when the first argument is the longer link…
        assert_eq!(calc.amenability_f(longer, short), 0.0);
        // …and positive (cross-affectance) when ordered short → longer.
        assert!(calc.amenability_f(short, longer) > 0.0);
        assert!(calc.amenability_f(short, long) > 0.0);
        // Never counts a link against itself.
        assert_eq!(calc.amenability_f(short, short), 0.0);
    }

    #[test]
    fn amenability_symmetric_scale_invariance() {
        // f uses unit scales; doubling all coordinates should leave the
        // noiseless distance-ratio terms unchanged.
        let params = SinrParams::default();
        let pts1 = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(8.0, 0.0),
        ];
        let pts2: Vec<Point> = pts1.iter().map(|p| p.scale(2.0)).collect();
        let i1 = Instance::new(pts1).unwrap();
        let i2 = Instance::new(pts2).unwrap();
        let c1 = AffectanceCalc::new(&params, &i1);
        let c2 = AffectanceCalc::new(&params, &i2);
        let a = Link::new(0, 1);
        let b = Link::new(2, 3);
        assert!((c1.amenability_f(a, b) - c2.amenability_f(a, b)).abs() < 1e-12);
    }
}
