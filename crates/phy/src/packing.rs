//! Greedy slot packing under a fixed power assignment.
//!
//! The shared engine behind the centralized schedulers (`sinr-baselines`)
//! and the repair pipeline (`sinr-connectivity::repair`): place links
//! into the earliest feasible slot, optionally respecting per-link slot
//! floors — which is how converge-cast trees get leaf-to-root-ordered
//! schedules (children strictly before parents).

use sinr_geom::Instance;
use sinr_links::{InTree, Link, LinkSet, Schedule};

use crate::feasibility::{self, SlotAuditor};
use crate::{ChannelModel, PowerAssignment, SinrParams};

/// Packs `links` (in the given order) greedily: each link goes to the
/// earliest slot `≥ min_slot(link)` whose occupancy stays feasible.
///
/// Slot occupancy is probed through the incremental
/// [`SlotAuditor`], whose decisions are bit-identical to re-running
/// [`feasibility::check`] on the rebuilt set, at `O(slot)` instead of
/// `O(slot²)` per probe.
///
/// Returns the schedule and the links that cannot be scheduled even
/// alone (below the noise floor or missing a power entry) — reported
/// instead of looping forever.
pub fn first_fit(
    params: &SinrParams,
    instance: &Instance,
    links: &[Link],
    power: &PowerAssignment,
    min_slot: impl FnMut(Link) -> usize,
) -> (Schedule, Vec<Link>) {
    first_fit_with_model(
        params,
        instance,
        ChannelModel::Geometric,
        links,
        power,
        min_slot,
    )
}

/// [`first_fit`] under an explicit [`ChannelModel`]; the Geometric
/// model is bit-identical to [`first_fit`].
pub fn first_fit_with_model(
    params: &SinrParams,
    instance: &Instance,
    model: ChannelModel,
    links: &[Link],
    power: &PowerAssignment,
    mut min_slot: impl FnMut(Link) -> usize,
) -> (Schedule, Vec<Link>) {
    let mut slots: Vec<SlotAuditor<'_>> = Vec::new();
    let mut schedule = Schedule::new();
    let mut unschedulable = Vec::new();

    'links: for &link in links {
        let alone: LinkSet = std::iter::once(link).collect();
        if !feasibility::is_feasible_with_model(params, instance, &alone, power, model) {
            unschedulable.push(link);
            continue;
        }
        let pw = power
            .power_of(link, instance, params)
            .expect("alone-feasible link has a power entry");
        let mut s = min_slot(link);
        loop {
            while slots.len() <= s {
                slots.push(SlotAuditor::with_model(params, instance, model));
            }
            if slots[s].try_push(link, pw) {
                schedule.assign(link, s);
                continue 'links;
            }
            s += 1;
        }
    }
    (schedule, unschedulable)
}

/// Packs a converge-cast tree's aggregation links in leaf-to-root order
/// with per-node slot floors, producing a schedule that satisfies the
/// bi-tree ordering property (every link strictly after all links of
/// its sender's subtree) with every slot feasible **in both
/// directions**: the aggregation links as given, and their duals, which
/// share the slot grouping through `BiTree::dissemination_schedule`
/// (Definition 1). Checking only the forward direction here is exactly
/// the bug that made repaired/joined bi-trees fail their broadcast
/// audit on most seeds.
///
/// The returned schedule is compacted. Unschedulable links — infeasible
/// alone in either direction — are reported (always empty for margin
/// powers).
pub fn pack_tree_ordered(
    params: &SinrParams,
    instance: &Instance,
    tree: &InTree,
    power: &PowerAssignment,
) -> (Schedule, Vec<Link>) {
    pack_tree_ordered_with_model(params, instance, ChannelModel::Geometric, tree, power)
}

/// [`pack_tree_ordered`] under an explicit [`ChannelModel`]; the
/// Geometric model is bit-identical to [`pack_tree_ordered`].
pub fn pack_tree_ordered_with_model(
    params: &SinrParams,
    instance: &Instance,
    model: ChannelModel,
    tree: &InTree,
    power: &PowerAssignment,
) -> (Schedule, Vec<Link>) {
    let mut floor = vec![0usize; tree.len()];
    let ordered: Vec<Link> = tree
        .leaf_to_root_order()
        .into_iter()
        .filter_map(|u| tree.parent(u).map(|p| Link::new(u, p)))
        .collect();

    let bidirectional_feasible = |set: &LinkSet| {
        feasibility::is_feasible_with_model(params, instance, set, power, model)
            && feasibility::is_feasible_with_model(params, instance, &set.dual(), power, model)
    };

    // Pack one link at a time so receiver floors update as we go. Each
    // slot keeps two incremental auditors — the aggregation direction
    // and its dual — probed in lockstep, which reproduces the old
    // clone-and-recheck `bidirectional_feasible` decision bit for bit
    // at `O(slot)` per probe.
    let mut slots: Vec<(SlotAuditor<'_>, SlotAuditor<'_>)> = Vec::new();
    let mut schedule = Schedule::new();
    let mut unschedulable = Vec::new();
    'links: for link in ordered {
        let alone: LinkSet = std::iter::once(link).collect();
        if !bidirectional_feasible(&alone) {
            unschedulable.push(link);
            continue;
        }
        let pw_fwd = power
            .power_of(link, instance, params)
            .expect("alone-feasible link has a power entry");
        let pw_dual = power
            .power_of(link.dual(), instance, params)
            .expect("alone-feasible dual has a power entry");
        let mut s = floor[link.sender];
        loop {
            while slots.len() <= s {
                slots.push((
                    SlotAuditor::with_model(params, instance, model),
                    SlotAuditor::with_model(params, instance, model),
                ));
            }
            let (fwd, dual) = &mut slots[s];
            if fwd.try_push(link, pw_fwd) {
                if dual.try_push(link.dual(), pw_dual) {
                    schedule.assign(link, s);
                    floor[link.receiver] = floor[link.receiver].max(s + 1);
                    continue 'links;
                }
                fwd.pop();
            }
            s += 1;
        }
    }
    schedule.compact();
    (schedule, unschedulable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geom::gen;

    fn params() -> SinrParams {
        SinrParams::default()
    }

    #[test]
    fn first_fit_respects_floors() {
        let p = params();
        let inst = gen::line(4).unwrap();
        let power = PowerAssignment::uniform_with_margin(&p, inst.delta());
        let links = [Link::new(0, 1), Link::new(3, 2)];
        let (s, bad) = first_fit(&p, &inst, &links, &power, |l| {
            if l == Link::new(3, 2) {
                3
            } else {
                0
            }
        });
        assert!(bad.is_empty());
        assert_eq!(s.slot_of(Link::new(3, 2)), Some(3));
    }

    #[test]
    fn tree_packing_is_ordered_and_feasible() {
        let p = params();
        let inst = gen::uniform_square(40, 1.5, 8).unwrap();
        let parents = sinr_geom::mst::mst_parent_array(&inst, 0);
        let tree = InTree::from_parents(parents).unwrap();
        let power = PowerAssignment::mean_with_margin(&p, inst.delta());
        let (schedule, bad) = pack_tree_ordered(&p, &inst, &tree, &power);
        assert!(bad.is_empty());
        feasibility::validate_schedule(&p, &inst, &schedule, &power).unwrap();
        // BiTree::new enforces the ordering property.
        sinr_links::BiTree::new(tree, schedule).expect("ordering holds");
    }

    #[test]
    fn unschedulable_links_reported() {
        let p = params();
        let inst = gen::line(3).unwrap();
        let weak = PowerAssignment::uniform(p.noise_floor_power(2.0) * 0.1);
        let links = [Link::new(0, 2)];
        let (s, bad) = first_fit(&p, &inst, &links, &weak, |_| 0);
        assert_eq!(bad.len(), 1);
        assert!(s.is_empty());
    }
}
