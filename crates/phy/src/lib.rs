//! The SINR (physical) interference model.
//!
//! Implements §3 and §5 of Halldórsson & Mitra (PODC 2012):
//!
//! - [`SinrParams`] — the model constants `α` (path loss), `β` (SINR
//!   threshold), `N` (ambient noise) and `ε` (affectance clip);
//! - [`PowerAssignment`] — uniform / mean / linear / general-oblivious /
//!   arbitrary (explicit) power, the assignments of §3;
//! - [`affectance`] — the thresholded affectance `a_w(ℓ)` of §5,
//!   including the noise factor `c(u, v)`, with the exact equivalence
//!   `a_S(ℓ) ≤ 1 ⟺ SINR ≥ β` (tested property);
//! - [`feasibility`] — per-slot feasibility of link sets, including the
//!   half-duplex rule, whole-schedule validation, and the incremental
//!   [`feasibility::SlotAuditor`] used by the packers;
//! - [`channel`] — the [`ChannelModel`] every gain computation routes
//!   through: the paper's geometric power law (bit-identical to the
//!   legacy `SinrParams` path), plus deterministic log-normal
//!   [`Shadowing`] whose truncated per-link fades give the certified
//!   field a finite gain range (DESIGN.md §15);
//! - [`field`] — the spatially-indexed interference field: certified
//!   thresholded queries over a grid-bucketed transmitter set,
//!   bit-identical to the naive all-pairs path (DESIGN.md §7), with
//!   far-field bounds widened by the model's `gain_bounds`;
//! - [`upsilon`] — the oblivious-power cost ratio
//!   `Υ = O(log log Δ + log n)`.
//!
//! # Example
//!
//! ```
//! use sinr_geom::{Instance, Point};
//! use sinr_links::{Link, LinkSet};
//! use sinr_phy::{feasibility, PowerAssignment, SinrParams};
//!
//! let params = SinrParams::default();
//! let inst = Instance::new(vec![
//!     Point::new(0.0, 0.0), Point::new(1.0, 0.0),
//!     Point::new(60.0, 0.0), Point::new(61.0, 0.0),
//! ])?;
//! let links = LinkSet::from_links(vec![Link::new(0, 1), Link::new(2, 3)])?;
//! let power = PowerAssignment::uniform(params.min_power_for_length(1.0) * 2.0);
//! let report = feasibility::check(&params, &inst, &links, &power);
//! assert!(report.is_feasible());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod affectance;
pub mod channel;
mod error;
pub mod feasibility;
pub mod field;
pub mod packing;
mod params;
mod power;
#[cfg(feature = "serde")]
mod serde_impls;

pub use channel::{ChannelModel, Shadowing};
pub use error::PhyError;
pub use params::SinrParams;
pub use power::PowerAssignment;

/// Convenience result alias for fallible physical-layer operations.
pub type Result<T> = std::result::Result<T, PhyError>;

/// The oblivious-power cost ratio `Υ = log₂ log₂ Δ + log₂ n` (§3):
/// the known bound on the gap between arbitrary power and mean power
/// for feasible-subset sizes.
///
/// Both terms are clamped below at 1 so the ratio is always ≥ 2, which
/// keeps sampling probabilities `1/Θ(Υ)` well-defined for tiny
/// instances.
pub fn upsilon(n: usize, delta: f64) -> f64 {
    let loglog_delta = if delta > 2.0 {
        delta.log2().log2().max(1.0)
    } else {
        1.0
    };
    let log_n = if n > 2 { (n as f64).log2() } else { 1.0 };
    loglog_delta + log_n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsilon_grows_in_both_arguments() {
        assert!(upsilon(1024, 16.0) > upsilon(16, 16.0));
        assert!(upsilon(16, 1e9) > upsilon(16, 16.0));
        assert!(upsilon(1, 1.0) >= 2.0);
    }
}
