//! Power assignments (§3 of the paper).

use std::collections::HashMap;
use std::fmt;

use sinr_geom::Instance;
use sinr_links::Link;

use crate::{ChannelModel, PhyError, Result, SinrParams};

/// A power assignment: how much power the sender of each link uses.
///
/// The paper distinguishes *oblivious* assignments — the power is a
/// simple function `scale · ℓ^{τα}` of the link length ℓ — from
/// *arbitrary* assignments chosen per link. The oblivious family is
/// parameterized by the exponent fraction `τ`:
///
/// | τ   | name            | power              |
/// |-----|-----------------|--------------------|
/// | 0   | uniform `U`     | `scale`            |
/// | 1/2 | mean `M`        | `scale · ℓ^{α/2}`  |
/// | 1   | linear `L`      | `scale · ℓ^{α}`    |
///
/// # Example
///
/// ```
/// use sinr_geom::{Instance, Point};
/// use sinr_links::Link;
/// use sinr_phy::{PowerAssignment, SinrParams};
///
/// let params = SinrParams::default();
/// let inst = Instance::new(vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)])?;
/// let mean = PowerAssignment::mean_with_margin(&params, inst.delta());
/// let p = mean.power_of(Link::new(0, 1), &inst, &params)?;
/// assert!(p > params.noise_floor_power(4.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct PowerAssignment {
    inner: Inner,
}

#[derive(Clone, PartialEq)]
enum Inner {
    /// `power(ℓ) = scale · len(ℓ)^{tau · α}`.
    Oblivious { tau: f64, scale: f64 },
    /// Explicit per-link powers.
    Explicit(HashMap<Link, f64>),
}

impl PowerAssignment {
    /// Uniform power `U`: every sender uses `power`.
    pub fn uniform(power: f64) -> Self {
        assert!(
            power > 0.0 && power.is_finite(),
            "power must be positive, got {power}"
        );
        PowerAssignment {
            inner: Inner::Oblivious {
                tau: 0.0,
                scale: power,
            },
        }
    }

    /// Mean power `M`: `scale · ℓ^{α/2}`.
    pub fn mean(scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale must be positive, got {scale}"
        );
        PowerAssignment {
            inner: Inner::Oblivious { tau: 0.5, scale },
        }
    }

    /// Linear power `L`: `scale · ℓ^α`.
    pub fn linear(scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale must be positive, got {scale}"
        );
        PowerAssignment {
            inner: Inner::Oblivious { tau: 1.0, scale },
        }
    }

    /// General oblivious power `scale · ℓ^{τα}` with `τ ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `tau ∉ [0, 1]` or `scale` is not positive and finite.
    pub fn oblivious(tau: f64, scale: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&tau),
            "tau must lie in [0, 1], got {tau}"
        );
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale must be positive, got {scale}"
        );
        PowerAssignment {
            inner: Inner::Oblivious { tau, scale },
        }
    }

    /// Uniform power sized so every link up to length `max_len`
    /// comfortably overcomes noise (`c ≤ 2β`; §6 sets `2βN·2^{rα}`).
    pub fn uniform_with_margin(params: &SinrParams, max_len: f64) -> Self {
        PowerAssignment::uniform(params.min_power_for_length(max_len).max(f64::MIN_POSITIVE))
    }

    /// Mean power with the scale chosen so all links up to `max_len`
    /// satisfy `c ≤ 2β`: `scale = 2βN·max_len^{α/2}` (so
    /// `P(ℓ) = 2βN·max_len^{α/2}·ℓ^{α/2} ≥ 2βN·ℓ^α` for `ℓ ≤ max_len`).
    pub fn mean_with_margin(params: &SinrParams, max_len: f64) -> Self {
        let scale = (2.0 * params.beta() * params.noise() * max_len.powf(params.alpha() / 2.0))
            .max(f64::MIN_POSITIVE);
        PowerAssignment::mean(scale)
    }

    /// Linear power with the noise-margin scale `2βN` (length-independent
    /// because the exponent already matches the path loss).
    pub fn linear_with_margin(params: &SinrParams) -> Self {
        let scale = (2.0 * params.beta() * params.noise()).max(f64::MIN_POSITIVE);
        PowerAssignment::linear(scale)
    }

    /// [`uniform_with_margin`](Self::uniform_with_margin) under an
    /// explicit [`ChannelModel`]: the margin also covers the deepest
    /// certified fade, so the noise factor stays bounded on every link.
    pub fn uniform_with_margin_model(
        params: &SinrParams,
        model: &ChannelModel,
        max_len: f64,
    ) -> Self {
        match model {
            ChannelModel::Geometric => PowerAssignment::uniform_with_margin(params, max_len),
            _ => PowerAssignment::uniform(
                model
                    .min_power_for_length(params, max_len)
                    .max(f64::MIN_POSITIVE),
            ),
        }
    }

    /// [`mean_with_margin`](Self::mean_with_margin) under an explicit
    /// [`ChannelModel`] (scale widened by the deepest certified fade).
    pub fn mean_with_margin_model(params: &SinrParams, model: &ChannelModel, max_len: f64) -> Self {
        match model {
            ChannelModel::Geometric => PowerAssignment::mean_with_margin(params, max_len),
            _ => {
                let (fade_lo, _) = model.fade_bounds();
                let scale =
                    (2.0 * params.beta() * params.noise() * max_len.powf(params.alpha() / 2.0)
                        / fade_lo)
                        .max(f64::MIN_POSITIVE);
                PowerAssignment::mean(scale)
            }
        }
    }

    /// [`linear_with_margin`](Self::linear_with_margin) under an
    /// explicit [`ChannelModel`] (scale widened by the deepest fade).
    pub fn linear_with_margin_model(params: &SinrParams, model: &ChannelModel) -> Self {
        match model {
            ChannelModel::Geometric => PowerAssignment::linear_with_margin(params),
            _ => {
                let (fade_lo, _) = model.fade_bounds();
                let scale = (2.0 * params.beta() * params.noise() / fade_lo).max(f64::MIN_POSITIVE);
                PowerAssignment::linear(scale)
            }
        }
    }

    /// An explicit per-link assignment (the paper's "arbitrary power").
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidParameter`] if any power is not
    /// positive and finite.
    pub fn explicit(powers: HashMap<Link, f64>) -> Result<Self> {
        for &p in powers.values() {
            if !(p.is_finite() && p > 0.0) {
                return Err(PhyError::InvalidParameter {
                    name: "powers",
                    reason: "every explicit power must be positive and finite",
                });
            }
        }
        Ok(PowerAssignment {
            inner: Inner::Explicit(powers),
        })
    }

    /// Whether this is an oblivious (length-function) assignment.
    pub fn is_oblivious(&self) -> bool {
        matches!(self.inner, Inner::Oblivious { .. })
    }

    /// The power the sender of `link` uses.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::MissingPower`] if an explicit assignment has
    /// no entry for `link`.
    pub fn power_of(&self, link: Link, instance: &Instance, params: &SinrParams) -> Result<f64> {
        match &self.inner {
            Inner::Oblivious { tau, scale } => {
                Ok(scale * link.length(instance).powf(tau * params.alpha()))
            }
            Inner::Explicit(map) => map
                .get(&link)
                .copied()
                .ok_or(PhyError::MissingPower { link }),
        }
    }

    /// The explicit power table, if this is an explicit assignment.
    pub fn as_explicit(&self) -> Option<&HashMap<Link, f64>> {
        match &self.inner {
            Inner::Explicit(map) => Some(map),
            Inner::Oblivious { .. } => None,
        }
    }
}

impl fmt::Debug for PowerAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Inner::Oblivious { tau, scale } => {
                write!(f, "PowerAssignment::Oblivious(tau={tau}, scale={scale})")
            }
            Inner::Explicit(map) => {
                write!(f, "PowerAssignment::Explicit({} links)", map.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geom::Point;

    fn inst() -> Instance {
        Instance::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(4.0, 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn oblivious_family_exponents() {
        let params = SinrParams::default(); // α = 3
        let i = inst();
        let long = Link::new(0, 2); // length 4
        let uniform = PowerAssignment::uniform(5.0);
        let mean = PowerAssignment::mean(1.0);
        let linear = PowerAssignment::linear(1.0);
        assert_eq!(uniform.power_of(long, &i, &params).unwrap(), 5.0);
        assert!((mean.power_of(long, &i, &params).unwrap() - 8.0).abs() < 1e-9); // 4^1.5
        assert!((linear.power_of(long, &i, &params).unwrap() - 64.0).abs() < 1e-9);
        // 4^3
    }

    #[test]
    fn margin_constructors_beat_noise_floor() {
        let params = SinrParams::default();
        let i = inst();
        let long = Link::new(0, 2);
        let short = Link::new(0, 1);
        for pa in [
            PowerAssignment::uniform_with_margin(&params, i.delta()),
            PowerAssignment::mean_with_margin(&params, i.delta()),
            PowerAssignment::linear_with_margin(&params),
        ] {
            for l in [long, short] {
                let p = pa.power_of(l, &i, &params).unwrap();
                assert!(
                    p >= 2.0 * params.noise_floor_power(l.length(&i)) * (1.0 - 1e-12),
                    "{pa:?} gave {p} for {l:?}"
                );
            }
        }
    }

    #[test]
    fn explicit_lookup_and_missing() {
        let params = SinrParams::default();
        let i = inst();
        let mut map = HashMap::new();
        map.insert(Link::new(0, 1), 7.0);
        let pa = PowerAssignment::explicit(map).unwrap();
        assert!(!pa.is_oblivious());
        assert_eq!(pa.power_of(Link::new(0, 1), &i, &params).unwrap(), 7.0);
        assert_eq!(
            pa.power_of(Link::new(0, 2), &i, &params),
            Err(PhyError::MissingPower {
                link: Link::new(0, 2)
            })
        );
    }

    #[test]
    fn explicit_rejects_nonpositive() {
        let mut map = HashMap::new();
        map.insert(Link::new(0, 1), 0.0);
        assert!(PowerAssignment::explicit(map).is_err());
    }

    #[test]
    #[should_panic(expected = "tau must lie in [0, 1]")]
    fn oblivious_rejects_bad_tau() {
        let _ = PowerAssignment::oblivious(1.5, 1.0);
    }

    #[test]
    fn mean_is_geometric_mean_of_uniform_and_linear() {
        // P_M(ℓ)² = P_U · P_L(ℓ) when all scales are 1.
        let params = SinrParams::default();
        let i = inst();
        let l = Link::new(0, 2);
        let u = PowerAssignment::uniform(1.0)
            .power_of(l, &i, &params)
            .unwrap();
        let m = PowerAssignment::mean(1.0).power_of(l, &i, &params).unwrap();
        let lin = PowerAssignment::linear(1.0)
            .power_of(l, &i, &params)
            .unwrap();
        assert!((m * m - u * lin).abs() < 1e-9);
    }
}
