//! Serde support for the physical-layer types (feature `serde`).
//!
//! Explicit impls rather than derives (the offline serde shim has no
//! proc macro): `SinrParams` round-trips through its `(α, β, N, ε)`
//! tuple conversions, so deserialization re-validates the parameter
//! domains (`α > 2`, `β ≥ 1`, `N ≥ 0`, `ε > 0`).

use serde::{Deserialize, Error, Serialize, Value};

use crate::SinrParams;

impl Serialize for SinrParams {
    fn to_value(&self) -> Value {
        <(f64, f64, f64, f64)>::from(*self).to_value()
    }
}

impl Deserialize for SinrParams {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let quad = <(f64, f64, f64, f64)>::from_value(value)?;
        SinrParams::try_from(quad).map_err(Error::custom)
    }
}
