//! The channel model: who attenuates a transmission, and by how much.
//!
//! Every gain the physical layer computes goes through a
//! [`ChannelModel`]. The paper's clean geometric SINR model is the
//! [`ChannelModel::Geometric`] member — a pure distance power law,
//! delegating to [`SinrParams::path_gain`] so existing outputs stay
//! bit-identical. [`ChannelModel::Shadowed`] layers a deterministic
//! per-link log-normal fade (truncated at `±clamp_db`) on top of the
//! power law, the "log-normal shadowing" extension of Mao–Anderson.
//!
//! # Determinism
//!
//! The fade of a link is a **closed-form function** of `(fade seed,
//! min(u, v), max(u, v))`: two rounds of the same SplitMix64
//! finalizer-based stream splitting the ensemble driver and the fault
//! planner use (`sinr_bench::ensemble::stream_seed`, pinned against the
//! same golden value below), feeding one Box–Muller normal draw. No
//! sequential RNG state exists, so
//!
//! - adding or removing links never shifts any other link's fade,
//! - every engine backend and thread count computes the identical fade
//!   bit-for-bit, and
//! - the fade is symmetric (`fade(u, v) = fade(v, u)`): a link and its
//!   dual see the same shadowing, as common obstacles would cause.
//!
//! # Certification
//!
//! Truncating the fade at `±clamp_db` gives the **global gain range**
//! `[fade_lo, fade_hi]` that [`gain_bounds`](ChannelModel::gain_bounds)
//! exposes; the interference field's far-field certificates multiply
//! their distance-only bounds by `fade_hi`, widening only the
//! certificate — never an exact fallback value (DESIGN.md §15).

use sinr_geom::NodeId;

use crate::{PhyError, Result, SinrParams};

/// SplitMix64 finalizer-based stream splitting — the exact mixer
/// `sinr_bench::ensemble::stream_seed` and `sinr_sim::faults` use,
/// duplicated here (phy sits below both in the dependency order) and
/// pinned against the same golden value so the three can never drift.
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a mixed 64-bit word to a uniform f64 in `[0, 1)` (top 53 bits).
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Domain-separation tag: the per-pair fade stream can never collide
/// with the fault planner's or the ensemble driver's streams.
const TAG_FADE: u64 = 0x5AD0_0001;

/// Truncated log-normal shadowing: per-link fades drawn from
/// hierarchically split SplitMix64 streams.
///
/// `fade(u, v) = 10^{clamp(σ·z(u,v), ±clamp_db) / 10}` where `z(u, v)`
/// is a standard normal computed in closed form from `(seed, u, v)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Shadowing {
    /// Root of the per-pair fade streams.
    pub seed: u64,
    /// Shadowing standard deviation in dB (typically 3–8 dB).
    pub sigma_db: f64,
    /// Truncation of the fade magnitude in dB. Finite truncation is
    /// what gives the certified field a finite per-link gain range.
    pub clamp_db: f64,
}

impl Shadowing {
    /// A validated shadowing model with the conventional `±3σ`
    /// truncation (covers 99.7% of the untruncated mass).
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidParameter`] unless `σ > 0` (finite).
    pub fn new(seed: u64, sigma_db: f64) -> Result<Self> {
        Self::with_clamp(seed, sigma_db, 3.0 * sigma_db)
    }

    /// A validated shadowing model with an explicit truncation depth.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidParameter`] unless `σ > 0` and
    /// `clamp_db ≥ σ`, all finite.
    pub fn with_clamp(seed: u64, sigma_db: f64, clamp_db: f64) -> Result<Self> {
        if !(sigma_db.is_finite() && sigma_db > 0.0) {
            return Err(PhyError::InvalidParameter {
                name: "sigma_db",
                reason: "shadowing deviation must be finite and positive",
            });
        }
        if !(clamp_db.is_finite() && clamp_db >= sigma_db) {
            return Err(PhyError::InvalidParameter {
                name: "clamp_db",
                reason: "fade truncation must be finite and at least sigma_db",
            });
        }
        Ok(Shadowing {
            seed,
            sigma_db,
            clamp_db,
        })
    }

    /// The fade multiplier of the unordered pair `{u, v}`.
    pub fn fade(&self, u: NodeId, v: NodeId) -> f64 {
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        let pair = stream_seed(stream_seed(self.seed ^ TAG_FADE, a as u64), b as u64);
        // Box–Muller from two split words; `max` keeps `ln` finite so
        // the product below can never be `inf · 0 = NaN`.
        let u1 = unit_f64(stream_seed(pair, 0)).max(f64::MIN_POSITIVE);
        let u2 = unit_f64(stream_seed(pair, 1));
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let fade_db = (self.sigma_db * z).clamp(-self.clamp_db, self.clamp_db);
        10f64.powf(fade_db / 10.0)
    }

    /// The global fade range `[10^{-clamp/10}, 10^{clamp/10}]` every
    /// per-pair fade lies in (the truncation made it finite).
    pub fn fade_bounds(&self) -> (f64, f64) {
        (
            10f64.powf(-self.clamp_db / 10.0),
            10f64.powf(self.clamp_db / 10.0),
        )
    }
}

/// The channel model every gain computation routes through.
///
/// An enum, not a trait object: the determinism contract (DESIGN.md §9)
/// forbids dynamic dispatch whose vtable order could vary, and the hot
/// loops want the `Geometric` branch to compile down to exactly the
/// pre-API code.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum ChannelModel {
    /// The paper's clean model: gain is the pure distance power law
    /// `d^{-α}` ([`SinrParams::path_gain`]). All legacy entry points
    /// use this member; its outputs are bit-identical to theirs.
    #[default]
    Geometric,
    /// Power law times a deterministic per-link log-normal fade.
    Shadowed(Shadowing),
}

impl ChannelModel {
    /// A shadowed model with the `±3σ` default truncation.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidParameter`] for a non-positive `σ`.
    pub fn shadowed(seed: u64, sigma_db: f64) -> Result<Self> {
        Ok(ChannelModel::Shadowed(Shadowing::new(seed, sigma_db)?))
    }

    /// Whether this is the clean geometric model (the branch the hot
    /// paths use to keep legacy expressions verbatim).
    #[inline]
    pub fn is_geometric(&self) -> bool {
        matches!(self, ChannelModel::Geometric)
    }

    /// The fade multiplier of the unordered pair `{u, v}` (1 under
    /// [`Geometric`](ChannelModel::Geometric)).
    #[inline]
    pub fn fade(&self, u: NodeId, v: NodeId) -> f64 {
        match self {
            ChannelModel::Geometric => 1.0,
            ChannelModel::Shadowed(s) => s.fade(u, v),
        }
    }

    /// The global fade range `[lo, hi]` containing every per-pair fade.
    #[inline]
    pub fn fade_bounds(&self) -> (f64, f64) {
        match self {
            ChannelModel::Geometric => (1.0, 1.0),
            ChannelModel::Shadowed(s) => s.fade_bounds(),
        }
    }

    /// The gain of the link `u → v` over distance `d`:
    /// `path_gain(d) · fade(u, v)`.
    ///
    /// Under `Geometric` this **is** `params.path_gain(d)` — same
    /// expression, same bits.
    #[inline]
    pub fn gain(&self, params: &SinrParams, d: f64, u: NodeId, v: NodeId) -> f64 {
        match self {
            ChannelModel::Geometric => params.path_gain(d),
            ChannelModel::Shadowed(s) => params.path_gain(d) * s.fade(u, v),
        }
    }

    /// The range `[lo, hi]` containing the gain of **any** link whose
    /// distance lies in `[d_lo, d_hi]` — the certified-field interface:
    /// far-field bounds consume `hi`, never a per-link value.
    pub fn gain_bounds(&self, params: &SinrParams, d_lo: f64, d_hi: f64) -> (f64, f64) {
        let (f_lo, f_hi) = self.fade_bounds();
        (params.path_gain(d_hi) * f_lo, params.path_gain(d_lo) * f_hi)
    }

    /// The minimum power for a link of length `len` under the
    /// worst-case fade: [`SinrParams::min_power_for_length`] divided by
    /// the deepest fade, so the §5 noise-factor requirement holds for
    /// every realization. Bit-identical to the params method under
    /// `Geometric`.
    pub fn min_power_for_length(&self, params: &SinrParams, len: f64) -> f64 {
        match self {
            ChannelModel::Geometric => params.min_power_for_length(len),
            ChannelModel::Shadowed(s) => params.min_power_for_length(len) / s.fade_bounds().0,
        }
    }

    /// The exact noise floor of the link `u → v` of length `len`:
    /// `βN / gain(u, v)`. Bit-identical to
    /// [`SinrParams::noise_floor_power`] under `Geometric`.
    pub fn noise_floor_power(&self, params: &SinrParams, len: f64, u: NodeId, v: NodeId) -> f64 {
        match self {
            ChannelModel::Geometric => params.noise_floor_power(len),
            ChannelModel::Shadowed(s) => params.noise_floor_power(len) / s.fade(u, v),
        }
    }

    /// Short label for tables and CLI reports.
    pub fn label(&self) -> String {
        match self {
            ChannelModel::Geometric => "geometric".into(),
            ChannelModel::Shadowed(s) => format!("shadowed σ={}dB", s.sigma_db),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The golden pin shared with `sinr_bench::ensemble::stream_seed`
    /// and `sinr_sim::faults::stream_seed`.
    #[test]
    fn stream_seed_matches_the_ensemble_golden_value() {
        assert_eq!(stream_seed(0, 0), 0xe220_a839_7b1d_cdaf);
        assert_ne!(stream_seed(0, 1), stream_seed(0, 2));
        assert_ne!(stream_seed(1, 0), stream_seed(2, 0));
    }

    #[test]
    fn fade_is_pure_symmetric_and_bounded() {
        let s = Shadowing::new(7, 6.0).unwrap();
        let (lo, hi) = s.fade_bounds();
        assert!(lo < 1.0 && hi > 1.0);
        for u in 0..40usize {
            for v in (u + 1)..40usize {
                let f = s.fade(u, v);
                assert_eq!(f.to_bits(), s.fade(u, v).to_bits(), "pure");
                assert_eq!(f.to_bits(), s.fade(v, u).to_bits(), "symmetric");
                assert!(f >= lo && f <= hi, "fade {f} outside [{lo}, {hi}]");
            }
        }
    }

    /// Closed-form draws: the fade of a pair is independent of every
    /// other pair, so growing the link set can never shift a draw.
    #[test]
    fn fades_vary_across_pairs_and_seeds() {
        let a = Shadowing::new(1, 6.0).unwrap();
        let b = Shadowing::new(2, 6.0).unwrap();
        assert_ne!(a.fade(0, 1).to_bits(), b.fade(0, 1).to_bits());
        let fades: Vec<u64> = (1..30).map(|v| a.fade(0, v).to_bits()).collect();
        let mut uniq = fades.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 25, "fades should almost never collide");
    }

    #[test]
    fn geometric_member_is_bit_identical_to_params() {
        let p = SinrParams::default();
        let m = ChannelModel::Geometric;
        for d in [0.5, 1.0, 3.7, 128.0] {
            assert_eq!(m.gain(&p, d, 0, 1).to_bits(), p.path_gain(d).to_bits());
            assert_eq!(
                m.min_power_for_length(&p, d).to_bits(),
                p.min_power_for_length(d).to_bits()
            );
            assert_eq!(
                m.noise_floor_power(&p, d, 0, 1).to_bits(),
                p.noise_floor_power(d).to_bits()
            );
            assert_eq!(m.fade(0, 1), 1.0);
            assert_eq!(m.fade_bounds(), (1.0, 1.0));
        }
        assert!(m.is_geometric());
        assert!(!ChannelModel::shadowed(0, 3.0).unwrap().is_geometric());
    }

    #[test]
    fn gain_bounds_contain_every_gain_in_the_distance_range() {
        let p = SinrParams::default();
        for model in [
            ChannelModel::Geometric,
            ChannelModel::shadowed(3, 6.0).unwrap(),
        ] {
            let (d_lo, d_hi) = (2.0, 9.0);
            let (g_lo, g_hi) = model.gain_bounds(&p, d_lo, d_hi);
            for i in 0..50usize {
                let d = d_lo + (d_hi - d_lo) * (i as f64) / 49.0;
                for (u, v) in [(0, 1), (5, 17), (30, 2)] {
                    let g = model.gain(&p, d, u, v);
                    assert!(
                        g >= g_lo && g <= g_hi,
                        "{model:?}: gain {g} ∉ [{g_lo}, {g_hi}]"
                    );
                }
            }
        }
    }

    #[test]
    fn shadowed_min_power_clears_the_deepest_fade() {
        let p = SinrParams::default();
        let m = ChannelModel::shadowed(9, 6.0).unwrap();
        for len in [1.0, 4.0, 32.0] {
            let power = m.min_power_for_length(&p, len);
            // Even at the deepest fade the noise factor stays ≤ 2β:
            // P · g ≥ 2βN for every pair.
            for (u, v) in [(0, 1), (7, 8), (100, 3)] {
                assert!(power * m.gain(&p, len, u, v) >= 2.0 * p.beta() * p.noise() * 0.999_999);
            }
        }
    }

    #[test]
    fn validation_rejects_bad_shadowing() {
        assert!(Shadowing::new(0, 0.0).is_err());
        assert!(Shadowing::new(0, -1.0).is_err());
        assert!(Shadowing::new(0, f64::NAN).is_err());
        assert!(Shadowing::with_clamp(0, 6.0, 3.0).is_err());
        assert!(ChannelModel::shadowed(0, 3.0).is_ok());
    }

    #[test]
    fn labels() {
        assert_eq!(ChannelModel::Geometric.label(), "geometric");
        assert!(ChannelModel::shadowed(0, 3.0)
            .unwrap()
            .label()
            .contains("3"));
        assert_eq!(ChannelModel::default(), ChannelModel::Geometric);
    }
}
