//! The spatially-indexed interference field.
//!
//! Every per-slot decode in the simulator and every feasibility probe
//! sums affectance over *all* transmitters, which makes a slot cost
//! `O(n²)`. But the model only ever *consumes* those sums through
//! thresholded decisions — `SINR ≥ β` (decoding, Eqn 1) and
//! `a_S(ℓ) ≤ τ` (admission, §5/§8) — and the paper's thresholded
//! affectance is exactly the observation that far-field terms cannot
//! flip such a decision once the near field has been accounted for.
//!
//! [`InterferenceField`] exploits that: a slot's transmitters are
//! bucketed into a [`WeightedCellGrid`] keyed by cell, with per-cell
//! aggregate transmit power. A query enumerates cells in expanding
//! Chebyshev rings around the receiver, accumulating the *exact* terms
//! of the visited senders, while the unvisited remainder is bounded by
//! `remaining_power × gain(ring · cell)` — a certified far-field bound,
//! since every unvisited sender provably lies beyond that distance.
//! The decision is accepted only when it holds on **both ends** of the
//! certified interval (with a guard factor that dominates all float
//! rounding, including summation-order error); otherwise the query
//! falls back to the naive computation, term for term in the naive
//! order.
//!
//! The consequence is the determinism contract of DESIGN.md §7: every
//! decision the field returns — and every `f64` it reports, because
//! reported values are always computed by the canonical naive-order
//! sum — is **bit-identical** to the `O(n)`-per-query naive path. The
//! speedup comes purely from the (overwhelmingly common) queries whose
//! decisions certify from a small near field.

use std::time::{Duration, Instant};

use sinr_geom::{Instance, NodeId, Point, WeightedCellGrid};
use sinr_links::Link;

use crate::affectance::AffectanceCalc;
use crate::{ChannelModel, Result, SinrParams};

/// Relative guard factor applied to every certified bound.
///
/// It must dominate the worst-case relative float error between the
/// field's ring-ordered accumulation and the naive-order sum: for `n ≤
/// 2²⁰` positive terms that error is below `n · 2⁻⁵² < 3·10⁻¹⁰`, so
/// `10⁻⁷` leaves three orders of magnitude of headroom while only
/// sending decisions within `~10⁻⁷·β` of the threshold to the exact
/// fallback.
const GUARD: f64 = 1e-7;

/// Cushion on the decode-radius derivation (see
/// [`InterferenceField::decode_radius`]).
const RADIUS_CUSHION: f64 = 1e-9;

/// Below this many transmitters the naive loop is cheaper than any
/// indexing, so queries skip straight to it.
const SMALL_SLOT: usize = 8;

/// The grid never uses cells smaller than `span / MAX_CELLS_PER_AXIS`,
/// bounding ring scans by a constant number of cell probes.
const MAX_CELLS_PER_AXIS: f64 = 64.0;

/// The exact decode rule of the simulator, shared by the naive engine
/// backend and the field's fallback path: the best-SINR transmitter at
/// listener `v`, provided its SINR reaches `β`. Returns `(sender,
/// sender power, sinr)`.
///
/// This is the *reference semantics*: one implementation, used by both
/// backends, so "bit-identical to the naive path" is equality with this
/// function by construction.
pub fn decode_best_exact(
    params: &SinrParams,
    instance: &Instance,
    v: NodeId,
    senders: &[(NodeId, f64)],
) -> Option<(NodeId, f64, f64)> {
    decode_best_exact_with_model(params, ChannelModel::Geometric, instance, v, senders)
}

/// [`decode_best_exact`] under an arbitrary [`ChannelModel`] — the
/// reference decode semantics with every gain routed through the model.
/// With [`ChannelModel::Geometric`] this **is** `decode_best_exact`,
/// bit for bit.
pub fn decode_best_exact_with_model(
    params: &SinrParams,
    model: ChannelModel,
    instance: &Instance,
    v: NodeId,
    senders: &[(NodeId, f64)],
) -> Option<(NodeId, f64, f64)> {
    let calc = AffectanceCalc::with_model(params, instance, model);
    let mut best: Option<(NodeId, f64, f64)> = None;
    for &(u, pu) in senders {
        debug_assert_ne!(u, v, "listeners never appear among transmitters");
        let sinr = calc.sinr(Link::new(u, v), pu, senders);
        if sinr >= params.beta() && best.map_or(true, |(_, _, bs)| sinr > bs) {
            best = Some((u, pu, sinr));
        }
    }
    best
}

/// How decode queries were settled — always-on counters a scratch
/// accumulates across queries (integer bumps, too cheap to gate).
///
/// The invariant `queries == small_exact + certified + fallbacks`
/// classifies every query exactly once:
///
/// - `small_exact` — skipped indexing entirely (≤ [`SMALL_SLOT`]
///   senders, or no finite decode radius);
/// - `certified` — settled by the certified near field (including the
///   canonical recompute of the one certified winner);
/// - `fallbacks` — threshold-grazing (or guard-violating) queries that
///   re-ran the full naive sum.
///
/// `rings` counts ring iterations of the far-field accumulation, the
/// size driver of the `far-field-cert` profiling phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Decode queries answered (empty fields excluded).
    pub queries: u64,
    /// Queries that went straight to the exact naive loop.
    pub small_exact: u64,
    /// Queries settled by the certified near field.
    pub certified: u64,
    /// Queries that fell back to the full naive computation.
    pub fallbacks: u64,
    /// Chebyshev-ring iterations executed across all queries.
    pub rings: u64,
}

impl QueryStats {
    /// Folds another scratch's counters in (worker merge).
    pub fn merge(&mut self, other: &QueryStats) {
        self.queries += other.queries;
        self.small_exact += other.small_exact;
        self.certified += other.certified;
        self.fallbacks += other.fallbacks;
        self.rings += other.rings;
    }
}

/// Opt-in wall-clock per phase of the decode path (see the profiling
/// taxonomy in DESIGN.md §12). All zero unless
/// [`FieldScratch::enable_timing`] was called — the `Instant` pairs are
/// only worth paying for when a profiling registry will consume them.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Candidate scans (`near-field` phase).
    pub near_field: Duration,
    /// Ring accumulation + certification (`far-field-cert` phase).
    pub far_field_cert: Duration,
    /// Exact naive sums: fallbacks, small-slot queries, and canonical
    /// winner recomputes (`fallback` phase).
    pub fallback: Duration,
}

impl PhaseTimes {
    /// Folds another scratch's timings in (worker merge).
    pub fn merge(&mut self, other: &PhaseTimes) {
        self.near_field += other.near_field;
        self.far_field_cert += other.far_field_cert;
        self.fallback += other.fallback;
    }
}

/// Reusable per-query scratch space, so a caller resolving many
/// receivers against one field (the engine resolves every listener of a
/// slot) allocates nothing per receiver.
///
/// Candidates are stored as parallel flat columns (structure-of-arrays)
/// so the certification loop walks contiguous `f64`/state runs. The
/// scratch doubles as the decode path's instrumentation carrier:
/// always-on [`QueryStats`] counters plus opt-in [`PhaseTimes`], both
/// drained by the engine (its pool workers own one scratch each and
/// return the accumulated values with their outcomes).
#[derive(Debug, Default)]
pub struct FieldScratch {
    cand_ids: Vec<NodeId>,
    cand_powers: Vec<f64>,
    cand_signals: Vec<f64>,
    cand_states: Vec<CandState>,
    /// Decision counters, accumulated until the owner takes them.
    pub stats: QueryStats,
    /// Phase wall-clock, accumulated while timing is enabled.
    pub times: PhaseTimes,
    timing: bool,
    skip_canonical_sinr: bool,
}

impl FieldScratch {
    /// Turns per-phase `Instant` timing on or off (off by default).
    pub fn enable_timing(&mut self, on: bool) {
        self.timing = on;
    }

    /// Opts queries through this scratch out of the canonical
    /// winner-SINR recompute (off by default — recompute runs).
    ///
    /// [`decode_best_with`](InterferenceField::decode_best_with)
    /// normally re-derives the certified winner's SINR with the exact
    /// naive-order sum — an `O(senders)` pass per decode whose only
    /// products are the canonically-reportable f64 and a defensive
    /// re-check of the certificate. Callers that never read the
    /// reported SINR (the engine, when the driving protocol declares
    /// `MEASURES_SINR = false`) can skip that pass: the decode
    /// *decision* and winner are unchanged — they come from the
    /// certificate, whose guard analysis is conservative — and the
    /// returned SINR is `NaN`. Fallback and small-slot queries still
    /// resolve exactly (their winner selection needs the exact sums);
    /// only the reported value is then due to be discarded by the
    /// caller.
    pub fn skip_canonical_sinr(&mut self, skip: bool) {
        self.skip_canonical_sinr = skip;
    }

    #[inline]
    fn clock(&self) -> Option<Instant> {
        if self.timing {
            Some(Instant::now())
        } else {
            None
        }
    }

    #[inline]
    fn lap(t0: Option<Instant>, into: &mut Duration) {
        if let Some(t0) = t0 {
            *into += t0.elapsed();
        }
    }

    /// Runs `f`, attributing its wall-clock to the `fallback` phase
    /// (exact naive sums) when timing is enabled. The engine routes the
    /// canonical per-reception affectance recompute through this: it is
    /// exactly such a sum, but lives outside the field's decode path.
    pub fn time_fallback<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t0 = self.clock();
        let out = f();
        Self::lap(t0, &mut self.times.fallback);
        out
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CandState {
    Undecided,
    No,
    Yes,
}

/// A slot's transmitter set, spatially indexed for certified
/// thresholded queries.
///
/// Build one per slot from the active `(sender, power)` set, then
/// answer decode and affectance-threshold queries. All decisions and
/// all reported values are bit-identical to the naive all-pairs path
/// (see module docs).
///
/// [`add_sender`](Self::add_sender) and
/// [`remove_sender`](Self::remove_sender) keep the incremental API for
/// small edits, at `O(senders + cells)` per call (the flat cell index
/// re-scatters). For the add-probe-rollback inner loop of slot packing use
/// [`feasibility::SlotAuditor`](crate::feasibility::SlotAuditor), which
/// is built for exactly that access pattern.
#[derive(Debug)]
pub struct InterferenceField<'a> {
    params: &'a SinrParams,
    instance: &'a Instance,
    /// The channel model every gain — near-field term, far-field
    /// certificate, and exact fallback — routes through. The far-field
    /// bounds consume the model's `gain_bounds`: a truncated fade only
    /// ever *widens* the certificate by `fade_hi`, never an exact value.
    model: ChannelModel,
    /// Insertion-ordered `(sender, power)` pairs — the canonical naive
    /// summation order for exact fallbacks.
    senders: Vec<(NodeId, f64)>,
    grid: WeightedCellGrid,
    max_power: f64,
}

/// The reusable allocations of a field: the canonical sender list and
/// the weighted cell grid with all its flat member/index arrays.
///
/// [`InterferenceField::build_with`] consumes a set of buffers and
/// refills them in place; [`InterferenceField::into_buffers`] recovers
/// them once the slot is resolved. Cycling one `FieldBuffers` through
/// that pair keeps the per-slot field construction allocation-free at
/// steady state (capacities only ever grow to the high-water mark).
#[derive(Debug)]
pub struct FieldBuffers {
    senders: Vec<(NodeId, f64)>,
    grid: WeightedCellGrid,
}

impl Default for FieldBuffers {
    fn default() -> Self {
        FieldBuffers {
            senders: Vec::new(),
            // Placeholder cell size; every build resets it to the
            // slot's decode-radius-derived cell.
            grid: WeightedCellGrid::new(1.0),
        }
    }
}

impl<'a> InterferenceField<'a> {
    /// Builds a field over one slot's transmitter set.
    ///
    /// `senders` order is preserved and used as the canonical summation
    /// order, so build it the way the naive path would (ascending node
    /// id in the engine, link-set order in feasibility checks). Node
    /// ids must be distinct — a node has one radio, and a duplicate id
    /// would break the bit-parity contract (the naive reference skips
    /// *every* entry of the decoded sender's id, while the field
    /// subtracts only one signal term).
    pub fn build(
        params: &'a SinrParams,
        instance: &'a Instance,
        senders: &[(NodeId, f64)],
    ) -> Self {
        Self::build_with(params, instance, senders, FieldBuffers::default())
    }

    /// [`build`](Self::build) recycling a previous field's allocations;
    /// see [`FieldBuffers`]. Bit-identical to a fresh build.
    pub fn build_with(
        params: &'a SinrParams,
        instance: &'a Instance,
        senders: &[(NodeId, f64)],
        buffers: FieldBuffers,
    ) -> Self {
        Self::build_with_model(params, ChannelModel::Geometric, instance, senders, buffers)
    }

    /// [`build_with`](Self::build_with) under an arbitrary
    /// [`ChannelModel`]. With [`ChannelModel::Geometric`] this is
    /// exactly `build_with` (the legacy constructors delegate here).
    pub fn build_with_model(
        params: &'a SinrParams,
        model: ChannelModel,
        instance: &'a Instance,
        senders: &[(NodeId, f64)],
        buffers: FieldBuffers,
    ) -> Self {
        debug_assert!(
            senders
                .iter()
                .map(|&(u, _)| u)
                .collect::<std::collections::HashSet<_>>()
                .len()
                == senders.len(),
            "duplicate sender id in transmitter set"
        );
        // Length scale for cell sizing: the instance diameter `Δ`,
        // cached at construction — O(1), and it bounds every
        // listener↔sender distance, so ring counts stay
        // O(MAX_CELLS_PER_AXIS) regardless of where a query lands.
        let span = instance.delta().max(1.0);
        let max_power = senders.iter().fold(0.0f64, |m, &(_, p)| m.max(p));
        let radius = Self::decode_radius_for(params, &model, max_power);
        let cell = if radius.is_finite() && radius > 0.0 {
            radius.clamp(span / MAX_CELLS_PER_AXIS, span)
        } else {
            span
        };
        let FieldBuffers {
            senders: mut sender_buf,
            mut grid,
        } = buffers;
        sender_buf.clear();
        sender_buf.extend_from_slice(senders);
        grid.reset(cell);
        grid.rebuild(
            sender_buf
                .iter()
                .map(|&(u, p)| (u, instance.position(u), p)),
        );
        InterferenceField {
            params,
            instance,
            model,
            senders: sender_buf,
            grid,
            max_power,
        }
    }

    /// The channel model this field certifies under.
    #[inline]
    pub fn model(&self) -> ChannelModel {
        self.model
    }

    /// Dismantles the field, recovering its allocations for the next
    /// [`build_with`](Self::build_with).
    pub fn into_buffers(self) -> FieldBuffers {
        FieldBuffers {
            senders: self.senders,
            grid: self.grid,
        }
    }

    /// The slot's transmitter set, in canonical order.
    #[inline]
    pub fn senders(&self) -> &[(NodeId, f64)] {
        &self.senders
    }

    /// Number of transmitters in the field.
    #[inline]
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Whether the field holds no transmitters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Appends a transmitter (it becomes last in the canonical order).
    /// `u` must not already be transmitting (one radio per node; see
    /// [`build`](Self::build) on why duplicates are rejected).
    /// `O(senders + cells)` — the flat cell index re-scatters; batch
    /// construction belongs in [`build_with`](Self::build_with).
    pub fn add_sender(&mut self, u: NodeId, power: f64) {
        debug_assert!(
            self.senders.iter().all(|&(w, _)| w != u),
            "node {u} is already transmitting in this field"
        );
        self.senders.push((u, power));
        self.grid.insert(u, self.instance.position(u), power);
        self.max_power = self.max_power.max(power);
    }

    /// Removes the most recently added transmission of `u`; returns
    /// whether one existed.
    ///
    /// This is a rollback path, not an inner-loop primitive: it rescans
    /// the sender list for the new power maximum and re-aggregates the
    /// grid totals (no float subtraction), `O(senders + cells)`.
    pub fn remove_sender(&mut self, u: NodeId) -> bool {
        let Some(pos) = self.senders.iter().rposition(|&(w, _)| w == u) else {
            return false;
        };
        self.senders.remove(pos);
        self.grid.remove(u, self.instance.position(u));
        // Re-derive the maximum instead of trusting subtraction.
        self.max_power = self.senders.iter().fold(0.0f64, |m, &(_, p)| m.max(p));
        true
    }

    /// The radius beyond which a transmitter with power `power` cannot
    /// be decoded: `SINR ≤ S/N`, so `S/N < β ⇒ no decode`, which at
    /// distance `d` reads `d > (P/(βN))^{1/α}`. The cushion absorbs the
    /// handful of float roundings between the real-arithmetic bound and
    /// the engine's computed `S/N`. Infinite when `N = 0`.
    ///
    /// Under a fading model the best realizable gain at distance `d` is
    /// `path_gain(d) · fade_hi` ([`ChannelModel::gain_bounds`]), so the
    /// cutoff uses the effective power `P · fade_hi` — a wider radius,
    /// never a narrower one.
    fn decode_radius_for(params: &SinrParams, model: &ChannelModel, power: f64) -> f64 {
        let power = match model {
            ChannelModel::Geometric => power,
            ChannelModel::Shadowed(s) => power * s.fade_bounds().1,
        };
        if params.noise() > 0.0 && power > 0.0 {
            (power * (1.0 + RADIUS_CUSHION) / (params.beta() * params.noise()))
                .powf(1.0 / params.alpha())
        } else {
            f64::INFINITY
        }
    }

    /// The field's decode-cutoff radius `R(P_max) = (P_max/(βN))^{1/α}`
    /// (§7.1): no transmitter in this field can be decoded — and no
    /// single transmitter can contribute a decision-flipping
    /// interference term on a noise-margin link — from beyond this
    /// distance. Infinite when the model is noiseless. The incremental
    /// re-packer (`sinr-connectivity::repack`) uses it to reason about
    /// which surviving slot groupings a churn delta can possibly
    /// disturb.
    pub fn decode_radius(&self) -> f64 {
        Self::decode_radius_for(self.params, &self.model, self.max_power)
    }

    /// The model-aware exact decode over this field's senders, in
    /// canonical order — the fallback every certified path defers to.
    fn decode_exact(&self, v: NodeId) -> Option<(NodeId, f64, f64)> {
        decode_best_exact_with_model(self.params, self.model, self.instance, v, &self.senders)
    }

    /// Which transmitter, if any, listener `v` decodes — bit-identical
    /// to [`decode_best_exact`] over this field's senders.
    pub fn decode_best(&self, v: NodeId) -> Option<(NodeId, f64, f64)> {
        let mut scratch = FieldScratch::default();
        self.decode_best_with(v, &mut scratch)
    }

    /// [`decode_best`](Self::decode_best) with caller-provided scratch,
    /// allocation-free across repeated queries.
    pub fn decode_best_with(
        &self,
        v: NodeId,
        scratch: &mut FieldScratch,
    ) -> Option<(NodeId, f64, f64)> {
        if self.senders.is_empty() {
            return None;
        }
        scratch.stats.queries += 1;
        let radius = Self::decode_radius_for(self.params, &self.model, self.max_power);
        if self.senders.len() <= SMALL_SLOT || !radius.is_finite() {
            scratch.stats.small_exact += 1;
            let t0 = scratch.clock();
            let out = self.decode_exact(v);
            FieldScratch::lap(t0, &mut scratch.times.fallback);
            return out;
        }
        let noise = self.params.noise();
        let beta = self.params.beta();
        let pos_v = self.instance.position(v);

        // Candidate decodable senders. Everyone outside `radius` is
        // certified undecodable (SINR ≤ S/N < β); everyone inside is
        // tested with the engine's own float expression `S/N ≥ β`, so
        // the candidate set is exactly the set of senders the naive
        // loop could possibly accept.
        let t0 = scratch.clock();
        scratch.cand_ids.clear();
        scratch.cand_powers.clear();
        scratch.cand_signals.clear();
        scratch.cand_states.clear();
        {
            let FieldScratch {
                cand_ids,
                cand_powers,
                cand_signals,
                cand_states,
                ..
            } = scratch;
            self.grid
                .for_each_member_near(pos_v, radius, |u, _, power| {
                    let d = self.instance.distance(u, v);
                    let signal = match &self.model {
                        ChannelModel::Geometric => power * self.params.path_gain(d),
                        ChannelModel::Shadowed(s) => {
                            power * self.params.path_gain(d) * s.fade(u, v)
                        }
                    };
                    if signal / noise >= beta {
                        cand_ids.push(u);
                        cand_powers.push(power);
                        cand_signals.push(signal);
                        cand_states.push(CandState::Undecided);
                    }
                });
        }
        FieldScratch::lap(t0, &mut scratch.times.near_field);
        if scratch.cand_ids.is_empty() {
            scratch.stats.certified += 1;
            return None;
        }

        // Expanding-ring accumulation of the total received interference
        // at `v`, with a certified far-field bound for the remainder.
        let t0 = scratch.clock();
        let total_w = self.grid.total_weight();
        let cell = self.grid.cell_size();
        let occupied = self.grid.occupied_cells();
        let mut acc = 0.0f64; // Σ terms of visited senders (incl. candidates)
        let mut seen_w = 0.0f64;
        let mut cells_seen = 0usize;
        let mut undecided = scratch.cand_states.len();
        let max_ring = self.grid.max_ring_from(pos_v);
        let mut ring = 0i64;
        while ring <= max_ring {
            scratch.stats.rings += 1;
            cells_seen += self
                .grid
                .for_each_ring_cell(pos_v, ring, |cv| match &self.model {
                    ChannelModel::Geometric => {
                        let (xs, ys, ws) = (cv.xs(), cv.ys(), cv.ws());
                        for i in 0..ws.len() {
                            acc += ws[i]
                                * self
                                    .params
                                    .path_gain(pos_v.distance(Point::new(xs[i], ys[i])));
                            seen_w += ws[i];
                        }
                    }
                    ChannelModel::Shadowed(s) => {
                        let (ids, xs, ys, ws) = (cv.ids(), cv.xs(), cv.ys(), cv.ws());
                        for i in 0..ws.len() {
                            acc += ws[i]
                                * self
                                    .params
                                    .path_gain(pos_v.distance(Point::new(xs[i], ys[i])))
                                * s.fade(ids[i], v);
                            seen_w += ws[i];
                        }
                    }
                });
            let all_seen = cells_seen == occupied;
            // Every unvisited sender is beyond `ring · cell` (ring
            // geometry), so its term is below `weight · gain(ring·cell)`
            // — times the best realizable fade under a fading model
            // (per-link gain ranges: the certificate widens, exact
            // values never change).
            let far = if all_seen {
                0.0
            } else {
                let min_d = ring as f64 * cell;
                if min_d > 0.0 {
                    let base = ((total_w - seen_w).max(0.0) + GUARD * total_w)
                        * self.params.path_gain(min_d);
                    match &self.model {
                        ChannelModel::Geometric => base,
                        ChannelModel::Shadowed(s) => base * s.fade_bounds().1,
                    }
                } else {
                    f64::INFINITY
                }
            };
            if far.is_finite() {
                for i in 0..scratch.cand_states.len() {
                    if scratch.cand_states[i] != CandState::Undecided {
                        continue;
                    }
                    let s = scratch.cand_signals[i];
                    let base = acc - s;
                    let slack = GUARD * (acc + s);
                    let i_lo = (base - slack).max(0.0);
                    let i_hi = (base + slack + far).max(0.0);
                    if (s / (noise + i_lo)) * (1.0 + GUARD) < beta {
                        scratch.cand_states[i] = CandState::No;
                        undecided -= 1;
                    } else if (s / (noise + i_hi)) * (1.0 - GUARD) >= beta {
                        scratch.cand_states[i] = CandState::Yes;
                        undecided -= 1;
                    }
                }
            }
            if undecided == 0 || all_seen {
                break;
            }
            ring += 1;
        }
        FieldScratch::lap(t0, &mut scratch.times.far_field_cert);

        let mut yes_count = 0usize;
        let mut certified: Option<usize> = None;
        for (i, state) in scratch.cand_states.iter().enumerate() {
            if *state == CandState::Yes {
                yes_count += 1;
                certified = Some(i);
            }
        }
        if undecided > 0 || yes_count > 1 {
            // Threshold-grazing query: resolve it the naive way.
            scratch.stats.fallbacks += 1;
            let t0 = scratch.clock();
            let out = self.decode_exact(v);
            FieldScratch::lap(t0, &mut scratch.times.fallback);
            return out;
        }
        let Some(winner) = certified else {
            scratch.stats.certified += 1;
            return None; // every candidate certified undecodable
        };
        let (winner_u, winner_power) = (scratch.cand_ids[winner], scratch.cand_powers[winner]);
        if scratch.skip_canonical_sinr {
            // The caller declared the reported SINR unread: trust the
            // certificate (conservative by GUARD construction) and
            // skip the O(senders) canonical recompute.
            scratch.stats.certified += 1;
            return Some((winner_u, winner_power, f64::NAN));
        }
        // Report the canonical value: the naive-order sum for the one
        // certified winner (β ≥ 1 with N > 0 makes it unique).
        let t0 = scratch.clock();
        let calc = AffectanceCalc::with_model(self.params, self.instance, self.model);
        let sinr = calc.sinr(Link::new(winner_u, v), winner_power, &self.senders);
        FieldScratch::lap(t0, &mut scratch.times.fallback);
        if sinr >= beta {
            scratch.stats.certified += 1;
            Some((winner_u, winner_power, sinr))
        } else {
            // A certified decision contradicted by the exact value can
            // only mean the guard analysis was violated; stay correct.
            scratch.stats.fallbacks += 1;
            let t0 = scratch.clock();
            let out = self.decode_exact(v);
            FieldScratch::lap(t0, &mut scratch.times.fallback);
            out
        }
    }

    /// Certified decision `a_S(ℓ) ≤ threshold` for this field's sender
    /// set on `link`: `Some(decision)` when the near field plus the
    /// far-field bound settle it, `None` when the sum grazes the
    /// threshold (fall back to [`sum_on_exact`](Self::sum_on_exact)).
    ///
    /// A `Some` answer is bit-identical to comparing the naive
    /// [`AffectanceCalc::sum_on`] against `threshold`.
    ///
    /// # Errors
    ///
    /// Propagates the noise-floor error from the noise factor.
    pub fn sum_on_at_most(
        &self,
        link: Link,
        link_power: f64,
        threshold: f64,
    ) -> Result<Option<bool>> {
        let calc = AffectanceCalc::with_model(self.params, self.instance, self.model);
        if self.senders.len() <= SMALL_SLOT {
            return Ok(Some(
                calc.sum_on(&self.senders, link, link_power)? <= threshold,
            ));
        }
        let c = calc.noise_factor(link, link_power)?;
        let pos_v = self.instance.position(link.receiver);
        // Raw (unclipped) affectance of a sender at distance d is
        // `coeff · p · gain(d)`; clipping only lowers terms, so the raw
        // form upper-bounds the far field while enumerated terms use
        // the exact clipped expression. Under shadowing the interferer
        // fades are unknown until enumerated, so the certificate folds
        // the fade ceiling into the coefficient (widening only).
        let d_uv = link.length(self.instance);
        let coeff = match &self.model {
            ChannelModel::Geometric => c * d_uv.powf(self.params.alpha()) / link_power,
            ChannelModel::Shadowed(s) => {
                c * d_uv.powf(self.params.alpha()) * s.fade_bounds().1
                    / (link_power * s.fade(link.sender, link.receiver))
            }
        };

        let total_w = self.grid.total_weight();
        let cell = self.grid.cell_size();
        let occupied = self.grid.occupied_cells();
        let mut acc = 0.0f64; // exact clipped terms of visited senders
        let mut seen_w = 0.0f64;
        let mut cells_seen = 0usize;
        let max_ring = self.grid.max_ring_from(pos_v);
        let mut ring = 0i64;
        while ring <= max_ring {
            cells_seen += self.grid.for_each_ring_cell(pos_v, ring, |cv| {
                let (ids, ws) = (cv.ids(), cv.ws());
                for i in 0..ws.len() {
                    if ids[i] != link.sender {
                        acc += calc.thresholded_term(c, ids[i], ws[i], link, link_power);
                    }
                    seen_w += ws[i];
                }
            });
            let all_seen = cells_seen == occupied;
            let far = if all_seen {
                0.0
            } else {
                let min_d = ring as f64 * cell;
                if min_d > 0.0 {
                    coeff
                        * ((total_w - seen_w).max(0.0) + GUARD * total_w)
                        * self.params.path_gain(min_d)
                } else {
                    f64::INFINITY
                }
            };
            if far.is_finite() {
                let slack = GUARD * (acc + threshold.abs() + 1.0);
                if acc - slack > threshold {
                    return Ok(Some(false)); // already over, far adds only more
                }
                if (acc + slack + far) <= threshold {
                    return Ok(Some(true));
                }
            }
            if all_seen {
                break;
            }
            ring += 1;
        }
        Ok(None)
    }

    /// The decision `SINR(link) ≥ threshold` against this field's
    /// senders — bit-identical to comparing the canonical
    /// [`AffectanceCalc::sinr`] value against `threshold`.
    ///
    /// This is the hook the `latency`/`cleanup` replay loops in
    /// `sinr-connectivity` consume: they only ever *threshold* the
    /// SINR (delivery succeeded or not), so the certified near-field
    /// interval settles almost every query and the rare
    /// threshold-grazing one falls back to the exact naive-order sum.
    /// Callers must handle half-duplex (a transmitting receiver)
    /// themselves, exactly as with [`AffectanceCalc::sinr`].
    pub fn sinr_at_least(&self, link: Link, link_power: f64, threshold: f64) -> bool {
        if self.senders.len() <= SMALL_SLOT {
            return self.sinr_exact(link, link_power) >= threshold;
        }
        let noise = self.params.noise();
        let pos_v = self.instance.position(link.receiver);
        let signal = match &self.model {
            ChannelModel::Geometric => {
                link_power * self.params.path_gain(link.length(self.instance))
            }
            ChannelModel::Shadowed(s) => {
                link_power
                    * self.params.path_gain(link.length(self.instance))
                    * s.fade(link.sender, link.receiver)
            }
        };

        let total_w = self.grid.total_weight();
        let cell = self.grid.cell_size();
        let occupied = self.grid.occupied_cells();
        let mut acc = 0.0f64; // exact interference terms of visited senders
        let mut seen_w = 0.0f64;
        let mut cells_seen = 0usize;
        let max_ring = self.grid.max_ring_from(pos_v);
        let mut ring = 0i64;
        while ring <= max_ring {
            cells_seen += self
                .grid
                .for_each_ring_cell(pos_v, ring, |cv| match &self.model {
                    ChannelModel::Geometric => {
                        let (ids, xs, ys, ws) = (cv.ids(), cv.xs(), cv.ys(), cv.ws());
                        for i in 0..ws.len() {
                            if ids[i] != link.sender {
                                // An interferer co-located with the receiver
                                // drives `acc` to infinity; the certification
                                // below then never fires and the exact
                                // fallback reproduces the canonical 0-SINR.
                                acc += ws[i]
                                    * self
                                        .params
                                        .path_gain(pos_v.distance(Point::new(xs[i], ys[i])));
                            }
                            seen_w += ws[i];
                        }
                    }
                    ChannelModel::Shadowed(s) => {
                        let (ids, xs, ys, ws) = (cv.ids(), cv.xs(), cv.ys(), cv.ws());
                        for i in 0..ws.len() {
                            if ids[i] != link.sender {
                                acc += ws[i]
                                    * self
                                        .params
                                        .path_gain(pos_v.distance(Point::new(xs[i], ys[i])))
                                    * s.fade(ids[i], link.receiver);
                            }
                            seen_w += ws[i];
                        }
                    }
                });
            let all_seen = cells_seen == occupied;
            let far = if all_seen {
                0.0
            } else {
                let min_d = ring as f64 * cell;
                if min_d > 0.0 {
                    let base = ((total_w - seen_w).max(0.0) + GUARD * total_w)
                        * self.params.path_gain(min_d);
                    match &self.model {
                        ChannelModel::Geometric => base,
                        ChannelModel::Shadowed(s) => base * s.fade_bounds().1,
                    }
                } else {
                    f64::INFINITY
                }
            };
            if far.is_finite() && acc.is_finite() {
                let slack = GUARD * (acc + signal);
                let i_lo = (acc - slack).max(0.0);
                let i_hi = (acc + slack + far).max(0.0);
                if (signal / (noise + i_lo)) * (1.0 + GUARD) < threshold {
                    return false; // certified: even the optimistic end fails
                }
                if (signal / (noise + i_hi)) * (1.0 - GUARD) >= threshold {
                    return true; // certified: even the pessimistic end passes
                }
            }
            if all_seen {
                break;
            }
            ring += 1;
        }
        // Threshold-grazing (or degenerate) query: resolve exactly, in
        // the canonical naive order.
        self.sinr_exact(link, link_power) >= threshold
    }

    /// The exact total affectance of this field's senders on `link`, in
    /// canonical order — bit-identical to [`AffectanceCalc::sum_on`].
    ///
    /// # Errors
    ///
    /// Propagates the noise-floor error.
    pub fn sum_on_exact(&self, link: Link, link_power: f64) -> Result<f64> {
        AffectanceCalc::with_model(self.params, self.instance, self.model).sum_on(
            &self.senders,
            link,
            link_power,
        )
    }

    /// The exact SINR of `link` against this field's senders, in
    /// canonical order — bit-identical to [`AffectanceCalc::sinr`].
    pub fn sinr_exact(&self, link: Link, link_power: f64) -> f64 {
        AffectanceCalc::with_model(self.params, self.instance, self.model).sinr(
            link,
            link_power,
            &self.senders,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sinr_geom::gen;

    fn random_senders(inst: &Instance, frac: f64, power: f64, seed: u64) -> Vec<(NodeId, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for u in 0..inst.len() {
            if rng.gen_bool(frac) {
                out.push((u, power * (0.5 + rng.gen::<f64>())));
            }
        }
        out
    }

    /// The core parity property: `decode_best` equals the naive rule,
    /// bit for bit, on every listener of many random slots.
    #[test]
    fn decode_matches_naive_to_the_bit() {
        let params = SinrParams::default();
        let mut decodes = 0;
        for seed in 0..8u64 {
            let inst = gen::uniform_square(200, 1.5, seed).unwrap();
            // Power sized to the instance's typical nearest-neighbor
            // spacing, as the protocols do, so decodes actually occur.
            let nn_mean = (0..inst.len())
                .map(|v| {
                    (0..inst.len())
                        .filter(|&w| w != v)
                        .map(|w| inst.distance(w, v))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / inst.len() as f64;
            let power = params.min_power_for_length(1.5 * nn_mean) * 4.0;
            let senders = random_senders(&inst, 0.05, power, seed ^ 0xABCD);
            if senders.is_empty() {
                continue;
            }
            let field = InterferenceField::build(&params, &inst, &senders);
            let tx: std::collections::HashSet<NodeId> = senders.iter().map(|&(u, _)| u).collect();
            let mut scratch = FieldScratch::default();
            for v in 0..inst.len() {
                if tx.contains(&v) {
                    continue;
                }
                let naive = decode_best_exact(&params, &inst, v, &senders);
                let fast = field.decode_best_with(v, &mut scratch);
                match (naive, fast) {
                    (None, None) => {}
                    (Some((a, pa, sa)), Some((b, pb, sb))) => {
                        assert_eq!(a, b, "seed {seed} listener {v} decoded wrong sender");
                        assert_eq!(pa.to_bits(), pb.to_bits());
                        assert_eq!(
                            sa.to_bits(),
                            sb.to_bits(),
                            "seed {seed} listener {v}: sinr bits differ"
                        );
                        decodes += 1;
                    }
                    other => panic!("seed {seed} listener {v}: decisions differ: {other:?}"),
                }
            }
        }
        assert!(decodes > 0, "no decode ever happened across all seeds");
    }

    /// Heterogeneous powers (three orders of magnitude) still certify
    /// or fall back correctly.
    #[test]
    fn decode_parity_with_wild_powers() {
        let params = SinrParams::default();
        let inst = gen::clustered(6, 24, 1.5, 2.0, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut senders: Vec<(NodeId, f64)> = Vec::new();
        for u in 0..inst.len() {
            if rng.gen_bool(0.2) {
                senders.push((u, 10f64.powf(rng.gen_range(0.0..3.0))));
            }
        }
        let field = InterferenceField::build(&params, &inst, &senders);
        let tx: std::collections::HashSet<NodeId> = senders.iter().map(|&(u, _)| u).collect();
        for v in 0..inst.len() {
            if tx.contains(&v) {
                continue;
            }
            let naive = decode_best_exact(&params, &inst, v, &senders);
            let fast = field.decode_best(v);
            assert_eq!(
                naive.map(|(u, p, s)| (u, p.to_bits(), s.to_bits())),
                fast.map(|(u, p, s)| (u, p.to_bits(), s.to_bits())),
                "listener {v}"
            );
        }
    }

    /// Zero noise disables the decode-radius cutoff; the field must
    /// fall back and stay exact.
    #[test]
    fn zero_noise_falls_back_exactly() {
        let params = SinrParams::new(3.0, 2.0, 0.0, 0.1).unwrap();
        let inst = gen::uniform_square(60, 1.5, 1).unwrap();
        let senders = random_senders(&inst, 0.3, 10.0, 5);
        let field = InterferenceField::build(&params, &inst, &senders);
        let tx: std::collections::HashSet<NodeId> = senders.iter().map(|&(u, _)| u).collect();
        for v in 0..inst.len() {
            if tx.contains(&v) {
                continue;
            }
            assert_eq!(
                decode_best_exact(&params, &inst, v, &senders).map(|(u, p, s)| (
                    u,
                    p.to_bits(),
                    s.to_bits()
                )),
                field
                    .decode_best(v)
                    .map(|(u, p, s)| (u, p.to_bits(), s.to_bits())),
            );
        }
    }

    /// Incremental add/remove keeps the field equivalent to a fresh
    /// build over the same sender sequence.
    #[test]
    fn incremental_updates_match_rebuild() {
        let params = SinrParams::default();
        let inst = gen::uniform_square(120, 1.5, 7).unwrap();
        let power = params.min_power_for_length(2.0);
        let senders = random_senders(&inst, 0.15, power, 11);
        let mut field = InterferenceField::build(&params, &inst, &[]);
        for &(u, p) in &senders {
            field.add_sender(u, p);
        }
        // Drop the middle sender, as an incremental audit would.
        let dropped = senders[senders.len() / 2];
        assert!(field.remove_sender(dropped.0));
        let mut reduced = senders.clone();
        reduced.remove(senders.len() / 2);
        let fresh = InterferenceField::build(&params, &inst, &reduced);
        assert_eq!(field.senders(), fresh.senders());
        let tx: std::collections::HashSet<NodeId> = reduced.iter().map(|&(u, _)| u).collect();
        for v in 0..inst.len() {
            if tx.contains(&v) {
                continue;
            }
            assert_eq!(
                field
                    .decode_best(v)
                    .map(|(u, p, s)| (u, p.to_bits(), s.to_bits())),
                fresh
                    .decode_best(v)
                    .map(|(u, p, s)| (u, p.to_bits(), s.to_bits())),
                "listener {v}"
            );
        }
        assert!(
            !field.remove_sender(dropped.0)
                || senders.iter().filter(|s| s.0 == dropped.0).count() > 1
        );
    }

    /// Nearest-neighbor link into each non-transmitting receiver, with
    /// a power that comfortably clears the noise floor for its length.
    fn probe_link(inst: &Instance, params: &SinrParams, v: NodeId) -> (Link, f64) {
        let w = (0..inst.len())
            .filter(|&w| w != v)
            .min_by(|&a, &b| {
                inst.distance(a, v)
                    .partial_cmp(&inst.distance(b, v))
                    .unwrap()
            })
            .unwrap();
        let link = Link::new(w, v);
        (link, params.min_power_for_length(link.length(inst)) * 4.0)
    }

    /// Certified affectance-threshold decisions agree with the exact
    /// sum whenever they claim certainty.
    #[test]
    fn sum_threshold_decisions_are_sound() {
        let params = SinrParams::default();
        let inst = gen::uniform_square(150, 1.5, 9).unwrap();
        let senders = random_senders(&inst, 0.2, params.min_power_for_length(4.0), 21);
        let field = InterferenceField::build(&params, &inst, &senders);
        let calc = AffectanceCalc::new(&params, &inst);
        let tx: std::collections::HashSet<NodeId> = senders.iter().map(|&(u, _)| u).collect();
        let mut checked = 0;
        for v in 0..inst.len() {
            if tx.contains(&v) {
                continue;
            }
            let (link, p) = probe_link(&inst, &params, v);
            if tx.contains(&link.sender) {
                continue;
            }
            for threshold in [0.25, 1.0, 4.0] {
                let exact = calc.sum_on(&senders, link, p).unwrap() <= threshold;
                if let Some(decision) = field.sum_on_at_most(link, p, threshold).unwrap() {
                    assert_eq!(decision, exact, "link {link:?} τ={threshold}");
                    checked += 1;
                }
            }
        }
        assert!(checked > 20, "too few certified decisions: {checked}");
    }

    /// `sinr_at_least` decisions equal the canonical `sinr ≥ thr`
    /// comparison on every listener, threshold and family — including
    /// the replay loops' exact threshold `β·(1 − 1e-12)`.
    #[test]
    fn sinr_threshold_decisions_match_naive() {
        let params = SinrParams::default();
        for seed in 0..4u64 {
            let inst = gen::uniform_square(180, 1.5, seed).unwrap();
            let senders = random_senders(&inst, 0.15, params.min_power_for_length(3.0), seed ^ 7);
            if senders.is_empty() {
                continue;
            }
            let field = InterferenceField::build(&params, &inst, &senders);
            let calc = AffectanceCalc::new(&params, &inst);
            let tx: std::collections::HashSet<NodeId> = senders.iter().map(|&(u, _)| u).collect();
            for v in 0..inst.len() {
                if tx.contains(&v) {
                    continue;
                }
                let (link, p) = probe_link(&inst, &params, v);
                let exact = calc.sinr(link, p, &senders);
                for thr in [
                    params.beta(),
                    params.beta() * (1.0 - 1e-12),
                    0.5,
                    exact, // the worst grazing case: threshold == value
                ] {
                    assert_eq!(
                        field.sinr_at_least(link, p, thr),
                        exact >= thr,
                        "seed {seed} listener {v} thr {thr}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_delegates_are_canonical() {
        let params = SinrParams::default();
        let inst = gen::uniform_square(80, 1.5, 2).unwrap();
        let senders = random_senders(&inst, 0.25, 40.0, 3);
        let field = InterferenceField::build(&params, &inst, &senders);
        let calc = AffectanceCalc::new(&params, &inst);
        let v = (0..inst.len())
            .find(|v| senders.iter().all(|s| s.0 != *v))
            .unwrap();
        let (link, p) = probe_link(&inst, &params, v);
        assert_eq!(
            field.sinr_exact(link, p).to_bits(),
            calc.sinr(link, p, &senders).to_bits()
        );
        assert_eq!(
            field.sum_on_exact(link, p).unwrap().to_bits(),
            calc.sum_on(&senders, link, p).unwrap().to_bits()
        );
    }

    #[test]
    fn empty_field_is_silent() {
        let params = SinrParams::default();
        let inst = gen::line(4).unwrap();
        let field = InterferenceField::build(&params, &inst, &[]);
        assert!(field.is_empty());
        assert_eq!(field.decode_best(0), None);
    }
}
