//! SINR model parameters.

use crate::{PhyError, Result};

/// The constants of the SINR model (Eqn 1 of the paper).
///
/// A transmission from `u` to `v` succeeds iff
///
/// ```text
/// (P_u / d(u,v)^α) / (N + Σ_w P_w / d(w,v)^α) ≥ β
/// ```
///
/// - `alpha` — path-loss exponent, `α > 2` (the analysis needs the
///   Riemann-zeta style sums to converge);
/// - `beta` — required SINR threshold; we require `β ≥ 1` so at most one
///   message is decodable per receiver per slot (the paper implicitly
///   assumes this for its acknowledgment protocol);
/// - `noise` — ambient noise `N ≥ 0`;
/// - `epsilon` — the clip constant of thresholded affectance (§5),
///   "some arbitrary fixed constant (say 0.1)".
///
/// # Example
///
/// ```
/// use sinr_phy::SinrParams;
///
/// let params = SinrParams::new(3.0, 2.0, 1.0, 0.1)?;
/// assert_eq!(params.alpha(), 3.0);
/// # Ok::<(), sinr_phy::PhyError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
// Serde support lives in `crate::serde_impls` (feature `serde`), via
// the `(α, β, N, ε)` tuple conversions below: deserialization
// re-validates the parameter domains.
pub struct SinrParams {
    alpha: f64,
    beta: f64,
    noise: f64,
    epsilon: f64,
}

impl From<SinrParams> for (f64, f64, f64, f64) {
    /// Extracts `(α, β, N, ε)`.
    fn from(p: SinrParams) -> Self {
        (p.alpha, p.beta, p.noise, p.epsilon)
    }
}

impl TryFrom<(f64, f64, f64, f64)> for SinrParams {
    type Error = PhyError;

    /// Validating conversion ([`SinrParams::new`]): deserialized
    /// parameters re-run domain validation.
    fn try_from((alpha, beta, noise, epsilon): (f64, f64, f64, f64)) -> Result<Self> {
        SinrParams::new(alpha, beta, noise, epsilon)
    }
}

impl SinrParams {
    /// Creates and validates a parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidParameter`] unless `α > 2`, `β ≥ 1`,
    /// `N ≥ 0` and `ε > 0`, all finite.
    pub fn new(alpha: f64, beta: f64, noise: f64, epsilon: f64) -> Result<Self> {
        if !(alpha.is_finite() && alpha > 2.0) {
            return Err(PhyError::InvalidParameter {
                name: "alpha",
                reason: "path-loss exponent must be finite and exceed 2",
            });
        }
        if !(beta.is_finite() && beta >= 1.0) {
            return Err(PhyError::InvalidParameter {
                name: "beta",
                reason: "SINR threshold must be finite and at least 1",
            });
        }
        if !(noise.is_finite() && noise >= 0.0) {
            return Err(PhyError::InvalidParameter {
                name: "noise",
                reason: "ambient noise must be finite and non-negative",
            });
        }
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(PhyError::InvalidParameter {
                name: "epsilon",
                reason: "affectance clip must be finite and positive",
            });
        }
        Ok(SinrParams {
            alpha,
            beta,
            noise,
            epsilon,
        })
    }

    /// Path-loss exponent `α`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// SINR threshold `β`.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Ambient noise `N`.
    #[inline]
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Affectance clip constant `ε`.
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Signal attenuation over distance `d`: `d^{-α}` (∞ at `d = 0`).
    #[inline]
    pub fn path_gain(&self, d: f64) -> f64 {
        d.powf(-self.alpha)
    }

    /// The minimum power that keeps the noise factor within the paper's
    /// requirement `c(u, v) ≤ 2β` for a link of length `len`:
    /// `P = 2βN·len^α` (§5/§6: "Setting the power to 2βN·2^{rα}
    /// suffices").
    ///
    /// With zero noise any positive power works; we return `len^α` so
    /// the value stays usable as a uniform-power default.
    pub fn min_power_for_length(&self, len: f64) -> f64 {
        let base = len.powf(self.alpha);
        if self.noise == 0.0 {
            base
        } else {
            2.0 * self.beta * self.noise * base
        }
    }

    /// The hard noise floor below which a link of length `len` cannot
    /// succeed even alone: `βN·len^α` (exclusive bound).
    pub fn noise_floor_power(&self, len: f64) -> f64 {
        self.beta * self.noise * len.powf(self.alpha)
    }
}

impl Default for SinrParams {
    /// The workspace defaults: `α = 3`, `β = 2`, `N = 1`, `ε = 0.1`.
    fn default() -> Self {
        SinrParams {
            alpha: 3.0,
            beta: 2.0,
            noise: 1.0,
            epsilon: 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let d = SinrParams::default();
        assert!(SinrParams::new(d.alpha(), d.beta(), d.noise(), d.epsilon()).is_ok());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(SinrParams::new(2.0, 2.0, 1.0, 0.1).is_err()); // α ≤ 2
        assert!(SinrParams::new(3.0, 0.5, 1.0, 0.1).is_err()); // β < 1
        assert!(SinrParams::new(3.0, 2.0, -1.0, 0.1).is_err()); // N < 0
        assert!(SinrParams::new(3.0, 2.0, 1.0, 0.0).is_err()); // ε ≤ 0
        assert!(SinrParams::new(f64::NAN, 2.0, 1.0, 0.1).is_err());
    }

    #[test]
    fn min_power_dominates_noise_floor() {
        let p = SinrParams::default();
        for len in [1.0, 2.0, 16.0, 100.0] {
            assert!(p.min_power_for_length(len) > p.noise_floor_power(len));
        }
    }

    #[test]
    fn zero_noise_min_power_positive() {
        let p = SinrParams::new(3.0, 2.0, 0.0, 0.1).unwrap();
        assert!(p.min_power_for_length(4.0) > 0.0);
        assert_eq!(p.noise_floor_power(4.0), 0.0);
    }

    #[test]
    fn path_gain_decreases() {
        let p = SinrParams::default();
        assert!(p.path_gain(1.0) > p.path_gain(2.0));
        assert_eq!(p.path_gain(1.0), 1.0);
    }
}
