//! Error types for the physical layer.

use std::error::Error;
use std::fmt;

use sinr_links::Link;

/// Errors produced by physical-layer validation.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PhyError {
    /// A model parameter was outside its documented domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The constraint that was violated.
        reason: &'static str,
    },
    /// A link's power cannot overcome ambient noise even without any
    /// interference (`P ≤ βN·d^α`), so the noise factor `c(u,v)` is
    /// undefined.
    PowerBelowNoiseFloor {
        /// The offending link.
        link: Link,
        /// The power that was assigned.
        power: f64,
        /// The minimum power that would work (`βN·d^α`, exclusive).
        required: f64,
    },
    /// An explicit power assignment is missing a link it was asked about.
    MissingPower {
        /// The link that has no assigned power.
        link: Link,
    },
    /// A schedule slot was infeasible.
    InfeasibleSlot {
        /// Slot index within the schedule.
        slot: usize,
        /// One offending link in that slot.
        link: Link,
        /// Its achieved SINR (or 0 when the receiver was transmitting).
        sinr: f64,
    },
}

impl fmt::Display for PhyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            PhyError::PowerBelowNoiseFloor {
                link,
                power,
                required,
            } => write!(
                f,
                "link {link:?} power {power} cannot overcome noise (needs > {required})"
            ),
            PhyError::MissingPower { link } => {
                write!(
                    f,
                    "explicit power assignment has no entry for link {link:?}"
                )
            }
            PhyError::InfeasibleSlot { slot, link, sinr } => {
                write!(
                    f,
                    "slot {slot} infeasible: link {link:?} achieves SINR {sinr}"
                )
            }
        }
    }
}

impl Error for PhyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            PhyError::InvalidParameter {
                name: "alpha",
                reason: "must exceed 2",
            },
            PhyError::PowerBelowNoiseFloor {
                link: Link::new(0, 1),
                power: 1.0,
                required: 2.0,
            },
            PhyError::MissingPower {
                link: Link::new(0, 1),
            },
            PhyError::InfeasibleSlot {
                slot: 3,
                link: Link::new(0, 1),
                sinr: 0.5,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
