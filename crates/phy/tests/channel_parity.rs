//! ChannelModel parity gates (DESIGN.md §15).
//!
//! The gain-path redesign's contract has two halves:
//!
//! 1. **Geometric is the legacy power law, bit for bit.** Every
//!    model-routed quantity (`gain`, `min_power_for_length`,
//!    `noise_floor_power`, the field's decode) must reproduce the
//!    pre-redesign `SinrParams` expressions exactly — not approximately
//!    — so the committed fingerprints and `BENCH_*.json` snapshots
//!    survive the refactor untouched.
//! 2. **Certification only widens.** Under any model, the field's
//!    certified decode must equal the exact naive-order reference
//!    ([`decode_best_exact_with_model`]): the fade-widened far-field
//!    bounds may cost certainty (forcing fallbacks), never correctness
//!    (flipping a decision).
//!
//! Both halves sweep the three power families (uniform / mean /
//! linear) over random geometry via proptest.

use proptest::prelude::*;
use sinr_geom::{gen, Instance, NodeId};
use sinr_links::Link;
use sinr_phy::field::{decode_best_exact, decode_best_exact_with_model, InterferenceField};
use sinr_phy::{ChannelModel, PowerAssignment, Shadowing, SinrParams};

/// Sender set for one slot: every `stride`-th node transmits with the
/// family's power for its nearest-neighbor uplink.
fn make_senders(
    params: &SinrParams,
    inst: &Instance,
    tau: usize,
    stride: usize,
) -> Vec<(NodeId, f64)> {
    let power = match tau {
        0 => PowerAssignment::uniform_with_margin(params, inst.delta()),
        1 => PowerAssignment::mean_with_margin(params, inst.delta()),
        _ => PowerAssignment::linear_with_margin(params),
    };
    let grid = sinr_geom::GridIndex::build(inst, (inst.delta() / 8.0).max(1e-6));
    (0..inst.len())
        .step_by(stride.max(2))
        .filter_map(|u| {
            let (v, _) = grid.nearest_neighbor(u)?;
            let p = power.power_of(Link::new(u, v), inst, params).ok()?;
            (p.is_finite() && p > 0.0).then_some((u, p))
        })
        .collect()
}

fn bits(r: Option<(NodeId, f64, f64)>) -> Option<(NodeId, u64, u64)> {
    r.map(|(u, p, s)| (u, p.to_bits(), s.to_bits()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Half 1: the Geometric member of the enum is the legacy gain
    /// path to the bit — scalar quantities and the full certified
    /// field decode, across power families and sender counts.
    #[test]
    fn geometric_model_is_legacy_bits(
        seed in 0u64..5_000,
        n in 16usize..200,
        tau in 0usize..3,
        stride in 2usize..6,
    ) {
        let params = SinrParams::default();
        let inst = gen::uniform_square(n, 1.5, seed).unwrap();
        let model = ChannelModel::Geometric;

        // Scalar parity on sampled pairs.
        for u in (0..inst.len()).step_by(5) {
            let v = (u + 1) % inst.len();
            let d = inst.distance(u, v);
            prop_assert_eq!(
                model.gain(&params, d, u, v).to_bits(),
                params.path_gain(d).to_bits()
            );
            prop_assert_eq!(
                model.min_power_for_length(&params, d).to_bits(),
                params.min_power_for_length(d).to_bits()
            );
            prop_assert_eq!(
                model.noise_floor_power(&params, d, u, v).to_bits(),
                params.noise_floor_power(d).to_bits()
            );
        }

        // Field parity: the model-routed build and the legacy build
        // decode every listener identically, and both equal the exact
        // reference (certification never flips a decision).
        let senders = make_senders(&params, &inst, tau, stride);
        prop_assume!(!senders.is_empty());
        let legacy = InterferenceField::build(&params, &inst, &senders);
        let routed =
            InterferenceField::build_with_model(&params, model, &inst, &senders, Default::default());
        let transmitting: Vec<bool> = {
            let mut t = vec![false; inst.len()];
            for &(u, _) in &senders { t[u] = true; }
            t
        };
        for v in (0..inst.len()).filter(|&v| !transmitting[v]) {
            let got = routed.decode_best(v);
            prop_assert_eq!(bits(got), bits(legacy.decode_best(v)));
            prop_assert_eq!(bits(got), bits(decode_best_exact(&params, &inst, v, &senders)));
        }
    }

    /// Half 2: under a shadowed channel the certified decode still
    /// equals the exact naive-order reference — the fade-widened
    /// far-field certificates are sound, and `sinr_at_least` agrees
    /// with the exact SINR comparison on every tree link.
    #[test]
    fn shadowed_field_decode_matches_exact_reference(
        seed in 0u64..5_000,
        n in 16usize..160,
        tau in 0usize..3,
        sigma_tenths in 20u32..100,
    ) {
        let params = SinrParams::default();
        let inst = gen::uniform_square(n, 1.5, seed).unwrap();
        let sigma = f64::from(sigma_tenths) / 10.0;
        let model =
            ChannelModel::Shadowed(Shadowing::new(seed ^ 0xFADE, sigma).unwrap());
        let senders = make_senders(&params, &inst, tau, 3);
        prop_assume!(!senders.is_empty());
        let field =
            InterferenceField::build_with_model(&params, model, &inst, &senders, Default::default());
        let transmitting: Vec<bool> = {
            let mut t = vec![false; inst.len()];
            for &(u, _) in &senders { t[u] = true; }
            t
        };
        for v in (0..inst.len()).filter(|&v| !transmitting[v]) {
            prop_assert_eq!(
                bits(field.decode_best(v)),
                bits(decode_best_exact_with_model(&params, model, &inst, v, &senders)),
                "listener {} diverged from the exact reference", v
            );
        }
        // Threshold queries: certificates may only widen, so the
        // boolean must match the exact comparison everywhere.
        for &(u, p) in senders.iter().take(12) {
            for v in (0..inst.len()).filter(|&v| !transmitting[v]).take(6) {
                let link = Link::new(u, v);
                prop_assert_eq!(
                    field.sinr_at_least(link, p, params.beta()),
                    field.sinr_exact(link, p) >= params.beta()
                );
            }
        }
    }
}

/// The fade stream itself: symmetric, seed-sensitive, and stable under
/// growth of the node set (a fade is a closed-form function of the
/// unordered pair, so adding nodes or links never shifts a draw).
#[test]
fn fades_are_symmetric_seed_sensitive_and_stable() {
    let s = Shadowing::new(7, 6.0).unwrap();
    let other = Shadowing::new(8, 6.0).unwrap();
    let (lo, hi) = s.fade_bounds();
    let mut differs = false;
    for u in 0..40usize {
        for v in (u + 1)..40 {
            let f = s.fade(u, v);
            assert_eq!(f.to_bits(), s.fade(v, u).to_bits(), "fade not symmetric");
            assert!(f >= lo && f <= hi, "fade {f} outside certified bounds");
            differs |= f.to_bits() != other.fade(u, v).to_bits();
        }
    }
    assert!(differs, "fades insensitive to the stream seed");
}
