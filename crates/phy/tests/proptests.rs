//! Property-based tests for the SINR physical layer.

use proptest::prelude::*;
use sinr_geom::{gen, Instance, Point};
use sinr_links::{Link, LinkSet};
use sinr_phy::affectance::AffectanceCalc;
use sinr_phy::feasibility::SlotAuditor;
use sinr_phy::{feasibility, PowerAssignment, SinrParams};

fn arb_params() -> impl Strategy<Value = SinrParams> {
    (2.1f64..5.0, 1.0f64..3.0, 0.0f64..2.0)
        .prop_map(|(a, b, n)| SinrParams::new(a, b, n, 0.1).expect("valid ranges"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The §5 equivalence: total affectance ≤ 1 iff SINR ≥ β, whenever
    /// no individual term is clipped at 1 + ε.
    #[test]
    fn affectance_sinr_equivalence(
        params in arb_params(),
        seed in 0u64..10_000,
        n in 3usize..24,
        power_exp in 0.0f64..6.0,
    ) {
        let inst = gen::uniform_square(n, 2.0, seed).unwrap();
        let calc = AffectanceCalc::new(&params, &inst);
        let link = Link::new(0, 1);
        let p_u = params.min_power_for_length(link.length(&inst)) * 4.0;
        let p_w = 10f64.powf(power_exp);
        let senders: Vec<(usize, f64)> =
            (2..n).map(|w| (w, p_w)).collect();

        let clipped = senders.iter().any(|&(w, pw)| {
            calc.of_sender(w, pw, link, p_u).unwrap() >= 1.0 + params.epsilon() - 1e-9
        });
        prop_assume!(!clipped);

        let aff = calc.sum_on(&senders, link, p_u).unwrap();
        let sinr = calc.sinr(link, p_u, &senders);
        // Guard against razor-edge float ties.
        prop_assume!((aff - 1.0).abs() > 1e-9);
        prop_assert_eq!(aff <= 1.0, sinr >= params.beta(),
            "aff={} sinr={} beta={}", aff, sinr, params.beta());
    }

    /// Affectance is monotone in interferer power and anti-monotone in
    /// interferer distance.
    #[test]
    fn affectance_monotonicity(params in arb_params(), d in 2.0f64..50.0) {
        let inst = Instance::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(d, 0.0),
            Point::new(d * 2.0, 0.0),
        ]).unwrap();
        let calc = AffectanceCalc::new(&params, &inst);
        let link = Link::new(0, 1);
        let p_u = params.min_power_for_length(1.0) * 2.0;
        let a_near_lo = calc.of_sender(2, 1.0, link, p_u).unwrap();
        let a_near_hi = calc.of_sender(2, 5.0, link, p_u).unwrap();
        let a_far_lo = calc.of_sender(3, 1.0, link, p_u).unwrap();
        prop_assert!(a_near_hi >= a_near_lo);
        prop_assert!(a_far_lo <= a_near_lo);
    }

    /// Removing any link from a feasible set keeps it feasible
    /// (interference monotonicity), for every power family.
    #[test]
    fn feasibility_subset_closed(seed in 0u64..5_000, n in 4usize..20, tau in 0usize..3) {
        let params = SinrParams::default();
        let inst = gen::uniform_square(n, 3.0, seed).unwrap();
        let power = match tau {
            0 => PowerAssignment::uniform_with_margin(&params, inst.delta()),
            1 => PowerAssignment::mean_with_margin(&params, inst.delta()),
            _ => PowerAssignment::linear_with_margin(&params),
        };
        // Greedily build a feasible set from nearest-neighbor links.
        let grid = sinr_geom::GridIndex::build(&inst, 2.0);
        let mut feasible = LinkSet::new();
        for u in 0..n {
            if let Some((v, _)) = grid.nearest_neighbor(u) {
                let mut cand = feasible.clone();
                if cand.insert(Link::new(u, v))
                    && feasibility::is_feasible(&params, &inst, &cand, &power)
                {
                    feasible = cand;
                }
            }
        }
        prop_assume!(feasible.len() >= 2);
        for drop in feasible.iter() {
            let mut sub = feasible.clone();
            sub.retain(|l| l != drop);
            prop_assert!(feasibility::is_feasible(&params, &inst, &sub, &power));
        }
    }

    /// Oblivious powers scale as documented: P(ℓ)² = P_U · P_L(ℓ) for
    /// unit scales (mean is the geometric mean), on random lengths.
    #[test]
    fn mean_power_geometric_mean(len in 1.0f64..100.0, alpha in 2.1f64..5.0) {
        let params = SinrParams::new(alpha, 2.0, 1.0, 0.1).unwrap();
        let inst = Instance::new(vec![Point::new(0.0, 0.0), Point::new(len, 0.0)]).unwrap();
        let l = Link::new(0, 1);
        let u = PowerAssignment::uniform(1.0).power_of(l, &inst, &params).unwrap();
        let m = PowerAssignment::mean(1.0).power_of(l, &inst, &params).unwrap();
        let lin = PowerAssignment::linear(1.0).power_of(l, &inst, &params).unwrap();
        prop_assert!((m * m - u * lin).abs() <= 1e-9 * (m * m).max(u * lin));
    }

    /// The incremental `SlotAuditor` under *random* push / probe / pop
    /// sequences: after **every** operation its decision must equal a
    /// from-scratch `feasibility::check` on the resident links in
    /// insertion order — the bit-exactness contract (DESIGN.md §7.4)
    /// the greedy packers rely on, here stressed through arbitrary
    /// interleavings of accepted pushes, rejected probes, and
    /// snapshot-restoring pops rather than the packers' own access
    /// pattern.
    #[test]
    fn slot_auditor_random_ops_match_check(
        seed in 0u64..2_000,
        n in 8usize..40,
        tau in 0usize..3,
        ops in proptest::collection::vec((0u8..4, 0usize..1_000), 1..50),
    ) {
        let params = SinrParams::default();
        let inst = gen::uniform_square(n, 1.5, seed).unwrap();
        let power = match tau {
            0 => PowerAssignment::uniform_with_margin(&params, inst.delta()),
            1 => PowerAssignment::mean_with_margin(&params, inst.delta()),
            _ => PowerAssignment::linear_with_margin(&params),
        };
        // Candidate pool: everyone's nearest-neighbor uplink (the link
        // shape the packers actually see).
        let grid = sinr_geom::GridIndex::build(&inst, 2.0);
        let candidates: Vec<Link> = (0..inst.len())
            .filter_map(|u| grid.nearest_neighbor(u).map(|(v, _)| Link::new(u, v)))
            .collect();
        prop_assume!(!candidates.is_empty());

        let mut auditor = SlotAuditor::new(&params, &inst);
        let mut resident: Vec<Link> = Vec::new();
        for (op, pick) in ops {
            let link = candidates[pick % candidates.len()];
            let pw = power.power_of(link, &inst, &params).unwrap();
            match op {
                // Unconditional push (may make the slot infeasible —
                // the auditor must track that state too).
                0 => {
                    if !resident.contains(&link) {
                        auditor.push(link, pw);
                        resident.push(link);
                    }
                }
                // Probe: push-test-pop on failure; the decision must
                // match check() on the would-be set.
                1 | 2 => {
                    if !resident.contains(&link) {
                        let mut probe = resident.clone();
                        probe.push(link);
                        let set = LinkSet::from_links(probe).unwrap();
                        let expect = feasibility::check(&params, &inst, &set, &power)
                            .is_feasible();
                        prop_assert_eq!(
                            auditor.try_push(link, pw),
                            expect,
                            "probe decision diverged from check on {:?}",
                            link
                        );
                        if expect {
                            resident.push(link);
                        }
                    }
                }
                // Pop: must restore the exact pre-push state.
                _ => {
                    if !resident.is_empty() {
                        auditor.pop();
                        resident.pop();
                    }
                }
            }
            // After every operation: same residents, same decision as
            // a from-scratch check over them.
            prop_assert_eq!(auditor.links(), resident.as_slice());
            prop_assert_eq!(auditor.len(), resident.len());
            let expect = resident.is_empty() || {
                let set = LinkSet::from_links(resident.clone()).unwrap();
                feasibility::check(&params, &inst, &set, &power).is_feasible()
            };
            prop_assert_eq!(
                auditor.is_feasible(),
                expect,
                "auditor state diverged from check after op {} on {} residents",
                op,
                resident.len()
            );
        }
    }

    /// The noise factor c(u,v) always lies in [β, 2β] for margin powers.
    #[test]
    fn noise_factor_in_band(params in arb_params(), len in 1.0f64..64.0) {
        prop_assume!(params.noise() > 0.0);
        let inst = Instance::new(vec![Point::new(0.0, 0.0), Point::new(len, 0.0)]).unwrap();
        let calc = AffectanceCalc::new(&params, &inst);
        let link = Link::new(0, 1);
        for margin in [1.0f64, 2.0, 8.0] {
            let p = params.min_power_for_length(len) * margin;
            let c = calc.noise_factor(link, p).unwrap();
            prop_assert!(c >= params.beta() * (1.0 - 1e-12));
            prop_assert!(c <= 2.0 * params.beta() * (1.0 + 1e-12));
        }
    }
}
